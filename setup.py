"""Shim for offline editable installs (no `wheel` available):

    pip install -e . --no-build-isolation --no-use-pep517
"""
from setuptools import setup

setup()
