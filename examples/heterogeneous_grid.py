#!/usr/bin/env python3
"""Future work, implemented: equivalent computing power of a
homogeneous cluster in a heterogeneous P2P grid (paper §V).

A pool of desktops with mixed clock speeds (0.5×–1.2× the 3 GHz
reference) sits behind heterogeneous site uplinks.  dPerf replays the
cluster-collected traces on it — each host rescales the compute bursts
by its own speed — and answers: how many grid peers, picked by which
policy, match n cluster nodes?

Run:  python examples/heterogeneous_grid.py      (~1 minute)
"""

from repro.analysis import format_series, format_table
from repro.experiments.heterogeneous import (
    heterogeneous_grid,
    run_heterogeneous,
)

PEERS = (2, 4, 8, 16)


def main() -> None:
    grid = heterogeneous_grid()
    speeds = sorted(h.speed / 1e9 for h in grid.hosts)
    print(
        f"heterogeneous grid: {len(grid.hosts)} peers across "
        f"{grid.attrs['n_sites']} sites, clock speeds "
        f"{speeds[0]:.2f}–{speeds[-1]:.2f} GHz (reference: 3 GHz cluster)\n"
    )

    result = run_heterogeneous(peer_counts=PEERS)
    curves = {"homogeneous cluster": result.cluster_times}
    for policy, times in result.grid_times.items():
        curves[f"hetero grid ({policy} peers)"] = times
    print(format_series("predicted time at O0 [s]", "peers", curves))

    print("\nsmallest grid config matching each cluster config:")
    rows = []
    for n in PEERS:
        rows.append([
            n,
            result.equivalents["fastest"].get(n),
            result.equivalents["spread"].get(n),
        ])
    print(format_table(
        ["cluster peers", "grid peers (fastest-first)",
         "grid peers (spread selection)"], rows,
    ))

    fast = result.grid_times["fastest"]
    spread = result.grid_times["spread"]
    worst_gap = max(spread[n] / fast[n] for n in PEERS)
    print(
        f"\nPeer selection matters: spread selection is up to "
        f"{worst_gap:.2f}x slower than fastest-first — the slowest "
        "selected peer paces every halo-coupled iteration."
    )


if __name__ == "__main__":
    main()
