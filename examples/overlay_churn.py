#!/usr/bin/env python3
"""Decentralized P2PDC under churn.

Deploys the full overlay (server, tracker line, peers) on a LAN
platform, then breaks things while a computation runs:

* a tracker crashes → the line repairs itself, orphan peers fail over
  to a neighbour zone;
* the server goes down → the overlay keeps working; trackers buffer
  statistics and flush them when the server returns;
* a fresh peer joins during the outage, through local tracker lists.

Run:  python examples/overlay_churn.py
"""

from repro.p2psap import Scheme
from repro.p2pdc import ChurnPlan, TaskSpec, WorkloadSpec, deploy_overlay
from repro.platforms import build_lan


def main() -> None:
    platform = build_lan(24)
    dep = deploy_overlay(platform, n_peers=20, n_zones=4, seed=7)
    overlay = dep.overlay
    print(f"deployed: server + {len(dep.trackers)} trackers + "
          f"{len(dep.peers)} peers (all joined at t={overlay.now:.2f}s)")

    # a long-ish computation to keep the system busy during the churn
    workload = WorkloadSpec(
        name="churn-demo", nit=300, halo_bytes=4096,
        iteration_time=lambda r, n: 0.02, check_every=25,
        scheme=Scheme.SYNC, noise_frac=0.002,
    )
    sig = dep.submitter.submit(TaskSpec(workload=workload, n_peers=12,
                                        spares=4))

    victim = dep.trackers[1]
    ChurnPlan() \
        .crash_tracker(overlay.now + 2.0, victim.name) \
        .server_outage(overlay.now + 3.0, overlay.now + 150.0) \
        .arm(overlay)

    # a latecomer joins while the server is down
    def late_join() -> None:
        peer = overlay.create_peer(platform.hosts[21], "10.2.0.200",
                                   name="latecomer")
        peer.join_overlay([t.ref for t in dep.trackers if t.alive])

    overlay.sim.schedule_at(overlay.now + 10.0, late_join)

    outcome = overlay.run_until(sig, limit=1e5)
    overlay.run(until=overlay.now + 400)  # let repairs & heartbeats settle

    print(f"\ntask finished ok={outcome.ok} in {outcome.makespan:.2f}s "
          f"({len(outcome.results)} results, "
          f"{len(outcome.groups)} proximity groups)")
    print(f"tracker {victim.name} crashed; line repaired: "
          f"{overlay.stats.get('tracker_repairs')} repair(s), "
          f"{overlay.stats.get('peer_tracker_failovers')} peer failover(s)")
    live = overlay.live_trackers()
    print("tracker line now:", " <-> ".join(t.name for t in live))
    for t in live:
        assert all(r.ip != victim.ip for r in t.neighbors)
    print(f"server came back; received {len(dep.server.statistics)} "
          f"buffered+fresh statistics reports")
    latecomer = overlay.registry["latecomer"]
    print(f"latecomer joined during the outage: joined={latecomer.joined} "
          f"(zone of {latecomer.tracker.name})")


if __name__ == "__main__":
    main()
