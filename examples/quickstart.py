#!/usr/bin/env python3
"""Quickstart: predict the runtime of a distributed C program.

The 60-second tour of dPerf's pipeline (paper Fig. 6):

1. write a C program that communicates through P2PSAP;
2. dPerf parses and instruments it automatically;
3. the instrumented code executes — every rank for real, with virtual
   hardware counters;
4. traces are priced at a GCC optimization level and replayed on a
   simulated platform → ``t_predicted``.

Run:  python examples/quickstart.py
"""

from repro.dperf import DPerfPredictor
from repro.platforms import build_cluster

SOURCE = r"""
/* Each rank smooths its slice and swaps boundary values each step. */
double main(int n, int steps) {
    int rank = p2psap_rank();
    int size = p2psap_size();
    double u[n];
    for (int i = 0; i < n; i++) {
        u[i] = (double)(rank + i);
    }
    for (int it = 0; it < steps; it++) {
        dperf_region_begin("iter");
        int to = rank == 0 ? size - 1 : rank - 1;
        int from = rank == size - 1 ? 0 : rank + 1;
        p2psap_isend(to, u, n);
        p2psap_recv(from, u, n);
        for (int i = 1; i < n - 1; i++) {
            u[i] = 0.25 * u[i - 1] + 0.5 * u[i] + 0.25 * u[i + 1];
        }
        dperf_region_end("iter");
    }
    return u[n / 2];
}
"""


def main() -> None:
    # 1+2: static analysis and automatic instrumentation
    predictor = DPerfPredictor(SOURCE, entry="main")
    print("— instrumented source (what dPerf unparses) —")
    print("\n".join(predictor.instrumented_source.splitlines()[:18]))
    print("  ...\n")

    # 3: execute the instrumented code on 4 ranks (n=256, 100 steps)
    runs = predictor.execute(4, args=[256, 100])
    print(f"executed {len(runs)} ranks; rank 0 returned {runs[0].value:.4f}")

    # 4: price the traces at two GCC levels, replay on a 4-node cluster
    platform = build_cluster(4)
    for level in ("O0", "O3"):
        traces = predictor.traces_for(runs, level, app="quickstart")
        result = predictor.predict(traces, platform)
        print(
            f"t_predicted on {platform.name} at {level}: "
            f"{result.t_predicted * 1e3:8.2f} ms "
            f"(compute {max(result.replay.compute_time) * 1e3:.2f} ms, "
            f"comm-blocked {max(result.replay.blocked_time) * 1e3:.2f} ms)"
        )


if __name__ == "__main__":
    main()
