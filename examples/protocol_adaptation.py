#!/usr/bin/env python3
"""P2PSAP self-adaptation in action.

The same peer pair exchanges the same messages under three contexts;
the protocol picks a different stack each time (paper §I / [3]):

* synchronous scheme, same zone, cluster link  → TCP without
  congestion control;
* synchronous scheme, different zones          → full TCP;
* asynchronous scheme                          → unacked UDP-like mode
  that drops stale iterates.

Run:  python examples/protocol_adaptation.py
"""

from repro.desim import Simulator
from repro.net import FluidNetwork, Host, Topology
from repro.p2psap import (
    Channel,
    ChannelContext,
    LinkClass,
    Locality,
    Scheme,
    select_mode,
)

CONTEXTS = {
    "sync / same zone / cluster": ChannelContext(
        Scheme.SYNC, Locality.SAME_ZONE, LinkClass.CLUSTER
    ),
    "sync / inter zone / cluster": ChannelContext(
        Scheme.SYNC, Locality.INTER_ZONE, LinkClass.CLUSTER
    ),
    "async / same zone / WAN": ChannelContext(
        Scheme.ASYNC, Locality.SAME_ZONE, LinkClass.WAN
    ),
}


def exchange_under(context: ChannelContext, n_messages: int = 50):
    sim = Simulator()
    topo = Topology()
    a = topo.add_node(Host("peer-a"))
    b = topo.add_node(Host("peer-b"))
    topo.add_link(a, b, 12.5e6, 500e-6)  # 100 Mbps, 0.5 ms
    net = FluidNetwork(sim, topo)
    chan = Channel(sim, net, a, b, context)

    def producer():
        for i in range(n_messages):
            done = chan.a.send(8192, data=("iterate", i))
            yield done  # blocking send: waits for the ack in acked modes

    def consumer():
        # a slow consumer, as in asynchronous iterations: it relaxes
        # between receives, so stale iterates pile up (and get dropped
        # by the udp-async stack)
        while True:
            yield sim.timeout(5e-3)  # compute burst
            _payload, (_tag, i) = yield chan.b.recv()
            if i == n_messages - 1:
                return

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    return chan, sim.now


def main() -> None:
    print(f"{'context':32s} {'chosen mode':12s} {'time':>9s} "
          f"{'dropped stale':>14s}")
    for name, context in CONTEXTS.items():
        mode = select_mode(context)
        chan, elapsed = exchange_under(context)
        print(
            f"{name:32s} {mode.name:12s} {elapsed * 1e3:7.1f}ms "
            f"{chan.stats.messages_dropped_stale:14d}"
        )
    print(
        "\nasync mode releases the sender immediately and keeps only the "
        "freshest iterate — exactly what asynchronous iterative schemes "
        "need; sync modes deliver everything, reliably, at ack cost."
    )

    # live reconfiguration: the same channel switches mode mid-session
    sim = Simulator()
    topo = Topology()
    a = topo.add_node(Host("a"))
    b = topo.add_node(Host("b"))
    topo.add_link(a, b, 12.5e6, 500e-6)
    chan = Channel(sim, FluidNetwork(sim, topo), a, b,
                   ChannelContext(Scheme.SYNC))
    print(f"\nchannel starts in {chan.mode.name}")
    done = chan.adapt(ChannelContext(Scheme.ASYNC))
    sim.run_until_triggered(done)
    print(f"application switched to asynchronous iterations → "
          f"channel renegotiated to {chan.mode.name} "
          f"in {sim.now * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
