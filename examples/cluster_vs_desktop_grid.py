#!/usr/bin/env python3
"""The paper's headline question: how many desktop-grid peers over
xDSL or LAN match a Grid5000 cluster?

Runs a reduced version of the full evaluation (Stage-1 reference +
prediction on the cluster, Stage-2 predictions on the Daisy xDSL and
LAN platforms, Table-I classification).

Run:  python examples/cluster_vs_desktop_grid.py        (~2 minutes)
"""

from repro.analysis import (
    classify,
    format_equivalence_table,
    format_series,
)
from repro.analysis.plot import ascii_chart
from repro.experiments import (
    Stage1Config,
    Stage2Config,
    run_stage1,
    run_stage2,
    run_table1,
)

PEERS = (2, 4, 8)


def main() -> None:
    print("Stage-1: obstacle problem on the cluster (reference vs dPerf)\n")
    stage1 = run_stage1(Stage1Config(peer_counts=PEERS, levels=("O0", "O3")))
    print(format_series(
        "reference execution time [s]", "peers",
        {f"level {lvl}": stage1.reference_series(lvl) for lvl in ("O0", "O3")},
    ))
    for lvl in ("O0", "O3"):
        print(f"prediction accuracy at {lvl}: {stage1.accuracy(lvl)}")

    print("\nStage-2: the same traces on xDSL and LAN platforms\n")
    stage2 = run_stage2(Stage2Config(peer_counts=PEERS))
    print(format_series("predicted time at O0 [s]", "peers",
                        stage2.predicted))
    print("\nFig. 11 shape (terminal rendition):\n")
    print(ascii_chart(stage2.predicted, x_label="peers", y_label="t [s]"))

    print("\nEquivalent computing power (Table I):\n")
    table1 = run_table1(Stage2Config(peer_counts=(2, 4, 8, 32)))
    print(format_equivalence_table(table1.rows))

    g5k = stage2.predicted["grid5000"]
    xdsl = stage2.predicted["xdsl"]
    verdict = classify(xdsl[4], g5k[2])
    print(
        f"\nConclusion: 4 peers over xDSL are '{verdict}' 2 Grid5000 nodes "
        f"({xdsl[4]:.1f}s vs {g5k[2]:.1f}s) — you may prefer deploying on "
        "the desktop grid instead of waiting for cluster nodes."
    )


if __name__ == "__main__":
    main()
