"""Scenario engine: declarative evaluation points + a cached runner.

The paper evaluates a handful of fixed platform × workload points;
this subsystem turns that space into data.  A frozen, hashable
:class:`ScenarioSpec` composes a platform plan, a workload plan,
protocol knobs, a churn plan, and a seed; :func:`run_scenario`
executes one spec deterministically; :class:`SweepRunner` expands
parameter grids, runs cache misses in a process pool, and memoizes
results in an on-disk JSON cache keyed by spec hash.  The named
entries in :mod:`~repro.scenarios.registry` cover the paper's figures
and several scenarios beyond them; ``python -m repro.scenarios``
lists and runs everything.
"""

from .platforms import build_platform, pick_hosts, spread_hosts
from .registry import (
    NamedScenario,
    PEER_COUNTS,
    SCENARIOS,
    get_scenario,
    scenario_names,
)
from .runner import (
    ResultCache,
    ScenarioResult,
    SweepRunner,
    execute_reference,
    expand_grid,
    run_cached,
    run_scenario,
    shard_indices,
    shard_specs,
)
from .spec import (
    ChurnEventSpec,
    ChurnProfile,
    NetworkFaultPlan,
    PlatformPlan,
    ProtocolPlan,
    ScenarioSpec,
    WorkloadPlan,
)

__all__ = [
    "ChurnEventSpec",
    "ChurnProfile",
    "NamedScenario",
    "NetworkFaultPlan",
    "PEER_COUNTS",
    "PlatformPlan",
    "ProtocolPlan",
    "ResultCache",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepRunner",
    "WorkloadPlan",
    "build_platform",
    "execute_reference",
    "expand_grid",
    "get_scenario",
    "pick_hosts",
    "run_cached",
    "run_scenario",
    "scenario_names",
    "shard_indices",
    "shard_specs",
    "spread_hosts",
]
