"""``python -m repro.scenarios`` — the scenario engine CLI."""

import sys

from .cli import main

sys.exit(main())
