"""Workload construction from :class:`~repro.scenarios.spec.WorkloadPlan`.

The dPerf calibration pipeline, generalized over the two domain
applications: one instrumented *calibration* execution per (app, peer
count) — small instance, virtual hardware counters — then traces of
any *target* instance are obtained by block-benchmark scale-up at any
GCC level.  All stages are cached per process, so a sweep touching the
same (app, nprocs, level, n, nit) point twice pays once.

``experiments.calibration`` delegates here; this module is the single
owner of the calibration constants.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from .. import __version__ as _ENGINE_VERSION
from ..apps import heat, obstacle
from ..dperf import DPerfPredictor, ScalePlan
from ..p2pdc import WorkloadSpec
from ..p2psap import Scheme
from ..platforms.cluster import DEFAULT_NODE_SPEED
from .spec import WorkloadPlan

#: Calibration instance size dPerf actually interprets.
CAL_N = 32
#: Obstacle convergence-check period baked into the calibration run.
CHECK_EVERY = 10


@dataclass(frozen=True)
class AppAdapter:
    """Everything app-specific the calibration pipeline needs."""

    name: str
    source: Callable[[], str]
    entry: str
    cal_nit: int
    cycle_len: int
    warmup_cycles: int
    entry_args: Callable[[int, int], Sequence[int]]  # (n, nit) -> args
    scale_env: Callable[[int, int], dict]            # (n, nranks) -> env
    halo_bytes: Callable[[int], float]
    residual: Callable[[int], Callable[[int], float]]


def _default_residual(_n: int) -> Callable[[int], float]:
    return lambda it: 1.0 / (1 + it)


ADAPTERS = {
    "obstacle": AppAdapter(
        name="obstacle",
        source=obstacle.obstacle_source,
        entry=obstacle.ENTRY,
        cal_nit=2 * CHECK_EVERY,  # 1 warm-up cycle + 1 template cycle
        cycle_len=CHECK_EVERY,
        warmup_cycles=1,
        entry_args=lambda n, nit: obstacle.entry_args(n, nit, CHECK_EVERY),
        scale_env=obstacle.scale_env,
        halo_bytes=lambda n: (n + 2) * 8.0,
        residual=obstacle.residual_model,
    ),
    "heat": AppAdapter(
        name="heat",
        source=heat.heat_source,
        entry=heat.ENTRY,
        cal_nit=8,
        cycle_len=1,
        warmup_cycles=2,
        entry_args=lambda n, nit: [n, nit],
        scale_env=heat.scale_env,
        halo_bytes=lambda n: 8.0,  # one double per halo message
        residual=_default_residual,
    ),
}


def adapter(app: str) -> AppAdapter:
    """Look an application adapter up by name."""
    try:
        return ADAPTERS[app]
    except KeyError:
        raise KeyError(f"unknown app {app!r}; have {sorted(ADAPTERS)}")


@lru_cache(maxsize=4)
def predictor(app: str) -> DPerfPredictor:
    """The (cached) dPerf predictor for one application source."""
    a = adapter(app)
    return DPerfPredictor(a.source(), a.entry)


@lru_cache(maxsize=32)
def calibration_runs(app: str, nprocs: int):
    """One instrumented execution per (app, peer count), reused by
    every trace request at any level or target size."""
    a = adapter(app)
    return predictor(app).execute(
        nprocs, args=list(a.entry_args(CAL_N, a.cal_nit))
    )


def scale_plan(app: str, nprocs: int, n: int, nit: int) -> ScalePlan:
    """Block-benchmark scale-up plan: calibration → target instance."""
    a = adapter(app)
    return ScalePlan(
        env_cal=a.scale_env(CAL_N, nprocs),
        env_target=a.scale_env(n, nprocs),
        nit_target=nit,
        region="iter",
        cycle_len=a.cycle_len,
        warmup_cycles=a.warmup_cycles,
    )


# ---------------------------------------------------------------------------
# the on-disk trace cache (collaborative profiling-run reuse)
# ---------------------------------------------------------------------------

#: Directory for the persistent trace cache, or ``None`` (disabled).
#: Trace generation is the cold-start cost every sweep worker pays
#: (mini-C calibration ≈ seconds per (app, nprocs)); the disk cache
#: makes it a one-time cost shared across processes, shards and — with
#: a copied cache directory — machines.  Entries are pickles of pure
#: deterministic data, keyed by a content hash of the full trace
#: recipe, so a shared directory is safe to union by file copy.
_TRACE_CACHE_DIR: Optional[Path] = (
    Path(os.environ["REPRO_TRACE_CACHE"])
    if os.environ.get("REPRO_TRACE_CACHE") else None
)


def set_trace_cache_dir(path: Optional[os.PathLike | str]) -> None:
    """Point the persistent trace cache at ``path`` (None disables)."""
    global _TRACE_CACHE_DIR
    _TRACE_CACHE_DIR = Path(path) if path is not None else None


def _trace_key(app: str, nprocs: int, level: str, n: int, nit: int) -> str:
    blob = f"{_ENGINE_VERSION}:{app}:{nprocs}:{level}:{n}:{nit}"
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _trace_cache_load(key: str):
    if _TRACE_CACHE_DIR is None:
        return None
    try:
        with open(_TRACE_CACHE_DIR / f"{key}.trace.pkl", "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None  # miss or torn/stale entry: recompute below


def _trace_cache_store(key: str, value) -> None:
    if _TRACE_CACHE_DIR is None:
        return
    from .runner import atomic_write_bytes

    try:
        _TRACE_CACHE_DIR.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            _TRACE_CACHE_DIR / f"{key}.trace.pkl",
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )
    except OSError:
        pass  # cache is best-effort; the computed value is still used


@lru_cache(maxsize=256)
def traces(app: str, nprocs: int, level: str, n: int, nit: int):
    """Scaled traces of the target instance at one GCC level.

    Served (in order) from the in-process memo, the persistent trace
    cache, or a fresh calibration + scale-up (which then populates
    both).
    """
    key = _trace_key(app, nprocs, level, n, nit)
    cached = _trace_cache_load(key)
    if cached is not None:
        return cached
    out = predictor(app).traces_for(
        calibration_runs(app, nprocs), level,
        scale=scale_plan(app, nprocs, n, nit),
        app=app, extra_meta={"n": str(n), "nit": str(nit)},
    )
    _trace_cache_store(key, out)
    return out


def iteration_seconds(
    app: str, nprocs: int, level: str, n: int, nit: int
) -> List[float]:
    """Per-rank compute seconds per iteration of the target instance."""
    return [
        t.total_compute_ns * 1e-9 / nit
        for t in traces(app, nprocs, level, n, nit)
    ]


def make_workload(
    plan: WorkloadPlan, nprocs: int, scheme: Scheme = Scheme.SYNC
) -> WorkloadSpec:
    """A :class:`WorkloadSpec` for the P2PDC reference execution of one
    workload plan (compute bursts priced by the dPerf cost model)."""
    a = adapter(plan.app)
    per_rank = iteration_seconds(plan.app, nprocs, plan.level, plan.n,
                                 plan.nit)

    def iteration_time(rank: int, nranks: int) -> float:
        return per_rank[min(rank, len(per_rank) - 1)]

    return WorkloadSpec(
        name=f"{plan.app}-{plan.level}-{nprocs}p",
        nit=plan.nit,
        halo_bytes=a.halo_bytes(plan.n),
        iteration_time=iteration_time,
        check_every=plan.check_every,
        scheme=scheme,
        noise_frac=plan.noise_frac,
        residual=a.residual(CAL_N),
        tol=plan.tol,
        result_bytes=4096,
        subtask_bytes=8192,
        # the traces above are priced at the 3 GHz reference clock:
        # declaring it lets heterogeneous hosts stretch/shrink bursts
        # (and the predicted policy price candidate groups) while
        # homogeneous platforms — host.speed == reference — run the
        # exact pre-v5 event stream
        reference_speed=DEFAULT_NODE_SPEED,
    )


def clear_caches() -> None:
    """Drop all in-process calibration caches (tests only)."""
    predictor.cache_clear()
    calibration_runs.cache_clear()
    traces.cache_clear()
