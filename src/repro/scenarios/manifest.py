"""Sweep-manifest serialization — the byte-identity substrate.

One canonical payload shape and one canonical serializer for every
writer of sweep manifests: the sweep CLI, ``merge-shards``, and the
fleet dispatcher.  Merged shard manifests and fleet manifests must be
*byte-identical* to the manifest an unsharded serial sweep writes, so
every producer has to flow through these helpers — a second
serializer would be a second chance to drift.

A manifest is ``{"label", "scenario", "points": [{"name",
"spec_hash", "result"}, ...]}`` in grid order, dumped with
``indent=1, sort_keys=True`` via the atomic-write primitive.  Shard
manifests add per-point grid indices and a ``shard`` geometry block;
in-flight manifests add ``"partial": true``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Sequence

from .runner import ScenarioResult, atomic_write_text
from .spec import ScenarioSpec


def sweeps_dir(cache_dir: os.PathLike | str) -> Path:
    """Where a cache directory keeps its sweep manifests."""
    return Path(cache_dir) / "sweeps"


def manifest_payload(label: str, scenario: str,
                     points: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The canonical manifest dict (see module doc for the shape)."""
    return {"label": label, "scenario": scenario, "points": list(points)}


def point_entry(spec: ScenarioSpec,
                result: ScenarioResult) -> Dict[str, Any]:
    """One manifest point: name, spec hash, and the full result."""
    return {"name": spec.name, "spec_hash": result.spec_hash,
            "result": result.to_dict()}


def dump_manifest(payload: Dict[str, Any], path: Path) -> None:
    """Serialize ``payload`` to ``path`` (atomic, canonical bytes)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))
