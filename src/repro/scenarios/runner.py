"""Scenario execution: one pure runner, a two-level cache, a sweep.

``run_scenario`` maps a :class:`ScenarioSpec` to a
:class:`ScenarioResult` with no ambient inputs — the same spec always
produces byte-identical results, which is what makes the two cache
levels sound:

* an in-process memo (dict keyed by spec hash) shared by every caller
  in this interpreter — the experiment runners and the test suite ride
  on it;
* an optional on-disk JSON cache (one file per spec hash) that
  survives processes, so a repeated sweep is served without
  recomputing anything.

``SweepRunner`` expands parameter grids and executes cache misses
through a ``ProcessPoolExecutor``; because the runner is pure, the
parallel results equal the serial ones.

Usage::

    from repro.scenarios import SweepRunner, get_scenario

    runner = SweepRunner(cache_dir=".scenario-cache", max_workers=4)
    results = runner.run(get_scenario("churn-grid").points())
    [r.metrics["completed"] for r in results]   # completion per point
    runner.cache_ratio                          # how much came cached

    # or a custom grid over any spec fields (dotted paths):
    from repro.scenarios import ScenarioSpec, expand_grid
    specs = expand_grid(ScenarioSpec(name="probe"),
                        {"n_peers": (2, 4), "tcp.window": (65536, 4194304)})
    runner.run(specs)

Reference-kind results carry ``metrics["completed"]`` plus the churn
and recovery counters (``churn_failures``, ``rejoined_peers``,
``redispatched_subtasks``); under failure injection a non-completion
is ``ok`` — the datum, not an error.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .spec import ScenarioSpec

#: In-process memo: spec hash → result.  Shared by every SweepRunner
#: and by run_cached, so repeated experiment calls are near-free.
_MEMO: Dict[str, "ScenarioResult"] = {}


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution.

    ``t`` is the headline seconds for the scenario kind (compute
    window for ``reference``, ``t_predicted`` for ``predict``, settle
    time for ``deploy``); ``metrics`` carries secondary numbers.
    """

    name: str
    spec_hash: str
    kind: str
    t: float
    ok: bool = True
    reason: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from its to_dict() form."""
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """Deterministic serialization (the byte-identity contract)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


# ---------------------------------------------------------------------------
# the pure runner
# ---------------------------------------------------------------------------

def _auto_zones(n_peers: int) -> int:
    return max(1, min(4, n_peers // 8))


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario (no caching — see :func:`run_cached`)."""
    if spec.kind == "predict":
        return _run_predict(spec)
    if spec.kind == "reference":
        return _run_reference(spec)
    if spec.kind == "deploy":
        return _run_deploy(spec)
    raise ValueError(f"unknown scenario kind {spec.kind!r}")


def _tcp_model(spec: ScenarioSpec):
    from ..net import TcpModel

    return TcpModel(bandwidth_factor=spec.tcp.bandwidth_factor,
                    window=spec.tcp.window)


def _run_predict(spec: ScenarioSpec) -> ScenarioResult:
    from . import platforms, workloads

    platform = platforms.build_platform(spec.platform)
    hosts = platforms.pick_hosts(platform, spec.n_peers, spec.host_policy)
    w = spec.workload
    traces = workloads.traces(w.app, spec.n_peers, w.level, w.n, w.nit)
    prediction = workloads.predictor(w.app).predict(
        traces, platform, hosts=hosts, tcp=_tcp_model(spec)
    )
    replay = prediction.replay
    return ScenarioResult(
        name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
        t=prediction.t_predicted,
        metrics={
            "compute_max": max(replay.compute_time),
            "blocked_max": max(replay.blocked_time),
        },
    )


def _deploy(spec: ScenarioSpec):
    from ..desim.rng import derive_seed
    from ..p2pdc import (
        ChurnEvent,
        ChurnPlan,
        CoordinatorChurn,
        OverlayConfig,
        deploy_overlay,
        poisson_peer_failures,
        rejoin_events,
    )
    from . import platforms

    platform = platforms.build_platform(spec.platform)
    deploy_n = spec.deploy_peers or spec.n_peers
    n_zones = spec.n_zones or _auto_zones(deploy_n)
    t = spec.timers
    profile = spec.churn_profile
    config = OverlayConfig(
        cmax=spec.protocol.cmax,
        grouping=spec.protocol.grouping,
        selection_policy=spec.selection_policy,
        state_update_interval=t.state_update_interval,
        peer_expiry=t.peer_expiry,
        update_ack_timeout=t.update_ack_timeout,
        reserve_timeout=t.reserve_timeout,
        # rejoin_rate is the recovery axis: > 0 turns on coordinator
        # liveness monitoring and subtask re-dispatch; at 0 the
        # protocol runs exactly as before (SCHEMA_VERSION 2 dynamics)
        recovery=profile.rejoin_rate > 0,
        # election rides on recovery: with it off, v3 dynamics
        # reproduce bit for bit (no CoordPing, checkpoints, elections)
        election=spec.recovery.election,
    )
    dep = deploy_overlay(
        platform, n_peers=deploy_n, n_zones=n_zones, config=config,
        seed=spec.seed, tcp=_tcp_model(spec),
    )
    if profile.coordinator_churn_rate > 0:
        # coordinators only exist once allocation appoints them: the
        # submitter draws and arms this schedule at dispatch time
        dep.overlay.coordinator_churn = CoordinatorChurn(
            rate=profile.coordinator_churn_rate,
            seed=derive_seed(spec.seed, "coordinator-churn"),
            start=profile.start,
            horizon=profile.horizon,
            max_failures=profile.max_failures,
        )
    events = [ChurnEvent(e.time, e.kind, e.target) for e in spec.churn]
    if profile.rate > 0:
        events.extend(poisson_peer_failures(
            profile.rate,
            [p.name for p in dep.peers],
            derive_seed(spec.seed, "churn"),
            start=profile.start,
            horizon=profile.horizon,
            max_failures=profile.max_failures,
        ))
    if profile.tracker_churn_rate > 0:
        events.extend(poisson_peer_failures(
            profile.tracker_churn_rate,
            [t.name for t in dep.trackers],
            derive_seed(spec.seed, "tracker-churn"),
            start=profile.start,
            horizon=profile.horizon,
            kind="tracker",
        ))
    if profile.rejoin_rate > 0 and events:
        # a separate seed stream: sweeping the rejoin rate never
        # perturbs the crash schedule it recovers from
        events.extend(rejoin_events(
            [e for e in events if e.kind == "peer"],
            profile.rejoin_rate,
            derive_seed(spec.seed, "rejoin"),
            delay=profile.rejoin_delay,
        ))
    if events:
        dep.arm_churn(ChurnPlan(events=sorted(events, key=lambda e: e.time)))
    return dep


def _submit_reference(spec: ScenarioSpec):
    """Deploy the overlay and submit the workload; ``(dep, signal)``."""
    from ..p2pdc import TaskSpec
    from ..p2psap import Scheme
    from . import workloads

    dep = _deploy(spec)
    scheme = Scheme.ASYNC if spec.protocol.scheme == "async" else Scheme.SYNC
    workload = workloads.make_workload(spec.workload, spec.n_peers, scheme)
    task = TaskSpec(workload=workload, n_peers=spec.n_peers,
                    spares=spec.spares)
    if spec.time_limit > 0:
        task.task_timeout = spec.time_limit
    if spec.protocol.allocation == "flat":
        sig = dep.submitter.submit_flat(task)
    else:
        sig = dep.submitter.submit(task)
    return dep, sig


def execute_reference(spec: ScenarioSpec):
    """Run a reference scenario and return ``(deployment, outcome)``.

    The property-test harness uses this to assert protocol-level
    invariants (subtask conservation, rank uniqueness) that the
    aggregated :class:`ScenarioResult` cannot express; an engine-level
    ``RuntimeError`` propagates to the caller.
    """
    dep, sig = _submit_reference(spec)
    dep.overlay.run_until(sig, limit=1e7)
    return dep, sig.value


def _recovery_metrics(dep) -> Dict[str, float]:
    stats = dep.overlay.stats
    counters = stats.counters
    metrics = {
        "churn_failures": float(len(dep.crash_events)),
        "rejoined_peers": float(counters.get("peer_rejoins", 0)),
        "redispatched_subtasks": float(
            counters.get("redispatched_subtasks", 0)
        ),
        "coordinator_crashes": float(
            len([e for e in dep.crash_events if e.kind == "coordinator"])
        ),
        "elections": float(counters.get("coordinator_elections", 0)),
    }
    if counters.get("coordinator_elections"):
        # mean blackout a group saw between last coordinator contact
        # and its stand-in's claim.  Absent (not 0.0) when no election
        # ran, so `compare` aggregates over real hand-offs only — a
        # zero-fill would dilute the pool's headline latency.
        metrics["handoff_latency"] = stats.mean("handoff_latency")
    return metrics


def _run_reference(spec: ScenarioSpec) -> ScenarioResult:
    dep, sig = _submit_reference(spec)

    def failed(reason: str, ok: bool, **extra: float) -> ScenarioResult:
        return ScenarioResult(
            name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
            t=0.0, ok=ok, reason=reason,
            metrics={"completed": 0.0, **_recovery_metrics(dep), **extra},
        )

    try:
        dep.overlay.run_until(sig, limit=1e7)
    except RuntimeError as exc:
        # engine-level failure (deadlock, event-limit blowup): a hard
        # error even under churn — never a completion-probability datum
        return failed(str(exc), ok=False)
    outcome = sig.value
    timings = outcome.timings
    if not outcome.ok:
        # Under failure injection a protocol-level non-completion is
        # the measured outcome (completion probability), not an error.
        return failed(outcome.reason, ok=spec.has_churn,
                      sim_events=float(dep.sim.event_count))
    metrics = {
        "completed": 1.0,
        **_recovery_metrics(dep),
        "makespan": timings.total_time,
        "collection_time": timings.collection_time,
        "allocation_time": timings.allocation_time,
        "n_groups": float(len(outcome.groups)) if outcome.groups else 1.0,
        "sim_events": float(dep.sim.event_count),
    }
    return ScenarioResult(
        name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
        t=timings.completed_at - timings.compute_started_at,
        metrics=metrics,
    )


def _run_deploy(spec: ScenarioSpec) -> ScenarioResult:
    dep = _deploy(spec)
    overlay = dep.overlay
    return ScenarioResult(
        name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
        t=overlay.now,
        metrics={
            "n_peers": float(len(dep.peers)),
            "n_trackers": float(len(dep.trackers)),
            "control_messages": float(overlay.stats.control_messages),
            "control_bytes": overlay.stats.control_bytes,
            "sim_events": float(overlay.sim.event_count),
        },
    )


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------

class ResultCache:
    """On-disk JSON cache: one ``<spec-hash>.json`` file per result.

    Writes are atomic (tempfile + rename), so concurrent sweeps on one
    cache directory never see torn files.  Each entry stores the full
    spec alongside the result; a hash collision or a stale schema is
    treated as a miss.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.json"

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for ``spec``, or None."""
        path = self._path(spec.spec_hash())
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("spec") != spec.hash_payload():
            return None
        return ScenarioResult.from_dict(payload["result"])

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic write)."""
        path = self._path(spec.spec_hash())
        payload = json.dumps(
            {"spec": spec.hash_payload(), "result": result.to_dict()},
            sort_keys=True, indent=1,
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def run_cached(
    spec: ScenarioSpec, cache: Optional[ResultCache] = None
) -> ScenarioResult:
    """Memoized scenario execution: memo → disk cache → compute."""
    key = spec.spec_hash()
    result = _MEMO.get(key)
    if result is not None:
        return result
    if cache is not None:
        result = cache.get(spec)
        if result is not None:
            _MEMO[key] = result
            return result
    result = run_scenario(spec)
    _MEMO[key] = result
    if cache is not None:
        cache.put(spec, result)
    return result


def clear_memo() -> None:
    """Drop the in-process memo (tests only)."""
    _MEMO.clear()


# ---------------------------------------------------------------------------
# grid expansion + the sweep runner
# ---------------------------------------------------------------------------

def expand_grid(
    base: ScenarioSpec, grid: Mapping[str, Sequence[Any]]
) -> List[ScenarioSpec]:
    """Cartesian product of field overrides applied to ``base``.

    Keys are (dotted) spec paths, e.g. ``{"n_peers": (2, 4),
    "workload.level": ("O0", "O3")}`` → 4 specs, named
    ``base[n_peers=2,workload.level=O0]`` etc. in deterministic order.
    """
    if not grid:
        return [base]
    paths = list(grid)
    specs: List[ScenarioSpec] = []
    for combo in product(*(grid[p] for p in paths)):
        spec = base
        for path, value in zip(paths, combo):
            spec = spec.with_override(path, value)
        label = ",".join(f"{p}={v}" for p, v in zip(paths, combo))
        specs.append(spec.with_override("name", f"{base.name}[{label}]"))
    return specs


def _pool_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: rebuild the spec, run it, ship plain data."""
    spec = ScenarioSpec.from_dict(payload)
    return run_cached(spec).to_dict()


class SweepRunner:
    """Executes scenario lists with memoization and process parallelism.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk result cache (None → in-process memo
        only).
    max_workers:
        Process pool width for cache misses (None → ``os.cpu_count()``,
        capped by the number of misses; 1 forces serial in-process).
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike | str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.hits = 0
        self.misses = 0

    # -- execution ---------------------------------------------------------
    def run(
        self, specs: Sequence[ScenarioSpec], parallel: bool = True
    ) -> List[ScenarioResult]:
        """Run ``specs`` (cache-first), preserving input order.

        Duplicate spec hashes are computed once.  With ``parallel``
        (the default) cache misses execute in a process pool; results
        are identical to a serial run because the runner is pure.
        """
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        miss_index: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            key = spec.spec_hash()
            cached = _MEMO.get(key)
            if cached is None and self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    _MEMO[key] = cached
            if cached is not None:
                results[i] = cached
                self.hits += 1
            else:
                miss_index.setdefault(key, []).append(i)
        misses = [specs[slots[0]] for slots in miss_index.values()]
        self.misses += len(misses)
        workers = self._effective_workers(len(misses))
        if parallel and workers > 1:
            computed = self._run_pool(misses, workers)
        else:
            computed = [run_scenario(spec) for spec in misses]
        for spec, result in zip(misses, computed):
            key = spec.spec_hash()
            _MEMO[key] = result
            if self.cache is not None:
                self.cache.put(spec, result)
            for i in miss_index[key]:
                results[i] = result
        return [r for r in results if r is not None]

    def run_grid(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        parallel: bool = True,
    ) -> List[ScenarioResult]:
        """Expand ``grid`` over ``base`` and run every point."""
        return self.run(expand_grid(base, grid), parallel=parallel)

    # -- internals ---------------------------------------------------------
    def _effective_workers(self, n_misses: int) -> int:
        if n_misses <= 1:
            return 1
        width = self.max_workers or os.cpu_count() or 1
        return max(1, min(width, n_misses))

    def _run_pool(
        self, misses: Sequence[ScenarioSpec], workers: int
    ) -> List[ScenarioResult]:
        payloads = [spec.to_dict() for spec in misses]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(_pool_run, payloads))
        return [ScenarioResult.from_dict(d) for d in raw]

    # -- reporting ---------------------------------------------------------
    @property
    def cache_ratio(self) -> float:
        """Fraction of requested points served from a cache level."""
        total = self.hits + self.misses
        return self.hits / total if total else math.nan
