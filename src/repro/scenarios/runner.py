"""Scenario execution: one pure runner, a two-level cache, a sweep.

``run_scenario`` maps a :class:`ScenarioSpec` to a
:class:`ScenarioResult` with no ambient inputs — the same spec always
produces byte-identical results, which is what makes the two cache
levels sound:

* an in-process memo (dict keyed by spec hash) shared by every caller
  in this interpreter — the experiment runners and the test suite ride
  on it;
* an optional on-disk JSON cache (one file per spec hash) that
  survives processes, so a repeated sweep is served without
  recomputing anything.

``SweepRunner`` expands parameter grids and executes cache misses
through a ``ProcessPoolExecutor``; because the runner is pure, the
parallel results equal the serial ones.

Usage::

    from repro.scenarios import SweepRunner, get_scenario

    runner = SweepRunner(cache_dir=".scenario-cache", max_workers=4)
    results = runner.run(get_scenario("churn-grid").points())
    [r.metrics["completed"] for r in results]   # completion per point
    runner.cache_ratio                          # how much came cached

    # or a custom grid over any spec fields (dotted paths):
    from repro.scenarios import ScenarioSpec, expand_grid
    specs = expand_grid(ScenarioSpec(name="probe"),
                        {"n_peers": (2, 4), "tcp.window": (65536, 4194304)})
    runner.run(specs)

Reference-kind results carry ``metrics["completed"]`` plus the churn
and recovery counters (``churn_failures``, ``rejoined_peers``,
``redispatched_subtasks``); under failure injection a non-completion
is ``ok`` — the datum, not an error.
"""

from __future__ import annotations

import json
import logging
import math
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .spec import ScenarioSpec

#: In-process memo: spec hash → result.  Shared by every SweepRunner
#: and by run_cached, so repeated experiment calls are near-free.
_MEMO: Dict[str, "ScenarioResult"] = {}

_LOG = logging.getLogger("repro.scenarios.cache")


@dataclass
class ScenarioResult:
    """Outcome of one scenario execution.

    ``t`` is the headline seconds for the scenario kind (compute
    window for ``reference``, ``t_predicted`` for ``predict``, settle
    time for ``deploy``); ``metrics`` carries secondary numbers.
    """

    name: str
    spec_hash: str
    kind: str
    t: float
    ok: bool = True
    reason: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from its to_dict() form."""
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """Deterministic serialization (the byte-identity contract)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


# ---------------------------------------------------------------------------
# the pure runner
# ---------------------------------------------------------------------------

def _auto_zones(n_peers: int) -> int:
    return max(1, min(4, n_peers // 8))


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario (no caching — see :func:`run_cached`)."""
    if spec.kind == "predict":
        return _run_predict(spec)
    if spec.kind == "reference":
        return _run_reference(spec)
    if spec.kind == "deploy":
        return _run_deploy(spec)
    raise ValueError(f"unknown scenario kind {spec.kind!r}")


def _tcp_model(spec: ScenarioSpec):
    from ..net import TcpModel

    return TcpModel(bandwidth_factor=spec.tcp.bandwidth_factor,
                    window=spec.tcp.window)


# ---------------------------------------------------------------------------
# the deployment template cache
# ---------------------------------------------------------------------------

@dataclass
class _DeployTemplate:
    """Everything about a deployment that is pure in the spec's
    platform/topology sub-space: the built platform, the shared TCP
    model, the resolved peer/zone counts, the zone layout, and a
    per-(platform, tcp) route-intern store.  Grid points that differ
    only in churn/policy/seed axes hit one template and skip
    re-deriving platforms, routes and zone groupings."""

    platform: Any
    tcp: Any
    deploy_n: int
    n_zones: int
    plan: Any
    route_intern: Dict[Any, Any] = field(default_factory=dict)


#: Per-process template cache, keyed on the frozen sub-plans that
#: define the deployment shape.
_TEMPLATES: Dict[Any, _DeployTemplate] = {}


def _deploy_template(spec: ScenarioSpec) -> _DeployTemplate:
    from ..p2pdc import plan_zones
    from . import platforms

    # the single owner of the shape derivation: _deploy reads these
    # back off the template, so key and deployment cannot diverge
    deploy_n = spec.deploy_peers or spec.n_peers
    n_zones = spec.n_zones or _auto_zones(deploy_n)
    key = (spec.platform, deploy_n, n_zones, spec.tcp)
    template = _TEMPLATES.get(key)
    if template is None:
        platform = platforms.build_platform(spec.platform)
        template = _DeployTemplate(
            platform=platform,
            tcp=_tcp_model(spec),
            deploy_n=deploy_n,
            n_zones=n_zones,
            plan=plan_zones(platform, deploy_n, n_zones),
        )
        _TEMPLATES[key] = template
    return template


def _run_predict(spec: ScenarioSpec) -> ScenarioResult:
    from . import platforms, workloads

    platform = platforms.build_platform(spec.platform)
    hosts = platforms.pick_hosts(platform, spec.n_peers, spec.host_policy)
    w = spec.workload
    traces = workloads.traces(w.app, spec.n_peers, w.level, w.n, w.nit)
    prediction = workloads.predictor(w.app).predict(
        traces, platform, hosts=hosts, tcp=_tcp_model(spec)
    )
    replay = prediction.replay
    return ScenarioResult(
        name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
        t=prediction.t_predicted,
        metrics={
            "compute_max": max(replay.compute_time),
            "blocked_max": max(replay.blocked_time),
        },
    )


def _deploy(spec: ScenarioSpec):
    from ..desim.rng import derive_seed
    from ..p2pdc import (
        ChurnEvent,
        ChurnPlan,
        CoordinatorChurn,
        OverlayConfig,
        PredictionError,
        deploy_overlay,
        poisson_peer_failures,
        rejoin_events,
    )
    template = _deploy_template(spec)
    deploy_n = template.deploy_n
    n_zones = template.n_zones
    t = spec.timers
    profile = spec.churn_profile
    config = OverlayConfig(
        cmax=spec.protocol.cmax,
        grouping=spec.protocol.grouping,
        selection_policy=spec.selection_policy,
        state_update_interval=t.state_update_interval,
        peer_expiry=t.peer_expiry,
        update_ack_timeout=t.update_ack_timeout,
        reserve_timeout=t.reserve_timeout,
        # rejoin_rate is the recovery axis: > 0 turns on coordinator
        # liveness monitoring and subtask re-dispatch; at 0 the
        # protocol runs exactly as before (SCHEMA_VERSION 2 dynamics)
        recovery=profile.rejoin_rate > 0,
        # election rides on recovery: with it off, v3 dynamics
        # reproduce bit for bit (no CoordPing, checkpoints, elections)
        election=spec.recovery.election,
        # the prediction-error ablation axis; its own seed field (not
        # derived from spec.seed) so sweeping corruption draws never
        # perturbs churn/selection streams
        prediction_error=PredictionError(
            kind=spec.prediction_error.kind,
            level=spec.prediction_error.level,
            seed=spec.prediction_error.seed,
        ),
        # the lossy-network hardening rides the fault axis: with no
        # active fault plan (or retries ablated off) every send stays
        # on the plain path — v5 dynamics bit for bit
        reliability=spec.fault_plan.active and spec.fault_plan.retries,
    )
    dep = deploy_overlay(
        template.platform, n_peers=deploy_n, n_zones=n_zones, config=config,
        seed=spec.seed, tcp=template.tcp, plan=template.plan,
        route_intern=template.route_intern,
    )
    plan = spec.fault_plan
    if plan.active:
        from ..net import FaultInjector

        # host name → zone index, from the same layout the deployment
        # realized (trackers are co-located on their zone's first peer
        # host; server and submitter share zone 0's first host)
        zone_of = {
            host.name: z
            for z, (_tname, _tip, zone_peers) in enumerate(template.plan.zones)
            for _pname, _pip, host in zone_peers
        }
        # the injector draws from plan.seed's derived streams, never
        # spec.seed: sweeping fault probabilities cannot perturb the
        # churn/rejoin/selection draws (and vice versa)
        dep.overlay.faults = FaultInjector(
            dep.sim,
            loss=plan.loss, duplication=plan.duplication,
            jitter=plan.jitter, jitter_delay=plan.jitter_delay,
            partition_start=plan.partition_start,
            partition_duration=plan.partition_duration,
            partition_zones=plan.partition_zones,
            zone_of=zone_of, seed=plan.seed,
        )
    if spec.failure_history:
        # failure-history seeding: the reputation store rides the spec
        # across runs, so a single-task scenario starts with informed
        # counts instead of a cold store; seeded before any selection
        # happens (the overlay has only settled at this point)
        dep.overlay.failure_history.update(
            {name: count for name, count in spec.failure_history}
        )
    if profile.coordinator_churn_rate > 0:
        # coordinators only exist once allocation appoints them: the
        # submitter draws and arms this schedule at dispatch time
        dep.overlay.coordinator_churn = CoordinatorChurn(
            rate=profile.coordinator_churn_rate,
            seed=derive_seed(spec.seed, "coordinator-churn"),
            start=profile.start,
            horizon=profile.horizon,
            max_failures=profile.max_failures,
        )
    events = [ChurnEvent(e.time, e.kind, e.target) for e in spec.churn]
    if profile.rate > 0:
        events.extend(poisson_peer_failures(
            profile.rate,
            [p.name for p in dep.peers],
            derive_seed(spec.seed, "churn"),
            start=profile.start,
            horizon=profile.horizon,
            max_failures=profile.max_failures,
        ))
    if profile.tracker_churn_rate > 0:
        events.extend(poisson_peer_failures(
            profile.tracker_churn_rate,
            [t.name for t in dep.trackers],
            derive_seed(spec.seed, "tracker-churn"),
            start=profile.start,
            horizon=profile.horizon,
            kind="tracker",
        ))
    if profile.rejoin_rate > 0 and events:
        # a separate seed stream: sweeping the rejoin rate never
        # perturbs the crash schedule it recovers from
        events.extend(rejoin_events(
            [e for e in events if e.kind == "peer"],
            profile.rejoin_rate,
            derive_seed(spec.seed, "rejoin"),
            delay=profile.rejoin_delay,
        ))
    if events:
        dep.arm_churn(ChurnPlan(events=sorted(events, key=lambda e: e.time)))
    return dep


def _submit_reference(spec: ScenarioSpec):
    """Deploy the overlay and submit the workload; ``(dep, signal)``."""
    from ..p2pdc import TaskSpec
    from ..p2psap import Scheme
    from . import workloads

    dep = _deploy(spec)
    scheme = Scheme.ASYNC if spec.protocol.scheme == "async" else Scheme.SYNC
    workload = workloads.make_workload(spec.workload, spec.n_peers, scheme)
    task = TaskSpec(workload=workload, n_peers=spec.n_peers,
                    spares=spec.spares)
    if spec.time_limit > 0:
        task.task_timeout = spec.time_limit
    if spec.protocol.allocation == "flat":
        sig = dep.submitter.submit_flat(task)
    else:
        sig = dep.submitter.submit(task)
    return dep, sig


def execute_reference(spec: ScenarioSpec):
    """Run a reference scenario and return ``(deployment, outcome)``.

    The property-test harness uses this to assert protocol-level
    invariants (subtask conservation, rank uniqueness) that the
    aggregated :class:`ScenarioResult` cannot express; an engine-level
    ``RuntimeError`` propagates to the caller.
    """
    dep, sig = _submit_reference(spec)
    dep.overlay.run_until(sig, limit=1e7)
    return dep, sig.value


def _recovery_metrics(dep) -> Dict[str, float]:
    stats = dep.overlay.stats
    counters = stats.counters
    metrics = {
        "churn_failures": float(len(dep.crash_events)),
        "rejoined_peers": float(counters.get("peer_rejoins", 0)),
        "redispatched_subtasks": float(
            counters.get("redispatched_subtasks", 0)
        ),
        "coordinator_crashes": float(
            len([e for e in dep.crash_events if e.kind == "coordinator"])
        ),
        "elections": float(counters.get("coordinator_elections", 0)),
    }
    if counters.get("coordinator_elections"):
        # mean blackout a group saw between last coordinator contact
        # and its stand-in's claim.  Absent (not 0.0) when no election
        # ran, so `compare` aggregates over real hand-offs only — a
        # zero-fill would dilute the pool's headline latency.
        metrics["handoff_latency"] = stats.mean("handoff_latency")
    if counters.get("prediction_candidates"):
        # candidate groups scored by the prediction-guided policies;
        # absent (not 0.0) under the classic policies — the same
        # absent-when-idle contract as handoff_latency
        metrics["prediction_candidates"] = float(
            counters["prediction_candidates"]
        )
    if dep.overlay.faults is not None:
        # fault-injection telemetry: what the injector actually did,
        # plus the hardening's response.  Present exactly when a fault
        # plan is active (absent-when-idle, like handoff_latency).
        metrics.update(dep.overlay.faults.stats.as_metrics())
        metrics["reliable_retries"] = float(
            counters.get("reliable_retries", 0))
        metrics["reliable_abandoned"] = float(
            counters.get("reliable_abandoned", 0))
        metrics["duplicate_deliveries"] = float(
            counters.get("duplicate_deliveries", 0))
    return metrics


def _run_reference(spec: ScenarioSpec) -> ScenarioResult:
    dep, sig = _submit_reference(spec)

    def failed(reason: str, ok: bool, **extra: float) -> ScenarioResult:
        return ScenarioResult(
            name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
            t=0.0, ok=ok, reason=reason,
            metrics={"completed": 0.0, **_recovery_metrics(dep), **extra},
        )

    try:
        dep.overlay.run_until(sig, limit=1e7)
    except RuntimeError as exc:
        # engine-level failure (deadlock, event-limit blowup): a hard
        # error even under churn — never a completion-probability datum
        return failed(str(exc), ok=False)
    outcome = sig.value
    timings = outcome.timings
    if not outcome.ok:
        # Under failure injection (churn or network faults) a
        # protocol-level non-completion is the measured outcome
        # (completion probability), not an error.
        return failed(outcome.reason, ok=spec.has_churn or spec.has_faults,
                      sim_events=float(dep.sim.event_count))
    metrics = {
        "completed": 1.0,
        **_recovery_metrics(dep),
        "makespan": timings.total_time,
        "collection_time": timings.collection_time,
        "allocation_time": timings.allocation_time,
        "n_groups": float(len(outcome.groups)) if outcome.groups else 1.0,
        "sim_events": float(dep.sim.event_count),
    }
    return ScenarioResult(
        name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
        t=timings.completed_at - timings.compute_started_at,
        metrics=metrics,
    )


def _run_deploy(spec: ScenarioSpec) -> ScenarioResult:
    dep = _deploy(spec)
    overlay = dep.overlay
    return ScenarioResult(
        name=spec.name, spec_hash=spec.spec_hash(), kind=spec.kind,
        t=overlay.now,
        metrics={
            "n_peers": float(len(dep.peers)),
            "n_trackers": float(len(dep.trackers)),
            "control_messages": float(overlay.stats.control_messages),
            "control_bytes": overlay.stats.control_bytes,
            "sim_events": float(overlay.sim.event_count),
        },
    )


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------

def atomic_write_bytes(path: os.PathLike | str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via tempfile + ``os.replace``.

    The one atomic-write primitive for every on-disk store in the
    sweep stack (results, manifests, traces, bench trajectories):
    readers racing the write — concurrent shards sharing a cache
    directory, a ``compare`` during a sweep — see either the old file
    or the complete new one, never a truncated file.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: os.PathLike | str, text: str) -> None:
    """:func:`atomic_write_bytes` for str content."""
    atomic_write_bytes(path, text.encode())


class JsonCache:
    """Content-addressed on-disk JSON store: one ``<hash>.json`` per
    entry.

    The shared substrate of every durable cache tier in the stack —
    scenario results here, SLO answers in ``repro.serve`` — factored
    so each tier inherits the same contract: atomic writes (tempfile +
    ``os.replace``, so concurrent readers never see a truncated
    entry), torn-entry-reads-as-miss, and union-by-file-copy merging.
    The directory is opened (and created) exactly once, at
    construction; ``disk_reads``/``disk_writes`` count every
    filesystem touch afterwards, which is what lets the serve tier
    *pin* its hot path as syscall-free instead of asserting it.

    Read-error semantics: a *missing file* and a *torn entry*
    (interrupted ``os.replace``, half-written JSON) are legitimate
    misses — recompute and move on.  An *environmental* read error
    (permissions, I/O failure, a directory where a file should be) is
    not: silently recomputing would mask a broken cache forever.
    Those bump ``cache_read_errors``, log the path once, and the
    **second consecutive** failure of the same entry re-raises — one
    transient blip recovers, a persistent fault surfaces.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_reads = 0
        self.disk_writes = 0
        self.cache_read_errors = 0
        self._read_failures: Dict[str, int] = {}
        self._logged_paths: set = set()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload under ``key``, or None (torn entry,
        non-dict payload, and missing file all read as a miss).

        Environmental read errors — anything besides a missing file —
        are counted, logged once per path, tolerated once, and
        re-raised on the second consecutive failure of the same entry
        (see the class doc).
        """
        self.disk_reads += 1
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self._read_failures.pop(key, None)
            return None
        except OSError as exc:
            self.cache_read_errors += 1
            failures = self._read_failures.get(key, 0) + 1
            self._read_failures[key] = failures
            if str(path) not in self._logged_paths:
                self._logged_paths.add(str(path))
                _LOG.warning(
                    "cache read failed for %s (%s); treating as a miss",
                    path, exc,
                )
            if failures >= 2:
                raise
            return None
        self._read_failures.pop(key, None)
        try:
            payload = json.loads(text)
        except ValueError:
            # torn entry (interrupted write): a legitimate miss
            return None
        return payload if isinstance(payload, dict) else None

    def store(self, key: str, payload: Mapping[str, Any]) -> None:
        """Atomically write ``payload`` under ``key``."""
        self.disk_writes += 1
        atomic_write_text(
            self._path(key),
            json.dumps(payload, sort_keys=True, indent=1),
        )

    def absorb(self, other_root: os.PathLike | str) -> int:
        """Union another cache directory into this one (file copy).

        Entries are content-addressed, so identical hashes mean
        identical content — existing files are kept, new ones are
        copied atomically.  Returns the number of entries copied.
        """
        copied = 0
        other = Path(other_root)
        if not other.is_dir():
            return 0
        for src in sorted(other.glob("*.json")):
            dst = self.root / src.name
            if dst.exists():
                continue
            atomic_write_text(dst, src.read_text())
            copied += 1
        return copied

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


class ResultCache(JsonCache):
    """On-disk JSON cache: one ``<spec-hash>.json`` file per result.

    Each entry stores the full spec alongside the result; a hash
    collision or a stale schema is treated as a miss.  Because entries
    are content-addressed, merging two caches is a plain file copy
    (see ``merge-shards``).  Atomicity, miss semantics and the I/O
    counters come from :class:`JsonCache`.

    ``on_put`` is the consolidated-store index hook: when set (fleet
    workers point it at :class:`repro.fleet.store.ResultStore`), every
    newly computed result is appended to the cross-sweep index the
    moment it becomes durable — the cache stays the single producer of
    durable results, and the index can never record a result the cache
    doesn't hold.
    """

    def __init__(self, root: os.PathLike | str,
                 on_put: Optional[Any] = None) -> None:
        super().__init__(root)
        #: Optional ``callable(spec, result)`` invoked after each put.
        self.on_put = on_put

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for ``spec``, or None."""
        payload = self.load(spec.spec_hash())
        if payload is None or payload.get("spec") != spec.hash_payload():
            return None
        return ScenarioResult.from_dict(payload["result"])

    def put(self, spec: ScenarioSpec, result: ScenarioResult) -> None:
        """Store ``result`` under ``spec``'s hash (atomic write),
        then fire the index hook."""
        self.store(spec.spec_hash(),
                   {"spec": spec.hash_payload(), "result": result.to_dict()})
        if self.on_put is not None:
            self.on_put(spec, result)


def run_cached(
    spec: ScenarioSpec, cache: Optional[ResultCache] = None
) -> ScenarioResult:
    """Memoized scenario execution: memo → disk cache → compute."""
    key = spec.spec_hash()
    result = _MEMO.get(key)
    if result is not None:
        return result
    if cache is not None:
        result = cache.get(spec)
        if result is not None:
            _MEMO[key] = result
            return result
    result = run_scenario(spec)
    _MEMO[key] = result
    if cache is not None:
        cache.put(spec, result)
    return result


def memo_get(spec_hash: str) -> Optional["ScenarioResult"]:
    """The in-process memo entry for ``spec_hash``, or None.

    The serve tier resolves its scenario pools through the memo
    *explicitly* (memo → disk → compute) instead of via
    :func:`run_cached`, because it has to count each level's traffic:
    a memo probe is free, a disk probe bumps the cache's I/O counters,
    and a compute bumps the daemon's ``scenario_runs`` — the numbers
    its no-resimulation and syscall-free-hot-path tests pin.
    """
    return _MEMO.get(spec_hash)


def memo_put(spec_hash: str, result: "ScenarioResult") -> None:
    """Install ``result`` in the in-process memo (see :func:`memo_get`)."""
    _MEMO[spec_hash] = result


def clear_memo() -> None:
    """Drop the in-process memo (tests only)."""
    _MEMO.clear()


# ---------------------------------------------------------------------------
# grid expansion + the sweep runner
# ---------------------------------------------------------------------------

def expand_grid(
    base: ScenarioSpec, grid: Mapping[str, Sequence[Any]]
) -> List[ScenarioSpec]:
    """Cartesian product of field overrides applied to ``base``.

    Keys are (dotted) spec paths, e.g. ``{"n_peers": (2, 4),
    "workload.level": ("O0", "O3")}`` → 4 specs, named
    ``base[n_peers=2,workload.level=O0]`` etc. in deterministic order.
    """
    if not grid:
        return [base]
    paths = list(grid)
    specs: List[ScenarioSpec] = []
    for combo in product(*(grid[p] for p in paths)):
        spec = base
        for path, value in zip(paths, combo):
            spec = spec.with_override(path, value)
        label = ",".join(f"{p}={v}" for p, v in zip(paths, combo))
        specs.append(spec.with_override("name", f"{base.name}[{label}]"))
    return specs


def _pool_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: rebuild the spec, run it, ship plain data.

    The worker writes its own result into the shared on-disk cache
    *before* returning, so a killed sweep (or shard) resumes from
    everything it completed rather than recomputing the whole grid.
    """
    from . import workloads

    # unconditional: a forked worker inherits the parent's module
    # global, which may point at a different sweep's cache directory
    workloads.set_trace_cache_dir(payload.get("trace_cache"))
    spec = ScenarioSpec.from_dict(payload["spec"])
    cache_dir = payload.get("cache_dir")
    cache = ResultCache(cache_dir) if cache_dir else None
    return run_cached(spec, cache).to_dict()


def shard_indices(
    specs: Sequence[ScenarioSpec], index: int, count: int
) -> List[int]:
    """Positions of shard ``index`` (0-based) of ``count`` in ``specs``.

    Partitioning is by spec hash — a pure function of each point, so
    every machine derives the same split from the same grid without
    coordination, and relabelling a sweep never moves points between
    shards.  This is the single owner of the partition predicate; the
    CLI and :func:`shard_specs` both derive from it.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return [i for i, s in enumerate(specs)
            if int(s.spec_hash(), 16) % count == index]


def shard_specs(
    specs: Sequence[ScenarioSpec], index: int, count: int
) -> List[ScenarioSpec]:
    """The shard ``index`` (0-based) of ``count`` for a spec list
    (input order preserved within the shard; see :func:`shard_indices`)."""
    return [specs[i] for i in shard_indices(specs, index, count)]


class SweepRunner:
    """Executes scenario lists with memoization and process parallelism.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk result cache (None → in-process memo
        only).  Also hosts the persistent trace cache (``traces/``
        subdirectory) that spares every pool worker the multi-second
        dPerf calibration cold start.
    max_workers:
        Process pool width for cache misses (None → ``os.cpu_count()``,
        capped by the number of misses; 1 forces serial in-process).
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike | str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.trace_cache_dir = (
            str(Path(cache_dir) / "traces") if cache_dir is not None else None
        )
        self.max_workers = max_workers
        self.hits = 0
        self.misses = 0

    # -- execution ---------------------------------------------------------
    def run(
        self,
        specs: Sequence[ScenarioSpec],
        parallel: bool = True,
        on_result: Optional[Any] = None,
    ) -> List[ScenarioResult]:
        """Run ``specs`` (cache-first), preserving input order.

        Duplicate spec hashes are computed once.  With ``parallel``
        (the default) cache misses execute in a process pool; results
        are identical to a serial run because the runner is pure.

        ``on_result(spec, result)`` — when given — is invoked once per
        *computed* miss as it lands (completion order), which is the
        incremental-manifest hook: a sweep killed mid-flight has
        recorded everything it finished.  Cache hits are returned but
        not streamed (they were already durable).
        """
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        miss_index: Dict[str, List[int]] = {}
        for i, spec in enumerate(specs):
            key = spec.spec_hash()
            cached = _MEMO.get(key)
            if cached is None and self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    _MEMO[key] = cached
            if cached is not None:
                results[i] = cached
                self.hits += 1
            else:
                miss_index.setdefault(key, []).append(i)
        misses = [specs[slots[0]] for slots in miss_index.values()]
        self.misses += len(misses)
        workers = self._effective_workers(len(misses))
        pooled = parallel and workers > 1
        if pooled:
            computed = self._run_pool(misses, workers, on_result)
        else:
            from . import workloads

            # unconditional: clears a previous runner's directory too
            workloads.set_trace_cache_dir(self.trace_cache_dir)
            computed = []
            for spec in misses:
                result = run_scenario(spec)
                computed.append(result)
                if on_result is not None:
                    on_result(spec, result)
        for spec, result in zip(misses, computed):
            key = spec.spec_hash()
            _MEMO[key] = result
            if self.cache is not None and not pooled:
                # pool workers already persisted their own results
                # (run_cached in _pool_run) — re-writing identical
                # entries here would double the sweep's cache I/O
                self.cache.put(spec, result)
            for i in miss_index[key]:
                results[i] = result
        return [r for r in results if r is not None]

    def run_grid(
        self,
        base: ScenarioSpec,
        grid: Mapping[str, Sequence[Any]],
        parallel: bool = True,
    ) -> List[ScenarioResult]:
        """Expand ``grid`` over ``base`` and run every point."""
        return self.run(expand_grid(base, grid), parallel=parallel)

    # -- internals ---------------------------------------------------------
    def _effective_workers(self, n_misses: int) -> int:
        if n_misses <= 1:
            return 1
        width = self.max_workers or os.cpu_count() or 1
        return max(1, min(width, n_misses))

    def _prime_templates(self, misses: Sequence[ScenarioSpec]) -> None:
        """Pay per-sweep one-time costs once, in the parent.

        Trace generation (the dPerf calibration) lands in the
        persistent trace cache, so workers load a pickle instead of
        re-interpreting mini-C; platforms are built so fork-started
        workers inherit them copy-on-write.  Both are pure derivations
        of the spec, so priming cannot change any result.
        """
        from . import platforms, workloads

        workloads.set_trace_cache_dir(self.trace_cache_dir)
        seen = set()
        for spec in misses:
            platforms.build_platform(spec.platform)
            if spec.kind not in ("reference", "predict"):
                continue
            w = spec.workload
            recipe = (w.app, spec.n_peers, w.level, w.n, w.nit)
            if recipe not in seen:
                seen.add(recipe)
                workloads.traces(*recipe)

    def _run_pool(
        self, misses: Sequence[ScenarioSpec], workers: int,
        on_result: Optional[Any] = None,
    ) -> List[ScenarioResult]:
        self._prime_templates(misses)
        cache_dir = str(self.cache.root) if self.cache is not None else None
        payloads = [
            {"spec": spec.to_dict(), "cache_dir": cache_dir,
             "trace_cache": self.trace_cache_dir}
            for spec in misses
        ]
        computed: List[Optional[ScenarioResult]] = [None] * len(misses)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_run, payload): i
                for i, payload in enumerate(payloads)
            }
            for future in as_completed(futures):
                i = futures[future]
                result = ScenarioResult.from_dict(future.result())
                computed[i] = result
                if on_result is not None:
                    on_result(misses[i], result)
        # every slot must be filled: a silent gap here would shift the
        # caller's zip(misses, computed) and cache results under wrong
        # spec hashes
        assert all(r is not None for r in computed)
        return computed  # type: ignore[return-value]

    # -- reporting ---------------------------------------------------------
    @property
    def cache_ratio(self) -> float:
        """Fraction of requested points served from a cache level."""
        total = self.hits + self.misses
        return self.hits / total if total else math.nan
