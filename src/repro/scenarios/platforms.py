"""Platform construction from :class:`~repro.scenarios.spec.PlatformPlan`.

One cached builder maps a frozen plan to a concrete
:class:`~repro.platforms.PlatformSpec`, and one host-selection helper
maps a policy name to the hosts the peers run on.  Heterogeneous node
speeds are drawn from the seeded ``hetero-speeds`` substream so the
same plan always yields the same grid (the discipline the
heterogeneous-grid experiment relies on).
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import List

from ..desim.rng import derive_seed
from ..net import Host
from ..platforms import (
    PlatformSpec,
    build_cluster,
    build_daisy,
    build_lan,
    build_multisite,
)
from ..platforms.cluster import DEFAULT_NODE_SPEED
from .spec import PlatformPlan


@lru_cache(maxsize=64)
def build_platform(plan: PlatformPlan) -> PlatformSpec:
    """Build (and cache, per plan) the platform a scenario runs on."""
    if plan.kind == "cluster":
        spec = build_cluster(plan.n_hosts)
    elif plan.kind == "lan":
        spec = build_lan(plan.n_hosts)
    elif plan.kind == "xdsl":
        spec = build_daisy()
    elif plan.kind == "multisite":
        name = "hetero-grid" if plan.heterogeneous else "multisite"
        spec = build_multisite(
            n_sites=plan.n_sites, peers_per_site=plan.peers_per_site,
            name=name,
        )
    else:  # pragma: no cover - guarded by PlatformPlan validation
        raise ValueError(f"unknown platform kind {plan.kind!r}")
    if plan.heterogeneous:
        rng = random.Random(derive_seed(plan.hetero_seed, "hetero-speeds"))
        for host in spec.hosts:
            factor = rng.uniform(plan.speed_min, plan.speed_max)
            host.speed = DEFAULT_NODE_SPEED * factor
        spec.attrs["speed_range"] = (plan.speed_min, plan.speed_max)
        spec.attrs["seed"] = plan.hetero_seed
    return spec


def spread_hosts(platform: PlatformSpec, n: int) -> List[Host]:
    """Evenly spaced host selection — a desktop grid's peers are
    scattered across the access network, not packed on one DSLAM."""
    hosts = platform.hosts
    if n > len(hosts):
        raise ValueError(f"need {n} hosts, platform has {len(hosts)}")
    stride = len(hosts) // n
    return [hosts[i * stride] for i in range(n)]


def pick_hosts(platform: PlatformSpec, n: int, policy: str) -> List[Host]:
    """Select the ``n`` participating hosts under a named policy."""
    if policy == "pack":
        return platform.take_hosts(n)
    if policy == "spread":
        return spread_hosts(platform, n)
    if policy == "fastest":
        return sorted(platform.hosts, key=lambda h: -h.speed)[:n]
    if policy == "slowest":
        return sorted(platform.hosts, key=lambda h: h.speed)[:n]
    raise ValueError(f"unknown host policy {policy!r}")
