"""Named scenarios: the paper's figures plus new workload points.

Each entry is a base :class:`ScenarioSpec` with an optional parameter
grid; ``points()`` expands the grid into concrete specs.  The stage-1/
stage-2/Table-I experiment runners draw their runs from the same spec
space, so these registry entries *are* the figures — and new entries
are new figures, no bespoke loop required.

Usage::

    from repro.scenarios import get_scenario, scenario_names

    scenario_names()                     # every registered name
    entry = get_scenario("churn-grid")   # one NamedScenario
    entry.title                          # human description
    entry.grid_dict()                    # {"churn_profile.rate": (...), ...}
    specs = entry.points()               # concrete ScenarioSpecs, 1/grid cell

Feed ``points()`` to :class:`~repro.scenarios.runner.SweepRunner` (or
``python -m repro.scenarios run <name>``) to execute with caching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Tuple

from .runner import expand_grid
from .spec import (
    ChurnEventSpec,
    ChurnProfile,
    NetworkFaultPlan,
    PlatformPlan,
    ProtocolPlan,
    RecoveryPlan,
    ScenarioSpec,
    WorkloadPlan,
)

#: Peer counts evaluated in all the paper's figures (2^1 .. 2^5).
PEER_COUNTS = (2, 4, 8, 16, 32)

#: Node-speed range of the heterogeneous grid (GHz-class spread of a
#: 2011 desktop population), relative to the 3 GHz reference.
HETERO_SPEED_RANGE = (0.5, 1.2)

#: Canonical platform plans, shared with the experiment runners so one
#: (platform, workload, peers, seed) point always hashes to one cache
#: entry — edit them here, nowhere else.
CLUSTER_PLAN = PlatformPlan(kind="cluster", n_hosts=33)
LAN_PLAN = PlatformPlan(kind="lan", n_hosts=1024)
XDSL_PLAN = PlatformPlan(kind="xdsl")
HETERO_GRID_PLAN = PlatformPlan(
    kind="multisite", n_sites=8, peers_per_site=8,
    speed_min=HETERO_SPEED_RANGE[0], speed_max=HETERO_SPEED_RANGE[1],
)
#: Heterogeneous *reference* platform of the prediction ablation: a
#: campus LAN with the desktop-population clock spread.  Near-uniform
#: link latency makes clock speed the discriminating signal — which
#: group the submitter picks actually moves the makespan, and the
#: zero-error predicted ordering provably coincides with the oracle's
#: (the consistency property the test harness pins).  On WAN-separated
#: multisite platforms proximity's co-located group is already optimal
#: (halo latency dominates any clock gain), so nothing there separates
#: informed selection from collection order.
HETERO_REFERENCE_PLAN = PlatformPlan(
    kind="lan", n_hosts=64,
    speed_min=HETERO_SPEED_RANGE[0], speed_max=HETERO_SPEED_RANGE[1],
)

#: Obstacle target instance of the paper's evaluation (≈40 s at
#: 2 peers / O0 on the 3 GHz reference).  Canonical: the experiment
#: runners derive their instance constants from this plan, so registry
#: entries and `run_stage*`/`run_table1` points hash to the same cache
#: entries.
OBSTACLE_TARGET = WorkloadPlan(app="obstacle", n=1024, nit=400)
_OBSTACLE = OBSTACLE_TARGET

#: Smaller obstacle instance for protocol-focused scenarios, where the
#: interesting signal is overlay behaviour rather than raw compute.
_OBSTACLE_SHORT = WorkloadPlan(app="obstacle", n=1024, nit=100, level="O3")


@dataclass(frozen=True)
class NamedScenario:
    """A registry entry: base spec + optional parameter grid(s)."""

    name: str
    title: str
    base: ScenarioSpec
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: Additional grids expanded over the same base, for entries whose
    #: axes are not one cartesian product: the prediction-grid error
    #: ablation only varies corruption under the predicted policy —
    #: every other policy × level > 0 combination is rejected at spec
    #: parse time, so it lives on separate sheets instead of blowing
    #: up the main product with invalid cells.
    extra: Tuple[Tuple[Tuple[str, Tuple[Any, ...]], ...], ...] = ()

    def grid_dict(self) -> Dict[str, Tuple[Any, ...]]:
        """The main grid as an ordered mapping (path → values)."""
        return dict(self.grid)

    def points(self) -> List[ScenarioSpec]:
        """Concrete specs for every grid point (base alone if no
        grid), main sheet first, then the extra sheets in order."""
        out = expand_grid(self.base, self.grid_dict())
        for sheet in self.extra:
            out.extend(expand_grid(self.base, dict(sheet)))
        return out

    @property
    def n_points(self) -> int:
        def size(grid: Tuple[Tuple[str, Tuple[Any, ...]], ...]) -> int:
            out = 1
            for _, values in grid:
                out *= len(values)
            return out

        return size(self.grid) + sum(size(sheet) for sheet in self.extra)


def _named(name, title, base, grid=(), extra=()):
    return NamedScenario(name=name, title=title, base=base,
                         grid=tuple(grid),
                         extra=tuple(tuple(sheet) for sheet in extra))


_PEER_GRID = (("n_peers", PEER_COUNTS),)

SCENARIOS: Dict[str, NamedScenario] = {
    s.name: s
    for s in (
        # -- paper-faithful figure scenarios -------------------------------
        _named(
            "fig9-cluster-o0",
            "Fig. 9 reference: obstacle O0 on the cluster, 2..32 peers",
            ScenarioSpec(name="fig9-cluster-o0", kind="reference",
                         platform=CLUSTER_PLAN, workload=_OBSTACLE),
            _PEER_GRID,
        ),
        _named(
            "fig9-cluster-o3",
            "Fig. 9 reference: obstacle O3 on the cluster, 2..32 peers",
            ScenarioSpec(
                name="fig9-cluster-o3", kind="reference", platform=CLUSTER_PLAN,
                workload=replace(_OBSTACLE, level="O3"),
            ),
            _PEER_GRID,
        ),
        _named(
            "fig10-cluster-o3",
            "Fig. 10 prediction: dPerf replay on the cluster at O3",
            ScenarioSpec(
                name="fig10-cluster-o3", kind="predict", platform=CLUSTER_PLAN,
                workload=WorkloadPlan(app="obstacle", n=1024, nit=400,
                                      level="O3"),
            ),
            _PEER_GRID,
        ),
        _named(
            "fig11-lan-o0",
            "Fig. 11 prediction: cluster traces replayed on the campus LAN",
            ScenarioSpec(name="fig11-lan-o0", kind="predict", platform=LAN_PLAN,
                         workload=_OBSTACLE, host_policy="spread"),
            _PEER_GRID,
        ),
        _named(
            "fig11-xdsl-o0",
            "Fig. 11 prediction: cluster traces replayed on Daisy xDSL",
            ScenarioSpec(name="fig11-xdsl-o0", kind="predict",
                         platform=XDSL_PLAN, workload=_OBSTACLE,
                         host_policy="spread"),
            _PEER_GRID,
        ),
        _named(
            "table1-grid5000-o0",
            "Table I reference curve: predicted Grid5000 configurations",
            ScenarioSpec(name="table1-grid5000-o0", kind="predict",
                         platform=CLUSTER_PLAN, workload=_OBSTACLE),
            _PEER_GRID,
        ),
        # -- beyond the paper ----------------------------------------------
        _named(
            "hetero-fastest",
            "§V future work: heterogeneous grid, fastest-peer selection",
            ScenarioSpec(name="hetero-fastest", kind="predict",
                         platform=HETERO_GRID_PLAN, workload=_OBSTACLE,
                         host_policy="fastest"),
            _PEER_GRID,
        ),
        _named(
            "hetero-spread",
            "§V future work: heterogeneous grid, scattered peer selection",
            ScenarioSpec(name="hetero-spread", kind="predict",
                         platform=HETERO_GRID_PLAN, workload=_OBSTACLE,
                         host_policy="spread"),
            _PEER_GRID,
        ),
        _named(
            "xdsl-daisy-chain",
            "Second workload: MPI-flavoured heat stepper on Daisy xDSL",
            ScenarioSpec(
                name="xdsl-daisy-chain", kind="predict", platform=XDSL_PLAN,
                workload=WorkloadPlan(app="heat", n=1024, nit=400),
                host_policy="spread",
            ),
            (("n_peers", (2, 4, 8)),),
        ),
        _named(
            "churn-under-load",
            "Decentralization claim: tracker crash + server outage mid-run",
            ScenarioSpec(
                name="churn-under-load", kind="reference", platform=CLUSTER_PLAN,
                workload=WorkloadPlan(app="obstacle", n=1024, nit=100),
                n_peers=8, n_zones=2, spares=2,
                # O0 keeps the compute window at a few simulated seconds,
                # so every event lands mid-computation.
                churn=(
                    ChurnEventSpec(time=0.5, kind="tracker",
                                   target="tracker-0"),
                    ChurnEventSpec(time=1.0, kind="server-down"),
                    ChurnEventSpec(time=2.0, kind="server-up"),
                ),
            ),
        ),
        _named(
            "churn-grid",
            "§III-D robustness: Poisson churn rate × platform × seed",
            ScenarioSpec(
                name="churn-grid", kind="reference",
                platform=CLUSTER_PLAN,
                # O0 keeps a multi-second compute window, so the churn
                # horizon overlaps collection, allocation and compute.
                workload=WorkloadPlan(app="obstacle", n=1024, nit=100),
                n_peers=8, deploy_peers=16, n_zones=2, spares=4,
                # horizon ≈ deployment + collection + compute window,
                # so failures can land in any protocol phase
                churn_profile=ChurnProfile(rate=0.0, horizon=4.0),
                # bounded "did not complete" verdict instead of an
                # unbounded simulation when a compute peer dies mid-run
                time_limit=600.0,
            ),
            (
                ("churn_profile.rate", (0.0, 0.3, 0.6, 1.2)),
                ("platform.kind", ("cluster", "lan")),
                ("seed", (2011, 2013)),
            ),
        ),
        _named(
            "recovery-grid",
            "Churn recovery: rejoin rate × selection policy × seed, fixed churn",
            ScenarioSpec(
                name="recovery-grid", kind="reference",
                platform=CLUSTER_PLAN,
                workload=WorkloadPlan(app="obstacle", n=1024, nit=100),
                n_peers=8, deploy_peers=16, n_zones=2, spares=4,
                # rate 1.2 over the 4 s horizon kills most baseline
                # runs (see churn-grid), so the rejoin_rate=0 column is
                # the failing control and every completion at
                # rejoin_rate>0 is recovery at work — with the makespan
                # paying for detection + re-dispatch + recompute.
                churn_profile=ChurnProfile(rate=1.2, horizon=4.0),
                time_limit=600.0,
            ),
            (
                ("churn_profile.rejoin_rate", (0.0, 0.5, 2.0)),
                ("selection_policy",
                 ("proximity", "random", "failure_aware")),
                ("seed", (2011, 2013)),
            ),
        ),
        _named(
            "coordinator-grid",
            "Coordinator recovery: coordinator churn rate × policy × seed",
            ScenarioSpec(
                name="coordinator-grid", kind="reference",
                platform=CLUSTER_PLAN,
                workload=WorkloadPlan(app="obstacle", n=1024, nit=100),
                n_peers=8, deploy_peers=16, n_zones=2, spares=4,
                # cmax=4 splits the 8 peers into two groups, so the
                # coordinator-targeted Poisson draw has two victims to
                # choose from and elections can run per group
                protocol=ProtocolPlan(cmax=4),
                # no member churn: the axis targets coordinators only,
                # armed at dispatch over the appointed coordinators;
                # rejoin_rate enables the recovery subsystem the
                # stand-in re-dispatches through (no member crashes →
                # no rejoin events are ever drawn from it)
                churn_profile=ChurnProfile(rate=0.0, horizon=4.0,
                                           rejoin_rate=1.0,
                                           coordinator_churn_rate=0.0),
                recovery=RecoveryPlan(election=True),
                time_limit=600.0,
            ),
            (
                ("churn_profile.coordinator_churn_rate", (0.0, 0.6, 1.5)),
                ("selection_policy",
                 ("proximity", "random", "failure_aware")),
                ("seed", (2011, 2013)),
            ),
        ),
        _named(
            "partition-grid",
            "Lossy networks: loss rate × partition window × hardening × seed",
            ScenarioSpec(
                name="partition-grid", kind="reference",
                platform=CLUSTER_PLAN,
                workload=WorkloadPlan(app="obstacle", n=1024, nit=100),
                n_peers=8, deploy_peers=16, n_zones=2, spares=4,
                # cmax=4 → two groups, so the hierarchy (submitter ↔
                # coordinators ↔ members) spans the partition boundary
                protocol=ProtocolPlan(cmax=4),
                # recovery + election stay on across the grid: the
                # contrast axis is the reliability hardening alone
                # (fault_plan.retries), measured with the full
                # crash-recovery machinery present in both columns
                churn_profile=ChurnProfile(rate=0.0, horizon=4.0,
                                           rejoin_rate=1.0),
                recovery=RecoveryPlan(election=True),
                # the partition window opens mid-run; partition_zones
                # stays at the default (every zone its own island), so
                # an open window severs the two deployment zones.  The
                # loss=0, duration=0, retries=False corner is an
                # *inactive* plan — the clean v5-dynamics baseline
                # column of the grid.
                fault_plan=NetworkFaultPlan(partition_start=1.0),
                # lost decisions stall convergence generators forever
                # in unhardened runs: the limit turns that deadlock
                # into a bounded "did not complete" verdict
                time_limit=600.0,
            ),
            (
                ("fault_plan.loss", (0.0, 0.02, 0.05)),
                ("fault_plan.partition_duration", (0.0, 8.0)),
                ("fault_plan.retries", (True, False)),
                ("seed", (2011, 2013)),
            ),
        ),
        _named(
            "prediction-grid",
            "Prediction-guided scheduling: policy × prediction error × churn",
            ScenarioSpec(
                name="prediction-grid", kind="reference",
                platform=HETERO_REFERENCE_PLAN,
                workload=WorkloadPlan(app="obstacle", n=1024, nit=100),
                n_peers=8, deploy_peers=16, n_zones=2, spares=4,
                # rejoin_rate > 0 keeps the recovery subsystem on for
                # the whole grid, so the churn rows measure completion
                # under recovery (see recovery-grid) while zero-churn
                # rows never draw a rejoin event from it
                churn_profile=ChurnProfile(rate=0.0, horizon=4.0,
                                           rejoin_rate=0.5),
                time_limit=600.0,
            ),
            (
                ("selection_policy",
                 ("predicted", "oracle", "proximity", "random")),
                ("churn_profile.rate", (0.0, 1.2)),
                ("seed", (2011, 2013)),
            ),
            extra=(
                # the error ablation only exists under the predicted
                # policy (any other policy × level > 0 is rejected at
                # parse time), so it is a separate sheet over the same
                # base rather than one cartesian product; the explicit
                # churn axis keeps every point label carrying the same
                # axes as the main sheet, which is what the gap report
                # matches baselines on
                (
                    ("selection_policy", ("predicted",)),
                    ("prediction_error.kind", ("noise", "flip", "stale")),
                    ("prediction_error.level", (0.5, 1.0)),
                    ("churn_profile.rate", (0.0,)),
                    ("seed", (2011, 2013)),
                ),
                # graceful degradation under churn: the worst
                # corruption (exactly inverted ranking, flip @ 1.0)
                # must not lose completions against the
                # prediction-free baselines
                (
                    ("selection_policy", ("predicted",)),
                    ("prediction_error.kind", ("flip",)),
                    ("prediction_error.level", (1.0,)),
                    ("churn_profile.rate", (1.2,)),
                    ("seed", (2011, 2013)),
                ),
            ),
        ),
        _named(
            "heterogeneous-multisite",
            "Full P2PDC run across WAN-separated sites (grouping pays off)",
            ScenarioSpec(
                name="heterogeneous-multisite", kind="reference",
                platform=PlatformPlan(kind="multisite", n_sites=4,
                                      peers_per_site=4),
                workload=WorkloadPlan(app="obstacle", n=512, nit=100,
                                      level="O3"),
                n_peers=16, n_zones=4,
                protocol=ProtocolPlan(cmax=4),  # groups align with sites
            ),
        ),
        _named(
            "large-overlay-512",
            "Overlay scale: 512 peers join and settle on the campus LAN",
            ScenarioSpec(name="large-overlay-512", kind="deploy",
                         platform=LAN_PLAN, n_peers=512, n_zones=8),
        ),
        _named(
            "oversubscribed-allocation",
            "Graceful failure: task asks for more peers than exist",
            ScenarioSpec(
                name="oversubscribed-allocation", kind="reference",
                platform=PlatformPlan(kind="cluster", n_hosts=8),
                workload=_OBSTACLE_SHORT, n_peers=16, deploy_peers=8,
            ),
        ),
        _named(
            "async-lan",
            "Asynchronous scheme on the LAN (UDP-async channels)",
            ScenarioSpec(
                name="async-lan", kind="reference",
                platform=PlatformPlan(kind="lan", n_hosts=64),
                workload=_OBSTACLE_SHORT, n_peers=8,
                protocol=ProtocolPlan(scheme="async"),
            ),
        ),
        _named(
            "flat-allocation",
            "Ablation: flat (pre-decentralization) allocation baseline",
            ScenarioSpec(
                name="flat-allocation", kind="reference", platform=CLUSTER_PLAN,
                workload=_OBSTACLE_SHORT, n_peers=8,
                protocol=ProtocolPlan(allocation="flat"),
            ),
        ),
        _named(
            "random-grouping",
            "Ablation: random grouping instead of IP proximity",
            ScenarioSpec(
                name="random-grouping", kind="reference",
                platform=PlatformPlan(kind="multisite", n_sites=4,
                                      peers_per_site=4),
                workload=WorkloadPlan(app="obstacle", n=512, nit=100,
                                      level="O3"),
                n_peers=16, n_zones=4,
                protocol=ProtocolPlan(grouping="random", cmax=4),
            ),
        ),
    )
}


def get_scenario(name: str) -> NamedScenario:
    """Look a named scenario up, with a helpful error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}")


def scenario_names() -> List[str]:
    """All registry names, in definition order."""
    return list(SCENARIOS)
