"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, hashable description of one
evaluation point: *what platform*, *what workload*, *which protocol
knobs*, *what churn*, *how many peers*, *which seed*.  Everything the
runner needs is in the spec, nothing is hidden in ambient state — so a
spec can be pickled to a worker process, hashed into a cache key, and
re-run years later with identical results.

The stable hash (:meth:`ScenarioSpec.spec_hash`) is a SHA-256 over the
canonical JSON form of every field **except** the display name, so two
scenarios that differ only in how they are labelled share one cache
entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Tuple

from .. import __version__ as _ENGINE_VERSION

#: Bump when the meaning of a field (or the result payload) changes
#: within one release; it salts the spec hash together with the
#: package version, so both schema edits and releases that change
#: simulation behaviour invalidate stale on-disk cache entries.
SCHEMA_VERSION = 1

PLATFORM_KINDS = ("cluster", "lan", "xdsl", "multisite")
SCENARIO_KINDS = ("reference", "predict", "deploy")
HOST_POLICIES = ("pack", "spread", "fastest", "slowest")
APPS = ("obstacle", "heat")
SCHEMES = ("sync", "async")
ALLOCATIONS = ("hierarchical", "flat")
GROUPINGS = ("proximity", "random")


def _check(value: str, allowed: Tuple[str, ...], what: str) -> None:
    if value not in allowed:
        raise ValueError(f"{what} must be one of {allowed}, got {value!r}")


@dataclass(frozen=True)
class PlatformPlan:
    """Which simulated platform to build.

    ``cluster``/``lan`` honour ``n_hosts``; ``multisite`` honours
    ``n_sites`` × ``peers_per_site``; ``xdsl`` is the paper's fixed
    1024-node Daisy topology.  A positive ``speed_min``/``speed_max``
    range makes node clocks heterogeneous (drawn from the seeded
    ``hetero-speeds`` stream, relative to the 3 GHz reference).
    """

    kind: str = "cluster"
    n_hosts: int = 33
    n_sites: int = 4
    peers_per_site: int = 8
    speed_min: float = 0.0
    speed_max: float = 0.0
    hetero_seed: int = 2011

    def __post_init__(self) -> None:
        _check(self.kind, PLATFORM_KINDS, "platform kind")
        if (self.speed_min > 0) != (self.speed_max > 0):
            raise ValueError("set both speed_min and speed_max, or neither")
        if self.speed_min > self.speed_max:
            raise ValueError("speed_min must be <= speed_max")

    @property
    def heterogeneous(self) -> bool:
        """Whether node speeds are drawn from a range."""
        return self.speed_min > 0.0


@dataclass(frozen=True)
class WorkloadPlan:
    """Which application instance the peers execute.

    ``app`` selects the mini-C source (obstacle problem via P2PSAP, or
    the MPI-flavoured heat stepper); ``n``/``nit`` the target instance;
    ``level`` the GCC optimization level priced into the traces.
    """

    app: str = "obstacle"
    n: int = 1024
    nit: int = 400
    check_every: int = 10
    level: str = "O0"
    noise_frac: float = 0.003
    tol: float = 0.0

    def __post_init__(self) -> None:
        _check(self.app, APPS, "workload app")
        if self.n < 1 or self.nit < 1:
            raise ValueError("workload needs n >= 1 and nit >= 1")


@dataclass(frozen=True)
class ProtocolPlan:
    """P2PDC / P2PSAP protocol knobs for the reference execution."""

    scheme: str = "sync"
    allocation: str = "hierarchical"
    grouping: str = "proximity"
    cmax: int = 32

    def __post_init__(self) -> None:
        _check(self.scheme, SCHEMES, "scheme")
        _check(self.allocation, ALLOCATIONS, "allocation")
        _check(self.grouping, GROUPINGS, "grouping")
        if self.cmax < 1:
            raise ValueError("cmax must be >= 1")


@dataclass(frozen=True)
class ChurnEventSpec:
    """One failure-injection event at an absolute simulated time."""

    time: float
    kind: str  # "peer" | "tracker" | "server-down" | "server-up"
    target: str = ""


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified evaluation point.

    ``kind`` selects the runner path: ``reference`` executes the full
    P2PDC protocol simulation, ``predict`` replays dPerf traces on the
    platform, ``deploy`` only builds and settles the overlay (for
    overlay-scale scenarios).  ``deploy_peers`` lets a scenario deploy
    fewer peers than the task requests (oversubscription); 0 means
    "same as n_peers".  ``n_zones`` 0 means the stage-1 auto rule.
    """

    name: str
    kind: str = "predict"
    platform: PlatformPlan = PlatformPlan()
    workload: WorkloadPlan = WorkloadPlan()
    protocol: ProtocolPlan = ProtocolPlan()
    churn: Tuple[ChurnEventSpec, ...] = ()
    n_peers: int = 4
    deploy_peers: int = 0
    n_zones: int = 0
    spares: int = 0
    host_policy: str = "pack"
    seed: int = 2011

    def __post_init__(self) -> None:
        _check(self.kind, SCENARIO_KINDS, "scenario kind")
        _check(self.host_policy, HOST_POLICIES, "host policy")
        if self.n_peers < 1:
            raise ValueError("n_peers must be >= 1")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe, round-trips via from_dict)."""
        d = asdict(self)
        d["churn"] = [asdict(e) for e in self.churn]
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its to_dict() form."""
        d = dict(data)
        d["platform"] = PlatformPlan(**d["platform"])
        d["workload"] = WorkloadPlan(**d["workload"])
        d["protocol"] = ProtocolPlan(**d["protocol"])
        d["churn"] = tuple(ChurnEventSpec(**e) for e in d.get("churn", ()))
        return cls(**d)

    # -- hashing -----------------------------------------------------------
    def hash_payload(self) -> Dict[str, Any]:
        """Everything that defines the result (name excluded)."""
        d = self.to_dict()
        del d["name"]
        d["schema"] = SCHEMA_VERSION
        d["engine"] = _ENGINE_VERSION
        return d

    def spec_hash(self) -> str:
        """Stable 16-hex-digit content hash of this spec."""
        blob = json.dumps(self.hash_payload(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # -- grid expansion ----------------------------------------------------
    def with_override(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one (possibly dotted) field replaced.

        ``spec.with_override("workload.level", "O3")`` rebuilds the
        nested frozen dataclass; ``spec.with_override("n_peers", 8)``
        replaces a top-level field.
        """
        head, _, rest = path.partition(".")
        names = {f.name for f in fields(self)}
        if head not in names:
            raise KeyError(f"unknown scenario field {head!r}")
        if not rest:
            return replace(self, **{head: value})
        sub = getattr(self, head)
        sub_names = {f.name for f in fields(sub)}
        if rest not in sub_names:
            raise KeyError(f"unknown field {rest!r} in {head}")
        return replace(self, **{head: replace(sub, **{rest: value})})
