"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, hashable description of one
evaluation point: *what platform*, *what workload*, *which protocol
knobs*, *what churn*, *how many peers*, *which seed*.  Everything the
runner needs is in the spec, nothing is hidden in ambient state — so a
spec can be pickled to a worker process, hashed into a cache key, and
re-run years later with identical results.

The stable hash (:meth:`ScenarioSpec.spec_hash`) is a SHA-256 over the
canonical JSON form of every field **except** the display name, so two
scenarios that differ only in how they are labelled share one cache
entry.

Usage::

    from repro.scenarios import ScenarioSpec
    from repro.scenarios.spec import ChurnProfile, PlatformPlan

    spec = ScenarioSpec(
        name="churny", kind="reference",
        platform=PlatformPlan(kind="lan", n_hosts=64),
        n_peers=8, deploy_peers=16, spares=4,
        churn_profile=ChurnProfile(rate=0.2, horizon=8.0),
    )
    spec.spec_hash()                          # stable cache key
    spec.with_override("churn_profile.rate", 0.5)   # grid expansion

Every field is plain data: ``spec.to_dict()`` round-trips through JSON
and :meth:`ScenarioSpec.from_dict`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Tuple

from .. import __version__ as _ENGINE_VERSION

#: Bump when the meaning of a field (or the result payload) changes
#: within one release; it salts the spec hash together with the
#: package version, so both schema edits and releases that change
#: simulation behaviour invalidate stale on-disk cache entries.
#: 2: tcp / timers / churn_profile / time_limit spec fields; replay
#: hot-path rework (ulp-level rate changes possible).
#: 3: churn recovery subsystem — churn_profile.{rejoin_rate,
#: rejoin_delay, tracker_churn_rate}, selection_policy, and the
#: recovery metrics (redispatched_subtasks, rejoined_peers) in every
#: reference result payload.
#: 4: coordinator recovery — churn_profile.coordinator_churn_rate
#: (dispatch-time Poisson crashes over the appointed coordinators),
#: the recovery.election toggle (stand-in election), and the
#: election metrics (coordinator_crashes, elections, handoff_latency)
#: in every reference result payload.
#: 5: prediction-guided scheduling — selection_policy gains
#: "predicted"/"oracle", the prediction_error plan (seeded
#: noise/flip/stale corruption of predicted-policy scores),
#: failure_history seeding of the reputation store, and reference
#: compute bursts now scale with heterogeneous node clocks
#: (reference_speed pricing; homogeneous dynamics are bit-identical).
#: 6: network-fault injection — the fault_plan axis (seeded
#: per-message loss/duplication/jitter draws plus scheduled
#: zone-level partitions), the reliability hardening it enables
#: (acked control messages with dedup + bounded retry), and the
#: fault counters (messages_lost, messages_duplicated,
#: messages_delayed, partition_blocked, reliable_retries,
#: duplicate_deliveries) in reference result payloads.  An inactive
#: fault_plan keeps dynamics bit-identical to v5.
SCHEMA_VERSION = 6

PLATFORM_KINDS = ("cluster", "lan", "xdsl", "multisite")
SCENARIO_KINDS = ("reference", "predict", "deploy")
HOST_POLICIES = ("pack", "spread", "fastest", "slowest")
APPS = ("obstacle", "heat")
SCHEMES = ("sync", "async")
ALLOCATIONS = ("hierarchical", "flat")
GROUPINGS = ("proximity", "random")
# mirror of repro.p2pdc.overlay.SELECTION_POLICIES (this module stays
# import-light for pool workers; equality is pinned by the tests)
SELECTION_POLICIES = ("proximity", "random", "failure_aware",
                      "predicted", "oracle")
# mirror of repro.p2pdc.prediction.PREDICTION_ERROR_KINDS (same
# discipline; equality pinned by tests/test_predicted_policy.py)
PREDICTION_ERROR_KINDS = ("noise", "flip", "stale")


def _check(value: str, allowed: Tuple[str, ...], what: str) -> None:
    if value not in allowed:
        raise ValueError(f"{what} must be one of {allowed}, got {value!r}")


@dataclass(frozen=True)
class PlatformPlan:
    """Which simulated platform to build.

    ``cluster``/``lan`` honour ``n_hosts``; ``multisite`` honours
    ``n_sites`` × ``peers_per_site``; ``xdsl`` is the paper's fixed
    1024-node Daisy topology.  A positive ``speed_min``/``speed_max``
    range makes node clocks heterogeneous (drawn from the seeded
    ``hetero-speeds`` stream, relative to the 3 GHz reference).
    """

    kind: str = "cluster"
    n_hosts: int = 33
    n_sites: int = 4
    peers_per_site: int = 8
    speed_min: float = 0.0
    speed_max: float = 0.0
    hetero_seed: int = 2011

    def __post_init__(self) -> None:
        _check(self.kind, PLATFORM_KINDS, "platform kind")
        if (self.speed_min > 0) != (self.speed_max > 0):
            raise ValueError("set both speed_min and speed_max, or neither")
        if self.speed_min > self.speed_max:
            raise ValueError("speed_min must be <= speed_max")

    @property
    def heterogeneous(self) -> bool:
        """Whether node speeds are drawn from a range."""
        return self.speed_min > 0.0


@dataclass(frozen=True)
class WorkloadPlan:
    """Which application instance the peers execute.

    ``app`` selects the mini-C source (obstacle problem via P2PSAP, or
    the MPI-flavoured heat stepper); ``n``/``nit`` the target instance;
    ``level`` the GCC optimization level priced into the traces.
    """

    app: str = "obstacle"
    n: int = 1024
    nit: int = 400
    check_every: int = 10
    level: str = "O0"
    noise_frac: float = 0.003
    tol: float = 0.0

    def __post_init__(self) -> None:
        _check(self.app, APPS, "workload app")
        if self.n < 1 or self.nit < 1:
            raise ValueError("workload needs n >= 1 and nit >= 1")


@dataclass(frozen=True)
class ProtocolPlan:
    """P2PDC / P2PSAP protocol knobs for the reference execution."""

    scheme: str = "sync"
    allocation: str = "hierarchical"
    grouping: str = "proximity"
    cmax: int = 32

    def __post_init__(self) -> None:
        _check(self.scheme, SCHEMES, "scheme")
        _check(self.allocation, ALLOCATIONS, "allocation")
        _check(self.grouping, GROUPINGS, "grouping")
        if self.cmax < 1:
            raise ValueError("cmax must be >= 1")


@dataclass(frozen=True)
class TcpPlan:
    """Fluid-TCP model parameters priced into every simulated transfer.

    ``bandwidth_factor`` scales link capacity for protocol overhead
    (SimGrid uses 0.92 for TCP); ``window`` caps a flow's rate at
    ``window / (2 · route latency)``.  Making them spec fields turns
    protocol-sensitivity studies (window vs xDSL latency, efficiency
    sweeps) into ordinary grids.
    """

    bandwidth_factor: float = 0.92
    window: float = 4194304.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.window <= 0:
            raise ValueError("tcp window must be > 0")


@dataclass(frozen=True)
class TimerPlan:
    """Overlay protocol timer constants (defaults are the paper's).

    These drive the failure-detection latency the churn scenarios
    measure: a tracker drops a silent peer after ``peer_expiry``, a
    peer declares its tracker dead after ``update_ack_timeout``, and
    reservations give up after ``reserve_timeout``.
    """

    state_update_interval: float = 30.0
    peer_expiry: float = 75.0
    update_ack_timeout: float = 10.0
    reserve_timeout: float = 15.0

    def __post_init__(self) -> None:
        for name in ("state_update_interval", "peer_expiry",
                     "update_ack_timeout", "reserve_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.peer_expiry <= self.state_update_interval:
            raise ValueError(
                "peer_expiry must exceed state_update_interval "
                "(a live peer must be able to refresh in time)"
            )


@dataclass(frozen=True)
class ChurnProfile:
    """Poisson peer-failure injection (§III-D robustness grids).

    ``rate`` is the expected number of peer crashes per simulated
    second across the deployed population; failure instants are drawn
    from the seeded exponential stream in ``[start, start + horizon)``
    and victims uniformly from the not-yet-crashed peers, so the same
    spec always injects the same schedule.  ``rate == 0`` disables
    injection (the default — baseline grids stay churn-free).

    The recovery side: ``rejoin_rate > 0`` enables the churn recovery
    subsystem — every crashed peer rejoins after a downtime of
    ``rejoin_delay`` plus an exponential draw at ``rejoin_rate`` (its
    own seed stream, so sweeping it never changes who crashes when),
    coordinators monitor their computing members, and a dead member's
    subtask is re-dispatched to a spare or rejoined peer.  At
    ``rejoin_rate == 0`` the subsystem is off and the protocol behaves
    exactly as before.  ``tracker_churn_rate`` adds a Poisson crash
    schedule over the trackers (line repair + peer failover exercise).

    ``coordinator_churn_rate`` targets the *coordinators*: the
    schedule is drawn at dispatch time over the appointed coordinator
    names (they only exist once allocation picks them), with the same
    ``start``/``horizon``/``max_failures`` window relative to the
    dispatch instant.  Without ``recovery.election`` a coordinator
    crash mid-computation kills its whole group; with election the
    surviving members hand the duty to a stand-in.
    """

    rate: float = 0.0
    start: float = 0.0
    horizon: float = 8.0
    max_failures: int = 0  # 0 → bounded only by the population
    rejoin_rate: float = 0.0    # 0 → crashed peers stay down, no recovery
    rejoin_delay: float = 0.0   # minimum downtime before a rejoin
    tracker_churn_rate: float = 0.0  # Poisson tracker crashes
    coordinator_churn_rate: float = 0.0  # Poisson coordinator crashes

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"churn rate must be >= 0, got {self.rate!r}")
        if self.horizon <= 0:
            raise ValueError(
                f"churn horizon must be > 0, got {self.horizon!r}"
            )
        if self.start < 0:
            raise ValueError(f"churn start must be >= 0, got {self.start!r}")
        if self.max_failures < 0:
            raise ValueError(
                f"churn max_failures must be >= 0, got {self.max_failures!r}"
            )
        if self.rejoin_rate < 0:
            raise ValueError(
                f"churn rejoin_rate must be >= 0 (0 disables recovery), "
                f"got {self.rejoin_rate!r}"
            )
        if self.rejoin_delay < 0:
            raise ValueError(
                f"churn rejoin_delay must be >= 0, got {self.rejoin_delay!r}"
            )
        if self.tracker_churn_rate < 0:
            raise ValueError(
                f"churn tracker_churn_rate must be >= 0, "
                f"got {self.tracker_churn_rate!r}"
            )
        if self.coordinator_churn_rate < 0:
            raise ValueError(
                f"churn coordinator_churn_rate must be >= 0, "
                f"got {self.coordinator_churn_rate!r}"
            )


@dataclass(frozen=True)
class RecoveryPlan:
    """Recovery-subsystem toggles beyond the rejoin axis.

    ``election`` enables coordinator recovery: members monitor their
    coordinator (CoordPing/Pong), elect a deterministic stand-in from
    the survivors when it goes silent, and the stand-in rebuilds the
    duty from replicated checkpoints and re-registers with submitter
    and tracker.  It rides on the recovery subsystem (compute
    monitoring + re-dispatch), so a spec with election on and
    ``churn_profile.rejoin_rate == 0`` is rejected at parse time (and
    again at deploy time by ``OverlayConfig``)."""

    election: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.election, bool):
            raise ValueError(
                f"recovery.election must be a bool, got {self.election!r}"
            )


@dataclass(frozen=True)
class PredictionErrorPlan:
    """Seeded corruption of the ``predicted`` policy's scores.

    The ablation axis of the prediction-grid: ``level == 0`` is the
    uncorrupted predictor (the default — makespans priced off the warm
    dPerf trace caches, exact at the reference clock); ``level > 0``
    selects a degradation of strength ``level`` under one of three
    models:

    - ``noise``: multiplicative log-normal noise — each candidate
      group's score is scaled by ``exp(N(0, level))``;
    - ``flip``: adversarial sign flips — each candidate's score is
      negated with probability ``min(1, level)``, so at 1.0 the
      ranking is exactly inverted (the worst case the
      graceful-degradation bound is measured at);
    - ``stale``: stale-trace decay — every declared speed is pulled
      toward the reference clock by weight ``min(1, level)``, so at
      1.0 all nodes look identical and the predictor degenerates to
      tie-break order.

    Draws are seeded per candidate (``derive_seed`` over the member
    names), so scores are independent of evaluation order and the same
    spec always corrupts the same way.  Only valid with
    ``selection_policy="predicted"`` — rejected here at parse time and
    again at deploy time by ``OverlayConfig`` (the same two-layer
    guard as election-without-rejoin).
    """

    kind: str = "noise"
    level: float = 0.0
    seed: int = 2011

    def __post_init__(self) -> None:
        _check(self.kind, PREDICTION_ERROR_KINDS, "prediction_error kind")
        if self.level < 0:
            raise ValueError(
                f"prediction_error level must be >= 0 (0 disables "
                f"corruption), got {self.level!r}"
            )

    @property
    def active(self) -> bool:
        """Whether any corruption is configured."""
        return self.level > 0


@dataclass(frozen=True)
class NetworkFaultPlan:
    """Seeded network-fault injection (the lossy-network axis).

    Per-message faults are Bernoulli draws from derived seed streams
    (``fault-loss``, ``fault-dup``, ``fault-jitter`` off ``seed`` —
    its own field, not ``ScenarioSpec.seed``, so sweeping fault rates
    never perturbs churn/rejoin/selection draws):

    - ``loss``: probability a control/data message is silently
      dropped in flight;
    - ``duplication``: probability a message is delivered twice
      (the second copy takes its own trip over the network);
    - ``jitter``: probability a message is delayed by an extra
      ``jitter_delay``-mean exponential draw on delivery.

    ``partition_start``/``partition_duration`` schedule one
    deterministic zone-level partition window: while it is open,
    messages between hosts of different zone *groups* are blocked
    (and counted), intra-group traffic flows normally.
    ``partition_zones`` lists the groups as tuples of zone indices —
    empty (the default) isolates every zone from every other.
    ``partition_duration == 0`` disables the partition.

    ``retries`` is the hardening toggle: with it on (the default)
    critical control messages get monotone ids, receiver-side dedup
    and ack/retry with bounded exponential backoff, so loss degrades
    makespan instead of deadlocking; with it off the grid measures
    the *unhardened* protocol under the same fault schedule (the
    ablation the partition-grid's P(complete) contrast is built on).
    """

    loss: float = 0.0
    duplication: float = 0.0
    jitter: float = 0.0
    jitter_delay: float = 0.05
    partition_start: float = 0.0
    partition_duration: float = 0.0
    partition_zones: Tuple[Tuple[int, ...], ...] = ()
    retries: bool = True
    seed: int = 2011

    def __post_init__(self) -> None:
        for name in ("loss", "duplication", "jitter"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"fault_plan.{name} must be a probability in [0, 1], "
                    f"got {p!r}"
                )
        if self.jitter_delay <= 0:
            raise ValueError(
                f"fault_plan.jitter_delay must be > 0, "
                f"got {self.jitter_delay!r}"
            )
        if self.partition_start < 0:
            raise ValueError(
                f"fault_plan.partition_start must be >= 0, "
                f"got {self.partition_start!r}"
            )
        if self.partition_duration < 0:
            raise ValueError(
                f"fault_plan.partition_duration must be >= 0 "
                f"(0 disables the partition), "
                f"got {self.partition_duration!r}"
            )
        if not isinstance(self.retries, bool):
            raise ValueError(
                f"fault_plan.retries must be a bool, got {self.retries!r}"
            )
        if self.partition_zones and self.partition_duration <= 0:
            raise ValueError(
                "fault_plan.partition_zones without a partition window: "
                "set partition_duration > 0, or drop the zone groups"
            )
        # canonical tuple-of-tuples form, so JSON round-trips (lists
        # of lists) hash and compare identically to native construction
        groups = tuple(
            tuple(int(z) for z in group) for group in self.partition_zones
        )
        if any(z < 0 for group in groups for z in group):
            raise ValueError("fault_plan.partition_zones must be >= 0")
        object.__setattr__(self, "partition_zones", groups)

    @property
    def active(self) -> bool:
        """Whether any fault injection is configured."""
        return (self.loss > 0 or self.duplication > 0 or self.jitter > 0
                or self.partition_duration > 0)


@dataclass(frozen=True)
class ChurnEventSpec:
    """One failure-injection event at an absolute simulated time."""

    time: float
    kind: str  # "peer" | "tracker" | "server-down" | "server-up"
    target: str = ""


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified evaluation point.

    ``kind`` selects the runner path: ``reference`` executes the full
    P2PDC protocol simulation, ``predict`` replays dPerf traces on the
    platform, ``deploy`` only builds and settles the overlay (for
    overlay-scale scenarios).  ``deploy_peers`` lets a scenario deploy
    fewer (or more) peers than the task requests; 0 means "same as
    n_peers".  ``n_zones`` 0 means the stage-1 auto rule.

    ``churn`` holds scripted failure events at fixed instants;
    ``churn_profile`` injects seeded Poisson peer failures on top (the
    churn-rate grid axis) and, with ``rejoin_rate > 0``, enables the
    churn recovery subsystem (peer rejoin + subtask re-dispatch).
    ``selection_policy`` picks how the submitter orders peer
    candidates — initial choice and re-dispatch replacements alike;
    the prediction-guided pair (``predicted``/``oracle``) ranks whole
    candidate groups by predicted (resp. true) makespan, with
    ``prediction_error`` as the corruption ablation axis and
    ``failure_history`` seeding the reputation store across runs.
    ``time_limit`` caps the simulated seconds a reference computation
    may take before it counts as not completed (0 → engine default);
    churn grids set it so a wave of failures produces a bounded "did
    not complete" data point instead of an unbounded simulation.
    """

    name: str
    kind: str = "predict"
    platform: PlatformPlan = PlatformPlan()
    workload: WorkloadPlan = WorkloadPlan()
    protocol: ProtocolPlan = ProtocolPlan()
    tcp: TcpPlan = TcpPlan()
    timers: TimerPlan = TimerPlan()
    churn: Tuple[ChurnEventSpec, ...] = ()
    churn_profile: ChurnProfile = ChurnProfile()
    recovery: RecoveryPlan = RecoveryPlan()
    #: Seeded network-fault injection (loss/duplication/jitter draws
    #: plus a scheduled zone partition); inactive by default, and an
    #: inactive plan keeps dynamics bit-identical to SCHEMA_VERSION 5.
    fault_plan: NetworkFaultPlan = NetworkFaultPlan()
    n_peers: int = 4
    deploy_peers: int = 0
    n_zones: int = 0
    spares: int = 0
    host_policy: str = "pack"
    selection_policy: str = "proximity"
    #: Corruption of the predicted policy's scores (the ablation
    #: axis); only valid with ``selection_policy="predicted"``.
    prediction_error: PredictionErrorPlan = PredictionErrorPlan()
    #: Failure-history seeding: (peer name, observed crash count)
    #: pairs loaded into the overlay's reputation store before the
    #: first selection, so the store rides the spec across runs and a
    #: single-task scenario exercises informed initial selection.
    #: Names that match no deployed peer are kept but never bid.
    failure_history: Tuple[Tuple[str, int], ...] = ()
    seed: int = 2011
    time_limit: float = 0.0

    def __post_init__(self) -> None:
        _check(self.kind, SCENARIO_KINDS, "scenario kind")
        _check(self.host_policy, HOST_POLICIES, "host policy")
        _check(self.selection_policy, SELECTION_POLICIES, "selection policy")
        if self.n_peers < 1:
            raise ValueError("n_peers must be >= 1")
        if self.time_limit < 0:
            raise ValueError("time_limit must be >= 0 (0 = default)")
        if self.recovery.election and self.churn_profile.rejoin_rate <= 0:
            raise ValueError(
                "recovery.election requires the recovery subsystem: "
                "set churn_profile.rejoin_rate > 0 (a stand-in "
                "coordinator re-dispatches lost subtasks through it)"
            )
        if (self.prediction_error.active
                and self.selection_policy != "predicted"):
            raise ValueError(
                "prediction_error requires selection_policy='predicted': "
                "no other policy consumes makespan predictions, so the "
                "configured corruption would silently do nothing (set "
                "the policy, or drop the error level to 0)"
            )
        history = tuple(
            (str(name), int(count)) for name, count in self.failure_history
        )
        if any(count < 0 for _name, count in history):
            raise ValueError("failure_history counts must be >= 0")
        # canonical tuple-of-pairs form, so JSON round-trips (lists of
        # lists) hash and compare identically to native construction
        object.__setattr__(self, "failure_history", history)

    @property
    def has_churn(self) -> bool:
        """Whether any failure injection is configured."""
        return (bool(self.churn) or self.churn_profile.rate > 0
                or self.churn_profile.tracker_churn_rate > 0
                or self.churn_profile.coordinator_churn_rate > 0)

    @property
    def has_faults(self) -> bool:
        """Whether any network-fault injection is configured."""
        return self.fault_plan.active

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe, round-trips via from_dict)."""
        d = asdict(self)
        d["churn"] = [asdict(e) for e in self.churn]
        d["failure_history"] = [
            [name, count] for name, count in self.failure_history
        ]
        # lists, not tuples: the dict must equal its own JSON round-trip
        # (cache payload comparison is plain dict equality)
        d["fault_plan"]["partition_zones"] = [
            list(group) for group in self.fault_plan.partition_zones
        ]
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its to_dict() form."""
        d = dict(data)
        d["platform"] = PlatformPlan(**d["platform"])
        d["workload"] = WorkloadPlan(**d["workload"])
        d["protocol"] = ProtocolPlan(**d["protocol"])
        d["tcp"] = TcpPlan(**d.get("tcp", {}))
        d["timers"] = TimerPlan(**d.get("timers", {}))
        d["churn"] = tuple(ChurnEventSpec(**e) for e in d.get("churn", ()))
        d["churn_profile"] = ChurnProfile(**d.get("churn_profile", {}))
        d["recovery"] = RecoveryPlan(**d.get("recovery", {}))
        # absent in pre-v5 dicts: default to off, so old payloads parse
        d["prediction_error"] = PredictionErrorPlan(
            **d.get("prediction_error", {})
        )
        # absent in pre-v6 dicts: default to no faults
        d["fault_plan"] = NetworkFaultPlan(**d.get("fault_plan", {}))
        d["failure_history"] = tuple(
            (str(name), int(count))
            for name, count in d.get("failure_history", ())
        )
        return cls(**d)

    # -- hashing -----------------------------------------------------------
    def hash_payload(self) -> Dict[str, Any]:
        """Everything that defines the result (name excluded)."""
        d = self.to_dict()
        del d["name"]
        d["schema"] = SCHEMA_VERSION
        d["engine"] = _ENGINE_VERSION
        return d

    def spec_hash(self) -> str:
        """Stable 16-hex-digit content hash of this spec.

        Memoized per instance (the spec is frozen, so the hash cannot
        change): sweep bookkeeping — cache lookups, shard partitioning,
        incremental manifests — asks for it repeatedly, and the
        ``asdict`` walk underneath is not free.
        """
        cached = self.__dict__.get("_spec_hash")
        if cached is None:
            blob = json.dumps(self.hash_payload(), sort_keys=True,
                              separators=(",", ":"))
            cached = hashlib.sha256(blob.encode()).hexdigest()[:16]
            object.__setattr__(self, "_spec_hash", cached)
        return cached

    # -- grid expansion ----------------------------------------------------
    def with_override(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one (possibly dotted) field replaced.

        ``spec.with_override("workload.level", "O3")`` rebuilds the
        nested frozen dataclass; ``spec.with_override("n_peers", 8)``
        replaces a top-level field.
        """
        head, _, rest = path.partition(".")
        names = {f.name for f in fields(self)}
        if head not in names:
            raise KeyError(f"unknown scenario field {head!r}")
        if not rest:
            return replace(self, **{head: value})
        sub = getattr(self, head)
        sub_names = {f.name for f in fields(sub)}
        if rest not in sub_names:
            raise KeyError(f"unknown field {rest!r} in {head}")
        return replace(self, **{head: replace(sub, **{rest: value})})
