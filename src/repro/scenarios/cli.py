"""Command-line front end for the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios show fig10-cluster-o3
    python -m repro.scenarios run fig10-cluster-o3 --workers 4
    python -m repro.scenarios sweep fig10-cluster-o3 \
        --set n_peers=2,4,8 --set workload.level=O0,O3

``run`` executes a named scenario's registered points; ``sweep``
replaces the registered grid with ``--set`` overrides (cartesian
product).  Both go through the cached parallel runner: repeated
invocations with the same cache directory are served from disk.

Each ``run``/``sweep`` with an on-disk cache also records a *sweep
manifest* (point names, spec hashes, and results) under
``<cache-dir>/sweeps/<label>.json`` (``--label`` defaults to the
scenario name; with ``--no-cache`` no manifest is written and
``--label`` is rejected).  Manifests are written incrementally — a
killed sweep leaves a ``"partial": true`` manifest of what finished,
and because workers cache each result on completion, the rerun
resumes instead of recomputing.  ``compare`` diffs two
manifests — by label in the cache directory, or by explicit path —
and renders a markdown (default) or JSON report; ``--over AXIS``
aggregates over a shared axis (e.g. seeds) instead of matching on
it::

    python -m repro.scenarios compare churn-base churn-grid
    python -m repro.scenarios compare a b --format json --out diff.json
    python -m repro.scenarios compare norejoin rejoin \
        --metric makespan --over seed

``gap`` reads a single policy-ablation sweep (the prediction grid)
and renders each cell's makespan divided by the omniscient-oracle
cell it shadows — the prediction-gap table of docs/prediction-grid.md::

    python -m repro.scenarios gap prediction-grid
    python -m repro.scenarios gap prediction-grid \
        --over seed --over prediction_error.kind

Grids shard across machines deterministically (partitioned by spec
hash, so no coordination is needed) and merge back into a manifest
byte-identical to the unsharded sweep (docs/sharding.md)::

    python -m repro.scenarios sweep churn-grid --shard 0/3
    python -m repro.scenarios sweep churn-grid --shard 1/3   # machine 2
    python -m repro.scenarios sweep churn-grid --shard 2/3   # machine 3
    python -m repro.scenarios merge-shards churn-grid

See ``repro.analysis.compare_sweeps`` for the matching rules.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..params import parse_grid_sets, parse_value
from .manifest import dump_manifest, manifest_payload, point_entry, sweeps_dir
from .registry import get_scenario, scenario_names, SCENARIOS
from .runner import (
    ResultCache,
    ScenarioResult,
    SweepRunner,
    atomic_write_bytes,
    expand_grid,
    shard_indices,
)
from .spec import ScenarioSpec

#: Default on-disk cache location (overridable per invocation).
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_SCENARIO_CACHE", os.path.join(".", ".scenario-cache")
)

# the one --set grammar, shared with repro.serve's with_override and
# repro.fleet run (repro.params) — kept under the historical private
# names this module always exported
_parse_value = parse_value


def _parse_sets(pairs: Sequence[str]) -> Dict[str, Tuple[Any, ...]]:
    try:
        return parse_grid_sets(pairs)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _print_results(results: Sequence[ScenarioResult],
                   runner: SweepRunner) -> None:
    width = max((len(r.name) for r in results), default=4)
    print(f"{'scenario':<{width}}  {'kind':<9} {'t [s]':>12}  status")
    for r in results:
        status = "ok" if r.ok else f"FAILED: {r.reason}"
        print(f"{r.name:<{width}}  {r.kind:<9} {r.t:>12.4f}  {status}")
    total = runner.hits + runner.misses
    print(f"# {total} points: {runner.hits} from cache, "
          f"{runner.misses} executed")


def _runner(args: argparse.Namespace) -> SweepRunner:
    cache_dir = None if args.no_cache else args.cache_dir
    return SweepRunner(cache_dir=cache_dir, max_workers=args.workers)


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(n) for n in scenario_names())
    for name in scenario_names():
        entry = SCENARIOS[name]
        print(f"{name:<{width}}  {entry.base.kind:<9} "
              f"{entry.n_points:>3} pt  {entry.title}")
    return 0


class _UsageError(Exception):
    """A bad scenario name or grid field — reported without traceback."""


def _resolve(fn, *args):
    """Run a name/field resolution step, turning KeyError into a clean
    usage error — execution errors keep their tracebacks."""
    try:
        return fn(*args)
    except KeyError as exc:
        raise _UsageError(exc.args[0]) from None


def cmd_show(args: argparse.Namespace) -> int:
    entry = _resolve(get_scenario, args.name)
    payload = {
        "name": entry.name,
        "title": entry.title,
        "grid": {k: list(v) for k, v in entry.grid_dict().items()},
        "base": entry.base.to_dict(),
        "points": [s.spec_hash() for s in entry.points()],
    }
    if entry.extra:
        payload["extra_grids"] = [
            {path: list(values) for path, values in sheet}
            for sheet in entry.extra
        ]
    print(json.dumps(payload, indent=2))
    return 0


# canonical manifest helpers live in .manifest (shared with the fleet
# dispatcher — byte-identity across writers); historical private names
# kept for this module's own call sites
_sweeps_dir = sweeps_dir
_dump_manifest = dump_manifest
_manifest_payload = manifest_payload
_point_entry = point_entry


def _check_label(label: str | None) -> None:
    """Reject labels that would escape the sweeps directory — before
    the (possibly long) sweep runs, not after."""
    if label is None:
        return
    if not label or label != Path(label).name or label in (".", ".."):
        raise _UsageError(
            f"--label must be a plain file name, got {label!r}"
        )


def _check_label_args(args: argparse.Namespace) -> None:
    _check_label(args.label)
    if args.label is not None and args.no_cache:
        raise _UsageError(
            "--label needs the on-disk cache to record a sweep "
            "manifest; drop --no-cache"
        )


def _manifest_path(args: argparse.Namespace, scenario: str) -> Path:
    label = args.label or scenario
    shard = getattr(args, "shard", None)
    name = (f"{label}.shard{shard[0]}of{shard[1]}.json" if shard
            else f"{label}.json")
    return _sweeps_dir(args.cache_dir) / name


def _write_manifest(args: argparse.Namespace, scenario: str,
                    specs: Sequence[ScenarioSpec],
                    results: Sequence[ScenarioResult],
                    indices: Optional[Sequence[int]] = None,
                    n_points: int = 0,
                    partial: bool = False) -> None:
    """Record the sweep (points + results) for later `compare` calls.

    A *shard* manifest additionally records each point's index in the
    full grid plus the shard geometry, which is exactly what
    ``merge-shards`` needs to reassemble the unsharded manifest byte
    for byte.  ``partial`` marks an in-flight incremental manifest.
    """
    if args.no_cache:
        return
    label = args.label or scenario
    points = [_point_entry(s, r) for s, r in zip(specs, results)]
    payload = _manifest_payload(label, scenario, points)
    shard = getattr(args, "shard", None)
    if shard is not None:
        index, count = shard
        for entry, grid_index in zip(payload["points"], indices or ()):
            entry["index"] = grid_index
        payload["shard"] = {"index": index, "count": count,
                            "n_points": n_points}
    if partial:
        payload["partial"] = True
    path = _manifest_path(args, scenario)
    _dump_manifest(payload, path)
    if not partial:
        print(f"# sweep manifest: {path}")


def _load_manifest(ref: str, cache_dir: str) -> Dict[str, Any]:
    """A manifest by label under <cache-dir>/sweeps/, or by path.

    Bare labels resolve in the sweeps directory *first*, so an
    unrelated same-named file in the working directory cannot shadow
    a recorded sweep.
    """
    looks_like_path = os.sep in ref or ref.endswith(".json")
    candidates = [_sweeps_dir(cache_dir) / f"{ref}.json", Path(ref)]
    if looks_like_path:
        candidates.reverse()
    for path in candidates:
        if path.is_file():
            try:
                payload = json.loads(path.read_text())
            except ValueError as exc:
                raise _UsageError(
                    f"{path} is not a sweep manifest ({exc})"
                ) from None
            if (not isinstance(payload, dict)
                    or "points" not in payload or "label" not in payload):
                raise _UsageError(f"{path} is not a sweep manifest")
            if payload.get("partial"):
                raise _UsageError(
                    f"{path} is a partial manifest — its sweep was "
                    f"killed after {len(payload['points'])} points; "
                    f"rerun the sweep (it resumes from its cache), "
                    f"then compare"
                )
            return payload
    known = sorted(
        p.stem for p in _sweeps_dir(cache_dir).glob("*.json")
    ) if _sweeps_dir(cache_dir).is_dir() else []
    raise _UsageError(
        f"no sweep manifest {ref!r} (looked for "
        f"{' and '.join(str(c) for c in candidates)}); "
        f"known labels: {', '.join(known) or '(none)'}"
    )


def _parse_shard(text: str) -> Tuple[int, int]:
    """``i/N`` → (i, N), with clean usage errors."""
    index, sep, count = text.partition("/")
    try:
        i, n = int(index), int(count)
    except ValueError:
        i = n = -1
    if not sep or n < 1 or not 0 <= i < n:
        raise _UsageError(
            f"--shard expects i/N with 0 <= i < N, got {text!r}"
        )
    return i, n


def _incremental_writer(args: argparse.Namespace, scenario: str,
                        specs: Sequence[ScenarioSpec],
                        indices: Sequence[int], n_points: int):
    """The incremental-manifest hook: after every computed point the
    manifest is rewritten (atomically) with everything completed so
    far, so a killed sweep or shard leaves a ``"partial": true``
    record of its progress — and its worker-written cache entries make
    the rerun resume instead of recompute."""
    if args.no_cache:
        return None
    landed: Dict[str, ScenarioResult] = {}

    def on_result(spec: ScenarioSpec, result: ScenarioResult) -> None:
        landed[spec.spec_hash()] = result
        done = [(i, s, landed[s.spec_hash()])
                for i, s in zip(indices, specs)
                if s.spec_hash() in landed]
        _write_manifest(
            args, scenario,
            [s for _i, s, _r in done], [r for _i, _s, r in done],
            indices=[i for i, _s, _r in done], n_points=n_points,
            partial=True,
        )

    return on_result


def cmd_run(args: argparse.Namespace) -> int:
    _check_label_args(args)
    entry = _resolve(get_scenario, args.name)
    runner = _runner(args)
    specs = entry.points()
    indices = list(range(len(specs)))
    on_result = _incremental_writer(args, entry.name, specs, indices,
                                    len(specs))
    results = runner.run(specs, parallel=not args.serial,
                         on_result=on_result)
    _print_results(results, runner)
    _write_manifest(args, entry.name, specs, results)
    return 0 if all(r.ok for r in results) else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    _check_label_args(args)
    entry = _resolve(get_scenario, args.name)
    grid = _parse_sets(args.set or [])
    # --set replaces the registered grid wholesale; without it the
    # entry's own points run — *including* extra grid sheets
    # (prediction-grid's error ablation) that one cartesian product
    # over the main grid cannot express
    full = (_resolve(expand_grid, entry.base, grid) if grid
            else entry.points())
    args.shard = _parse_shard(args.shard) if args.shard else None
    if args.shard is not None:
        index, count = args.shard
        indices = shard_indices(full, index, count)
        specs = [full[i] for i in indices]
        print(f"# shard {index}/{count}: {len(specs)} of "
              f"{len(full)} points")
    else:
        specs, indices = full, list(range(len(full)))
    runner = _runner(args)
    on_result = _incremental_writer(args, entry.name, specs, indices,
                                    len(full))
    results = runner.run(specs, parallel=not args.serial,
                         on_result=on_result)
    _print_results(results, runner)
    _write_manifest(args, entry.name, specs, results, indices=indices,
                    n_points=len(full))
    return 0 if all(r.ok for r in results) else 1


def _load_shard_manifests(args: argparse.Namespace) -> List[Dict[str, Any]]:
    if args.shards:
        paths = [Path(p) for p in args.shards]
    else:
        pattern = f"{args.label}.shard*of*.json"
        paths = sorted(_sweeps_dir(args.cache_dir).glob(pattern))
    if not paths:
        raise _UsageError(
            f"no shard manifests for label {args.label!r} under "
            f"{_sweeps_dir(args.cache_dir)} (run sweeps with --shard "
            f"i/N first, or pass explicit paths via --shards)"
        )
    manifests = []
    for path in paths:
        if not path.is_file():
            raise _UsageError(f"shard manifest {path} does not exist")
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            raise _UsageError(f"{path} is not a manifest ({exc})") from None
        if "shard" not in payload:
            raise _UsageError(
                f"{path} is not a *shard* manifest (no shard geometry); "
                f"it may already be merged"
            )
        payload["_path"] = str(path)
        manifests.append(payload)
    return manifests


def cmd_merge_shards(args: argparse.Namespace) -> int:
    """Union shard manifests (and optionally shard caches) into one
    ``compare``-ready manifest, byte-identical to an unsharded sweep."""
    _check_label(args.label)
    manifests = _load_shard_manifests(args)
    scenario = manifests[0].get("scenario")
    count = manifests[0]["shard"]["count"]
    n_points = manifests[0]["shard"]["n_points"]
    by_index: Dict[int, Dict[str, Any]] = {}
    hash_of: Dict[str, str] = {}
    seen_shards = set()
    for payload in manifests:
        path = payload["_path"]
        if payload.get("partial"):
            raise _UsageError(
                f"{path} is a partial manifest (its sweep was killed "
                f"mid-flight); rerun that shard — its cache makes the "
                f"rerun resume — then merge"
            )
        if payload.get("label") != args.label:
            raise _UsageError(
                f"{path} belongs to label {payload.get('label')!r}, "
                f"not {args.label!r}"
            )
        if payload.get("scenario") != scenario:
            raise _UsageError(
                f"{path} ran scenario {payload.get('scenario')!r}, "
                f"expected {scenario!r}"
            )
        geometry = payload["shard"]
        if geometry["count"] != count or geometry["n_points"] != n_points:
            raise _UsageError(
                f"{path} has shard geometry {geometry['index']}/"
                f"{geometry['count']} over {geometry['n_points']} points; "
                f"expected N={count} over {n_points}"
            )
        if geometry["index"] in seen_shards:
            raise _UsageError(
                f"duplicate shard index {geometry['index']} ({path})"
            )
        seen_shards.add(geometry["index"])
        for entry in payload["points"]:
            index = entry.get("index")
            if index is None:
                raise _UsageError(f"{path}: point {entry['name']!r} "
                                  f"carries no grid index")
            known = hash_of.get(entry["name"])
            if known is not None and known != entry["spec_hash"]:
                raise _UsageError(
                    f"conflicting spec hashes for point {entry['name']!r} "
                    f"under label {args.label!r}: {known} vs "
                    f"{entry['spec_hash']} — the shards were run from "
                    f"different grids or schema versions; re-run them "
                    f"from one grid before merging"
                )
            hash_of[entry["name"]] = entry["spec_hash"]
            if index in by_index:
                raise _UsageError(
                    f"grid index {index} appears in two shards "
                    f"({by_index[index]['name']!r} and {entry['name']!r})"
                )
            by_index[index] = entry
    missing = [i for i in range(n_points) if i not in by_index]
    if missing:
        have = sorted(seen_shards)
        raise _UsageError(
            f"merge is incomplete: {len(missing)} of {n_points} grid "
            f"points missing (have shards {have} of {count}); run the "
            f"remaining shards first"
        )
    points = []
    for i in range(n_points):
        entry = dict(by_index[i])
        del entry["index"]
        points.append(entry)
    merged = _manifest_payload(args.label, scenario, points)
    out = _sweeps_dir(args.cache_dir) / f"{args.label}.json"
    _dump_manifest(merged, out)
    print(f"# merged {len(manifests)} shards -> {out}")
    copied = 0
    for source in args.from_cache or ():
        copied += ResultCache(args.cache_dir).absorb(source)
        traces = Path(source) / "traces"
        if traces.is_dir():
            dst_dir = Path(args.cache_dir) / "traces"
            dst_dir.mkdir(parents=True, exist_ok=True)
            for src in sorted(traces.glob("*.trace.pkl")):
                dst = dst_dir / src.name
                if not dst.exists():
                    # atomic: a worker loading this pickle mid-copy
                    # must never see a torn file
                    atomic_write_bytes(dst, src.read_bytes())
    if args.from_cache:
        print(f"# absorbed {copied} cached results from "
              f"{len(args.from_cache)} shard caches")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from ..analysis import SweepData, compare_sweeps

    a = SweepData.from_manifest(_load_manifest(args.a, args.cache_dir))
    b = SweepData.from_manifest(_load_manifest(args.b, args.cache_dir))
    percentiles: Tuple[float, ...] = ()
    if args.percentiles:
        try:
            percentiles = tuple(
                float(p) for p in args.percentiles.split(",") if p.strip()
            )
        except ValueError:
            raise _UsageError(
                f"--percentiles expects comma-separated numbers, "
                f"got {args.percentiles!r}"
            ) from None
    try:
        comparison = compare_sweeps(a, b, metric=args.metric,
                                    over=tuple(args.over or ()),
                                    percentiles=percentiles)
    except ValueError as exc:
        raise _UsageError(str(exc)) from None
    if args.format == "html":
        text = comparison.to_html()
    elif args.format == "json":
        text = comparison.to_json()
    else:
        text = comparison.to_markdown()
    if args.out:
        Path(args.out).write_text(text)
        print(f"# report written to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_gap(args: argparse.Namespace) -> int:
    from ..analysis import SweepData, prediction_gap

    data = SweepData.from_manifest(
        _load_manifest(args.label, args.cache_dir)
    )
    try:
        report = prediction_gap(
            data, metric=args.metric, policy_axis=args.policy_axis,
            baseline=args.baseline,
            over=tuple(args.over) if args.over else ("seed",),
        )
    except ValueError as exc:
        raise _UsageError(str(exc)) from None
    text = (report.to_json() if args.format == "json"
            else report.to_markdown())
    if args.out:
        Path(args.out).write_text(text)
        print(f"# report written to {args.out}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List and run declarative evaluation scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named scenarios")

    show = sub.add_parser("show", help="dump one scenario's spec as JSON")
    show.add_argument("name")

    def add_exec_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("name")
        p.add_argument("--serial", action="store_true",
                       help="run cache misses in-process, no pool")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool width (default: cpu count)")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"on-disk result cache "
                            f"(default {DEFAULT_CACHE_DIR})")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk cache entirely")
        p.add_argument("--label", default=None,
                       help="sweep-manifest name for `compare` "
                            "(default: the scenario name)")

    run = sub.add_parser("run", help="run a named scenario's points")
    add_exec_options(run)

    sweep = sub.add_parser(
        "sweep", help="run a parameter grid over a scenario's base spec"
    )
    add_exec_options(sweep)
    sweep.add_argument(
        "--set", action="append", metavar="PATH=V1,V2,...",
        help="grid values for one (dotted) spec field; repeatable",
    )
    sweep.add_argument(
        "--shard", default=None, metavar="i/N",
        help="run only this machine's deterministic 1/N slice of the "
             "grid (partitioned by spec hash); merge-shards reassembles "
             "the full sweep manifest",
    )

    merge = sub.add_parser(
        "merge-shards",
        help="union shard manifests (and caches) into one sweep manifest",
    )
    merge.add_argument("label", help="sweep label the shards were run under")
    merge.add_argument("--shards", nargs="+", default=None,
                       metavar="PATH",
                       help="explicit shard-manifest paths (default: all "
                            "<label>.shard*of*.json in the sweeps dir)")
    merge.add_argument("--from-cache", action="append", metavar="DIR",
                       help="also union this shard's result cache (and "
                            "trace cache) into --cache-dir; repeatable")
    merge.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"target cache directory "
                            f"(default {DEFAULT_CACHE_DIR})")

    compare = sub.add_parser(
        "compare", help="diff two cached sweeps into a report"
    )
    compare.add_argument("a", help="sweep label or manifest path (baseline)")
    compare.add_argument("b", help="sweep label or manifest path")
    compare.add_argument("--metric", default="t",
                         help="result field or metric to compare "
                              "(default: t; e.g. makespan, sim_events)")
    compare.add_argument("--over", action="append", metavar="AXIS",
                         help="aggregate over this shared grid axis "
                              "instead of matching on it (repeatable; "
                              "e.g. --over seed)")
    compare.add_argument("--percentiles", default=None, metavar="P1,P2,...",
                         help="add per-side percentile columns over the "
                              "aggregated points (e.g. 50,99 — the same "
                              "estimator repro.serve answers SLO queries "
                              "with)")
    compare.add_argument("--format", choices=("markdown", "json", "html"),
                         default="markdown", help="report format")
    compare.add_argument("--out", default=None,
                         help="write the report to a file instead of stdout")
    compare.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"where sweep manifests live "
                              f"(default {DEFAULT_CACHE_DIR})")

    gap = sub.add_parser(
        "gap",
        help="predicted-vs-oracle gap table of one cached sweep",
    )
    gap.add_argument("label", help="sweep label or manifest path")
    gap.add_argument("--metric", default="makespan",
                     help="metric each cell averages (default: makespan)")
    gap.add_argument("--baseline", default="oracle",
                     help="policy every cell is divided by "
                          "(default: oracle)")
    gap.add_argument("--policy-axis", default="selection_policy",
                     help="grid axis carrying the policy "
                          "(default: selection_policy)")
    gap.add_argument("--over", action="append", metavar="AXIS",
                     help="aggregate over this grid axis instead of "
                          "keeping it as a cell axis (repeatable; "
                          "default: seed)")
    gap.add_argument("--format", choices=("markdown", "json"),
                     default="markdown", help="report format")
    gap.add_argument("--out", default=None,
                     help="write the report to a file instead of stdout")
    gap.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     help=f"where sweep manifests live "
                          f"(default {DEFAULT_CACHE_DIR})")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "show": cmd_show,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "merge-shards": cmd_merge_shards,
        "compare": cmd_compare,
        "gap": cmd_gap,
    }[args.command]
    try:
        return handler(args)
    except _UsageError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
