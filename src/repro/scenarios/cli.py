"""Command-line front end for the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios show fig10-cluster-o3
    python -m repro.scenarios run fig10-cluster-o3 --workers 4
    python -m repro.scenarios sweep fig10-cluster-o3 \
        --set n_peers=2,4,8 --set workload.level=O0,O3

``run`` executes a named scenario's registered points; ``sweep``
replaces the registered grid with ``--set`` overrides (cartesian
product).  Both go through the cached parallel runner: repeated
invocations with the same cache directory are served from disk.

Each ``run``/``sweep`` with an on-disk cache also records a *sweep
manifest* (point names, spec hashes, and results) under
``<cache-dir>/sweeps/<label>.json`` (``--label`` defaults to the
scenario name; with ``--no-cache`` no manifest is written and
``--label`` is rejected).  ``compare`` diffs two
manifests — by label in the cache directory, or by explicit path —
and renders a markdown (default) or JSON report; ``--over AXIS``
aggregates over a shared axis (e.g. seeds) instead of matching on
it::

    python -m repro.scenarios compare churn-base churn-grid
    python -m repro.scenarios compare a b --format json --out diff.json
    python -m repro.scenarios compare norejoin rejoin \
        --metric makespan --over seed

See ``repro.analysis.compare_sweeps`` for the matching rules.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, Sequence, Tuple

from .registry import get_scenario, scenario_names, SCENARIOS
from .runner import ScenarioResult, SweepRunner, expand_grid
from .spec import ScenarioSpec

#: Default on-disk cache location (overridable per invocation).
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_SCENARIO_CACHE", os.path.join(".", ".scenario-cache")
)


def _parse_value(text: str) -> Any:
    if text.lower() in ("true", "false"):
        # boolean spec fields (e.g. recovery.election) — a bare string
        # would be truthy either way and silently lie
        return text.lower() == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_sets(pairs: Sequence[str]) -> Dict[str, Tuple[Any, ...]]:
    grid: Dict[str, Tuple[Any, ...]] = {}
    for pair in pairs:
        path, eq, values = pair.partition("=")
        if not eq or not values:
            raise SystemExit(f"--set expects path=v1[,v2,...], got {pair!r}")
        grid[path] = tuple(_parse_value(v) for v in values.split(","))
    return grid


def _print_results(results: Sequence[ScenarioResult],
                   runner: SweepRunner) -> None:
    width = max((len(r.name) for r in results), default=4)
    print(f"{'scenario':<{width}}  {'kind':<9} {'t [s]':>12}  status")
    for r in results:
        status = "ok" if r.ok else f"FAILED: {r.reason}"
        print(f"{r.name:<{width}}  {r.kind:<9} {r.t:>12.4f}  {status}")
    total = runner.hits + runner.misses
    print(f"# {total} points: {runner.hits} from cache, "
          f"{runner.misses} executed")


def _runner(args: argparse.Namespace) -> SweepRunner:
    cache_dir = None if args.no_cache else args.cache_dir
    return SweepRunner(cache_dir=cache_dir, max_workers=args.workers)


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(n) for n in scenario_names())
    for name in scenario_names():
        entry = SCENARIOS[name]
        print(f"{name:<{width}}  {entry.base.kind:<9} "
              f"{entry.n_points:>3} pt  {entry.title}")
    return 0


class _UsageError(Exception):
    """A bad scenario name or grid field — reported without traceback."""


def _resolve(fn, *args):
    """Run a name/field resolution step, turning KeyError into a clean
    usage error — execution errors keep their tracebacks."""
    try:
        return fn(*args)
    except KeyError as exc:
        raise _UsageError(exc.args[0]) from None


def cmd_show(args: argparse.Namespace) -> int:
    entry = _resolve(get_scenario, args.name)
    payload = {
        "name": entry.name,
        "title": entry.title,
        "grid": {k: list(v) for k, v in entry.grid_dict().items()},
        "base": entry.base.to_dict(),
        "points": [s.spec_hash() for s in entry.points()],
    }
    print(json.dumps(payload, indent=2))
    return 0


def _sweeps_dir(cache_dir: str) -> Path:
    return Path(cache_dir) / "sweeps"


def _check_label(label: str | None) -> None:
    """Reject labels that would escape the sweeps directory — before
    the (possibly long) sweep runs, not after."""
    if label is None:
        return
    if not label or label != Path(label).name or label in (".", ".."):
        raise _UsageError(
            f"--label must be a plain file name, got {label!r}"
        )


def _check_label_args(args: argparse.Namespace) -> None:
    _check_label(args.label)
    if args.label is not None and args.no_cache:
        raise _UsageError(
            "--label needs the on-disk cache to record a sweep "
            "manifest; drop --no-cache"
        )


def _write_manifest(args: argparse.Namespace, scenario: str,
                    specs: Sequence[ScenarioSpec],
                    results: Sequence[ScenarioResult]) -> None:
    """Record the sweep (points + results) for later `compare` calls."""
    if args.no_cache:
        return
    label = args.label or scenario
    payload = {
        "label": label,
        "scenario": scenario,
        "points": [
            {"name": s.name, "spec_hash": r.spec_hash,
             "result": r.to_dict()}
            for s, r in zip(specs, results)
        ],
    }
    out = _sweeps_dir(args.cache_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{label}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"# sweep manifest: {path}")


def _load_manifest(ref: str, cache_dir: str) -> Dict[str, Any]:
    """A manifest by label under <cache-dir>/sweeps/, or by path.

    Bare labels resolve in the sweeps directory *first*, so an
    unrelated same-named file in the working directory cannot shadow
    a recorded sweep.
    """
    looks_like_path = os.sep in ref or ref.endswith(".json")
    candidates = [_sweeps_dir(cache_dir) / f"{ref}.json", Path(ref)]
    if looks_like_path:
        candidates.reverse()
    for path in candidates:
        if path.is_file():
            try:
                payload = json.loads(path.read_text())
            except ValueError as exc:
                raise _UsageError(
                    f"{path} is not a sweep manifest ({exc})"
                ) from None
            if (not isinstance(payload, dict)
                    or "points" not in payload or "label" not in payload):
                raise _UsageError(f"{path} is not a sweep manifest")
            return payload
    known = sorted(
        p.stem for p in _sweeps_dir(cache_dir).glob("*.json")
    ) if _sweeps_dir(cache_dir).is_dir() else []
    raise _UsageError(
        f"no sweep manifest {ref!r} (looked for "
        f"{' and '.join(str(c) for c in candidates)}); "
        f"known labels: {', '.join(known) or '(none)'}"
    )


def cmd_run(args: argparse.Namespace) -> int:
    _check_label_args(args)
    entry = _resolve(get_scenario, args.name)
    runner = _runner(args)
    specs = entry.points()
    results = runner.run(specs, parallel=not args.serial)
    _print_results(results, runner)
    _write_manifest(args, entry.name, specs, results)
    return 0 if all(r.ok for r in results) else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    _check_label_args(args)
    entry = _resolve(get_scenario, args.name)
    grid = _parse_sets(args.set or [])
    specs = _resolve(expand_grid, entry.base, grid or entry.grid_dict())
    runner = _runner(args)
    results = runner.run(specs, parallel=not args.serial)
    _print_results(results, runner)
    _write_manifest(args, entry.name, specs, results)
    return 0 if all(r.ok for r in results) else 1


def cmd_compare(args: argparse.Namespace) -> int:
    from ..analysis import SweepData, compare_sweeps

    a = SweepData.from_manifest(_load_manifest(args.a, args.cache_dir))
    b = SweepData.from_manifest(_load_manifest(args.b, args.cache_dir))
    try:
        comparison = compare_sweeps(a, b, metric=args.metric,
                                    over=tuple(args.over or ()))
    except ValueError as exc:
        raise _UsageError(str(exc)) from None
    text = (comparison.to_json() if args.format == "json"
            else comparison.to_markdown())
    if args.out:
        Path(args.out).write_text(text)
        print(f"# report written to {args.out}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List and run declarative evaluation scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named scenarios")

    show = sub.add_parser("show", help="dump one scenario's spec as JSON")
    show.add_argument("name")

    def add_exec_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("name")
        p.add_argument("--serial", action="store_true",
                       help="run cache misses in-process, no pool")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool width (default: cpu count)")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"on-disk result cache "
                            f"(default {DEFAULT_CACHE_DIR})")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk cache entirely")
        p.add_argument("--label", default=None,
                       help="sweep-manifest name for `compare` "
                            "(default: the scenario name)")

    run = sub.add_parser("run", help="run a named scenario's points")
    add_exec_options(run)

    sweep = sub.add_parser(
        "sweep", help="run a parameter grid over a scenario's base spec"
    )
    add_exec_options(sweep)
    sweep.add_argument(
        "--set", action="append", metavar="PATH=V1,V2,...",
        help="grid values for one (dotted) spec field; repeatable",
    )

    compare = sub.add_parser(
        "compare", help="diff two cached sweeps into a report"
    )
    compare.add_argument("a", help="sweep label or manifest path (baseline)")
    compare.add_argument("b", help="sweep label or manifest path")
    compare.add_argument("--metric", default="t",
                         help="result field or metric to compare "
                              "(default: t; e.g. makespan, sim_events)")
    compare.add_argument("--over", action="append", metavar="AXIS",
                         help="aggregate over this shared grid axis "
                              "instead of matching on it (repeatable; "
                              "e.g. --over seed)")
    compare.add_argument("--format", choices=("markdown", "json"),
                         default="markdown", help="report format")
    compare.add_argument("--out", default=None,
                         help="write the report to a file instead of stdout")
    compare.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"where sweep manifests live "
                              f"(default {DEFAULT_CACHE_DIR})")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "show": cmd_show,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "compare": cmd_compare,
    }[args.command]
    try:
        return handler(args)
    except _UsageError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
