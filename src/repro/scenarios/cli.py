"""Command-line front end for the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios show fig10-cluster-o3
    python -m repro.scenarios run fig10-cluster-o3 --workers 4
    python -m repro.scenarios sweep fig10-cluster-o3 \
        --set n_peers=2,4,8 --set workload.level=O0,O3

``run`` executes a named scenario's registered points; ``sweep``
replaces the registered grid with ``--set`` overrides (cartesian
product).  Both go through the cached parallel runner: repeated
invocations with the same cache directory are served from disk.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Sequence, Tuple

from .registry import get_scenario, scenario_names, SCENARIOS
from .runner import ScenarioResult, SweepRunner, expand_grid
from .spec import ScenarioSpec

#: Default on-disk cache location (overridable per invocation).
DEFAULT_CACHE_DIR = os.environ.get(
    "REPRO_SCENARIO_CACHE", os.path.join(".", ".scenario-cache")
)


def _parse_value(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_sets(pairs: Sequence[str]) -> Dict[str, Tuple[Any, ...]]:
    grid: Dict[str, Tuple[Any, ...]] = {}
    for pair in pairs:
        path, eq, values = pair.partition("=")
        if not eq or not values:
            raise SystemExit(f"--set expects path=v1[,v2,...], got {pair!r}")
        grid[path] = tuple(_parse_value(v) for v in values.split(","))
    return grid


def _print_results(results: Sequence[ScenarioResult],
                   runner: SweepRunner) -> None:
    width = max((len(r.name) for r in results), default=4)
    print(f"{'scenario':<{width}}  {'kind':<9} {'t [s]':>12}  status")
    for r in results:
        status = "ok" if r.ok else f"FAILED: {r.reason}"
        print(f"{r.name:<{width}}  {r.kind:<9} {r.t:>12.4f}  {status}")
    total = runner.hits + runner.misses
    print(f"# {total} points: {runner.hits} from cache, "
          f"{runner.misses} executed")


def _runner(args: argparse.Namespace) -> SweepRunner:
    cache_dir = None if args.no_cache else args.cache_dir
    return SweepRunner(cache_dir=cache_dir, max_workers=args.workers)


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(n) for n in scenario_names())
    for name in scenario_names():
        entry = SCENARIOS[name]
        print(f"{name:<{width}}  {entry.base.kind:<9} "
              f"{entry.n_points:>3} pt  {entry.title}")
    return 0


class _UsageError(Exception):
    """A bad scenario name or grid field — reported without traceback."""


def _resolve(fn, *args):
    """Run a name/field resolution step, turning KeyError into a clean
    usage error — execution errors keep their tracebacks."""
    try:
        return fn(*args)
    except KeyError as exc:
        raise _UsageError(exc.args[0]) from None


def cmd_show(args: argparse.Namespace) -> int:
    entry = _resolve(get_scenario, args.name)
    payload = {
        "name": entry.name,
        "title": entry.title,
        "grid": {k: list(v) for k, v in entry.grid_dict().items()},
        "base": entry.base.to_dict(),
        "points": [s.spec_hash() for s in entry.points()],
    }
    print(json.dumps(payload, indent=2))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    entry = _resolve(get_scenario, args.name)
    runner = _runner(args)
    results = runner.run(entry.points(), parallel=not args.serial)
    _print_results(results, runner)
    return 0 if all(r.ok for r in results) else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    entry = _resolve(get_scenario, args.name)
    grid = _parse_sets(args.set or [])
    specs = _resolve(expand_grid, entry.base, grid or entry.grid_dict())
    runner = _runner(args)
    results = runner.run(specs, parallel=not args.serial)
    _print_results(results, runner)
    return 0 if all(r.ok for r in results) else 1


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List and run declarative evaluation scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named scenarios")

    show = sub.add_parser("show", help="dump one scenario's spec as JSON")
    show.add_argument("name")

    def add_exec_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("name")
        p.add_argument("--serial", action="store_true",
                       help="run cache misses in-process, no pool")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool width (default: cpu count)")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"on-disk result cache "
                            f"(default {DEFAULT_CACHE_DIR})")
        p.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk cache entirely")

    run = sub.add_parser("run", help="run a named scenario's points")
    add_exec_options(run)

    sweep = sub.add_parser(
        "sweep", help="run a parameter grid over a scenario's base spec"
    )
    add_exec_options(sweep)
    sweep.add_argument(
        "--set", action="append", metavar="PATH=V1,V2,...",
        help="grid values for one (dotted) spec field; repeatable",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "show": cmd_show,
        "run": cmd_run,
        "sweep": cmd_sweep,
    }[args.command]
    try:
        return handler(args)
    except _UsageError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
