"""The P2PDC server (paper §III-A1).

The server manages tracker connection/disconnection, hands new nodes a
list of the closest connected trackers, and stores statistics about
resources donated/consumed.  Crucially it is *not* on any critical
path: when it is down, the overlay keeps working off local tracker
lists; trackers buffer their statistics and re-send when the server
comes back.
"""

from __future__ import annotations

from typing import Dict, List

from .ip import IPv4, proximity
from .messages import (
    GetTrackers,
    NodeRef,
    StatsReport,
    TrackerConnect,
    TrackerDisconnect,
    TrackersReply,
)
from .node import NodeActor


class Server(NodeActor):
    """The (non-critical) central server: tracker registry + statistics."""
    role = "server"

    def __init__(self, overlay, name, ip, host) -> None:
        super().__init__(overlay, name, ip, host)
        self._trackers: Dict[str, NodeRef] = {}  # name -> ref
        self.statistics: List[StatsReport] = []

    # -- administration -----------------------------------------------------
    def seed_trackers(self, refs: List[NodeRef]) -> None:
        for ref in refs:
            self._trackers[ref.name] = ref

    @property
    def known_trackers(self) -> List[NodeRef]:
        return sorted(self._trackers.values(), key=lambda r: int(r.ip))

    def closest_trackers(self, ip: IPv4, k: int) -> List[NodeRef]:
        ranked = sorted(
            self._trackers.values(),
            key=lambda r: (-proximity(ip, r.ip), abs(int(r.ip) - int(ip))),
        )
        return ranked[:k]

    # -- handlers ---------------------------------------------------------------
    def handle_GetTrackers(self, msg: GetTrackers) -> None:
        reply = TrackersReply(
            self.ref,
            req_id=msg.req_id,
            trackers=self.closest_trackers(
                msg.sender.ip, self.overlay.config.bootstrap_tracker_count
            ),
        )
        self.send_critical(msg.sender, reply)

    def handle_TrackerConnect(self, msg: TrackerConnect) -> None:
        self._trackers[msg.tracker.name] = msg.tracker
        self.overlay.stats.count("server_tracker_connects")

    def handle_TrackerDisconnect(self, msg: TrackerDisconnect) -> None:
        for name, ref in list(self._trackers.items()):
            if ref.ip == msg.ip:
                del self._trackers[name]
        self.overlay.stats.count("server_tracker_disconnects")

    def handle_StatsReport(self, msg: StatsReport) -> None:
        self.statistics.append(msg)
