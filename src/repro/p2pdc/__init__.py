"""P2PDC: the decentralized environment for peer-to-peer computing.

Implements the paper's §III: hybrid topology manager (server /
trackers / peers, IP-proximity zones, tracker line with neighbour
sets), peers collection, hierarchical task allocation with
coordinators (Cmax = 32), the distributed iterative computation over
P2PSAP channels, and failure handling.
"""

from .allocation import Submitter, TaskOutcome, TaskSpec
from .churn import (
    ChurnEvent,
    ChurnPlan,
    CoordinatorChurn,
    poisson_peer_failures,
    rejoin_events,
)
from .collection import CollectionLog, collect_peers
from .computation import (
    PeerComputeError,
    SubtaskExecution,
    WorkAssignment,
    WorkloadSpec,
    channel_context_for,
)
from .deploy import Deployment, ZonePlan, deploy_overlay, plan_zones
from .groups import (
    assign_ranks,
    group_by_proximity,
    group_randomly,
    pick_coordinator,
)
from .ip import IPv4, closest, common_prefix_len, proximity
from .messages import NodeRef
from .node import NodeActor
from .overlay import Overlay, OverlayConfig
from .peer import GroupDuty, Peer
from .prediction import (
    GroupPricer,
    PREDICTION_ERROR_KINDS,
    PredictionError,
    candidate_groups,
    oracle_makespan,
    peer_score,
    predict_makespan,
)
from .server import Server
from .stats import OverlayStats, TaskTimings
from .tracker import PeerRecord, Tracker

__all__ = [
    "ChurnEvent",
    "ChurnPlan",
    "poisson_peer_failures",
    "CollectionLog",
    "CoordinatorChurn",
    "Deployment",
    "GroupDuty",
    "GroupPricer",
    "IPv4",
    "NodeActor",
    "NodeRef",
    "Overlay",
    "OverlayConfig",
    "OverlayStats",
    "PREDICTION_ERROR_KINDS",
    "Peer",
    "PeerComputeError",
    "PeerRecord",
    "PredictionError",
    "Server",
    "SubtaskExecution",
    "Submitter",
    "TaskOutcome",
    "TaskSpec",
    "TaskTimings",
    "Tracker",
    "WorkAssignment",
    "WorkloadSpec",
    "ZonePlan",
    "assign_ranks",
    "plan_zones",
    "candidate_groups",
    "channel_context_for",
    "closest",
    "collect_peers",
    "common_prefix_len",
    "deploy_overlay",
    "group_by_proximity",
    "group_randomly",
    "oracle_makespan",
    "peer_score",
    "pick_coordinator",
    "predict_makespan",
    "proximity",
    "rejoin_events",
]
