"""Base actor for P2PDC overlay nodes.

Every node owns a mailbox and a main-loop process that dispatches
messages to ``handle_<MessageType>`` methods.  Control-plane sends
travel over the fluid network (so the control plane has real latency
and bandwidth cost); delivery to a crashed node is silently dropped —
exactly the failure surface the paper's timeout protocols deal with.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..desim import Interrupt, Mailbox, Signal
from ..net import Host
from .ip import IPv4
from .messages import Message, MsgAck, NodeRef, Reliable, TimerFire


class NodeActor:
    """An overlay node: mailbox, timers, request/reply bookkeeping."""
    role = "node"

    def __init__(self, overlay, name: str, ip: IPv4, host: Host) -> None:
        self.overlay = overlay
        self.sim = overlay.sim
        self.net = overlay.net
        self.name = name
        self.ip = ip
        self.host = host
        self.mailbox = Mailbox(name)
        self.alive = True
        self.process = None
        self._req_counter = 0
        self._pending: Dict[int, Signal] = {}
        #: Incarnation counter: timers armed before a crash must not
        #: fire into a revived incarnation (bumped by crash()).
        self._timer_epoch = 0
        #: identity is immutable, so the ref every message carries is
        #: built once instead of per send
        self._ref = NodeRef(name, ip, host.name, self.role)
        #: per-message-type bound handler cache (None = unhandled)
        self._handlers: Dict[type, Any] = {}
        #: reusable ScheduledCall per timer tag — a chain that re-arms
        #: from its own firing reuses one handle for its whole life
        self._timer_calls: Dict[str, Any] = {}
        #: reliable-delivery state (only touched when the overlay's
        #: reliability hardening is on): per-node monotone envelope
        #: ids, unacked sends awaiting retry, and the receiver-side
        #: dedup set of (sender name, msg_id) pairs already dispatched
        self._rel_counter = 0
        self._rel_pending: Dict[int, Any] = {}
        self._rel_seen: set = set()
        overlay.register(self)

    # -- identity ------------------------------------------------------------
    @property
    def ref(self) -> NodeRef:
        return self._ref

    def __repr__(self) -> str:
        status = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.name}@{self.ip} {status}>"

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self.process is None:
            self.process = self.sim.process(self._main_loop(), name=self.name)
            self.on_start()

    def on_start(self) -> None:
        """Hook for subclasses (timers, bootstrap)."""

    def crash(self) -> None:
        """Fail-stop: the node stops handling and receiving messages."""
        if not self.alive:
            return
        self.alive = False
        self._timer_epoch += 1
        self.mailbox.clear()
        # unacked reliable sends die with the incarnation (the epoch
        # guard already silences their retry timers); the dedup set
        # survives, so a revived node still drops late duplicates
        self._rel_pending.clear()
        if self.process is not None:
            self.process.interrupt("crash")
        self.overlay.stats.count("crashes")
        history = self.overlay.failure_history
        history[self.name] = history.get(self.name, 0) + 1

    def revive(self) -> None:
        """Restart after an outage (used for the server come-back)."""
        if self.alive:
            return
        self.alive = True
        self.process = self.sim.process(self._main_loop(), name=self.name)
        self.on_revive()

    def on_revive(self) -> None:
        """Hook for subclasses."""

    # -- main loop ------------------------------------------------------------
    def _main_loop(self):
        try:
            while True:
                msg = yield self.mailbox.get()
                if not self.alive:
                    return
                self._dispatch(msg)
        except Interrupt:
            return

    def _dispatch(self, msg: Message) -> None:
        cls = type(msg)
        if cls is TimerFire:
            handler = getattr(self, f"timer_{msg.tag}", None)
            if handler is None:
                raise RuntimeError(f"{self.name}: no timer handler {msg.tag!r}")
            handler(msg.payload)
            return
        if cls is Reliable:
            # every copy is re-acked (the ack itself may have been
            # lost), the inner message dispatched exactly once
            self.send(msg.sender, MsgAck(self._ref, ack_of=msg.msg_id))
            key = (msg.sender.name, msg.msg_id)
            if key in self._rel_seen:
                self.overlay.stats.count("duplicate_deliveries")
                return
            self._rel_seen.add(key)
            self._dispatch(msg.inner)
            return
        if cls is MsgAck:
            self._rel_pending.pop(msg.ack_of, None)
            return
        try:
            handler = self._handlers[cls]
        except KeyError:
            handler = getattr(self, f"handle_{cls.__name__}", None)
            self._handlers[cls] = handler
        if handler is None:
            self.overlay.stats.count("unhandled_messages")
            return
        handler(msg)

    # -- messaging ------------------------------------------------------------
    def send(self, dst: NodeRef, msg: Message) -> None:
        """Asynchronous control-plane send over the network."""
        self.overlay.transport(self, dst, msg)

    def send_critical(self, dst: NodeRef, msg: Message) -> None:
        """A send the protocol cannot afford to lose.

        With the overlay's ``reliability`` hardening off (the
        default) this is exactly :meth:`send` — no envelope, no
        timers, bit-identical dynamics.  With it on, the message
        travels in a :class:`Reliable` envelope with a per-node
        monotone id: the receiver acks every copy and dispatches
        exactly once, while this side retries under bounded
        exponential backoff until acked or out of budget.  One
        envelope per hop — a relay re-wraps for its own leg.
        """
        if not self.overlay.config.reliability:
            self.send(dst, msg)
            return
        self._rel_counter += 1
        msg_id = self._rel_counter
        envelope = Reliable(self._ref, inner=msg, msg_id=msg_id)
        self._rel_pending[msg_id] = (dst, envelope)
        self.send(dst, envelope)
        self._arm_rel_retry(msg_id, 0)

    def _arm_rel_retry(self, msg_id: int, attempt: int) -> None:
        # direct call_later with the incarnation guard: set_timer's
        # per-tag handle reuse would collide for concurrent retries
        cfg = self.overlay.config
        delay = min(cfg.ack_timeout * 2.0 ** attempt, cfg.retry_backoff_cap)
        self.sim.call_later(delay, self._rel_retry, self._timer_epoch,
                            msg_id, attempt)

    def _rel_retry(self, epoch: int, msg_id: int, attempt: int) -> None:
        if not self.alive or self._timer_epoch != epoch:
            return
        entry = self._rel_pending.get(msg_id)
        if entry is None:
            return  # acked
        if attempt >= self.overlay.config.max_send_retries:
            del self._rel_pending[msg_id]
            self.overlay.stats.count("reliable_abandoned")
            return
        dst, envelope = entry
        self.overlay.stats.count("reliable_retries")
        self.send(dst, envelope)
        self._arm_rel_retry(msg_id, attempt + 1)

    def _timer_fire(self, epoch: int, tag: str, payload: Any) -> None:
        if self.alive and self._timer_epoch == epoch:
            self.mailbox.put(TimerFire(self._ref, tag, payload))

    def set_timer(self, delay: float, tag: str, payload: Any = None) -> None:
        # Reuse the tag's handle when its previous firing is done
        # (sequential re-arm chains — the overwhelmingly common shape);
        # concurrent same-tag timers fall back to a fresh handle.
        call = self._timer_calls.get(tag)
        if call is not None and not call.pending:
            self.sim.reschedule(call, delay, self._timer_epoch, tag, payload)
        else:
            self._timer_calls[tag] = self.sim.schedule(
                delay, self._timer_fire, self._timer_epoch, tag, payload
            )

    def _every_fire(self, epoch: int, tag: str, interval: float) -> None:
        if not self.alive or self._timer_epoch != epoch:
            return
        self.mailbox.put(TimerFire(self._ref, tag, None))
        # re-arm *after* delivery, exactly like the closure chain this
        # replaces: handlers that run inline off the put consume their
        # sequence numbers first
        call = self._timer_calls.get(("every", tag))
        if call is not None and not call.pending:
            self.sim.reschedule(call, interval, epoch, tag, interval)
        else:  # pragma: no cover - chain re-entry cannot overlap itself
            self._timer_calls[("every", tag)] = self.sim.schedule(
                interval, self._every_fire, epoch, tag, interval
            )

    def every(self, interval: float, tag: str) -> None:
        """Start a periodic timer (stops when the node dies).

        The chain is bound to the current incarnation: after a crash
        (even one followed by a revive) it goes quiet, and the revived
        node re-arms whichever timers it needs.
        """
        self._timer_calls[("every", tag)] = self.sim.schedule(
            interval, self._every_fire, self._timer_epoch, tag, interval
        )

    # -- request/reply correlation ------------------------------------------------
    def new_request(self) -> tuple[int, Signal]:
        self._req_counter += 1
        req_id = self._req_counter
        sig = Signal(f"{self.name}:req{req_id}")
        self._pending[req_id] = sig
        return req_id, sig

    def resolve_request(self, req_id: int, value: Any) -> None:
        sig = self._pending.pop(req_id, None)
        if sig is not None and not sig.triggered:
            sig.succeed(value)

    def drop_request(self, req_id: int) -> None:
        self._pending.pop(req_id, None)
