"""Base actor for P2PDC overlay nodes.

Every node owns a mailbox and a main-loop process that dispatches
messages to ``handle_<MessageType>`` methods.  Control-plane sends
travel over the fluid network (so the control plane has real latency
and bandwidth cost); delivery to a crashed node is silently dropped —
exactly the failure surface the paper's timeout protocols deal with.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..desim import Interrupt, Mailbox, Signal
from ..net import Host
from .ip import IPv4
from .messages import Message, NodeRef, TimerFire


class NodeActor:
    """An overlay node: mailbox, timers, request/reply bookkeeping."""
    role = "node"

    def __init__(self, overlay, name: str, ip: IPv4, host: Host) -> None:
        self.overlay = overlay
        self.sim = overlay.sim
        self.net = overlay.net
        self.name = name
        self.ip = ip
        self.host = host
        self.mailbox = Mailbox(name)
        self.alive = True
        self.process = None
        self._req_counter = 0
        self._pending: Dict[int, Signal] = {}
        #: Incarnation counter: timers armed before a crash must not
        #: fire into a revived incarnation (bumped by crash()).
        self._timer_epoch = 0
        overlay.register(self)

    # -- identity ------------------------------------------------------------
    @property
    def ref(self) -> NodeRef:
        return NodeRef(self.name, self.ip, self.host.name, self.role)

    def __repr__(self) -> str:
        status = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.name}@{self.ip} {status}>"

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self.process is None:
            self.process = self.sim.process(self._main_loop(), name=self.name)
            self.on_start()

    def on_start(self) -> None:
        """Hook for subclasses (timers, bootstrap)."""

    def crash(self) -> None:
        """Fail-stop: the node stops handling and receiving messages."""
        if not self.alive:
            return
        self.alive = False
        self._timer_epoch += 1
        self.mailbox.clear()
        if self.process is not None:
            self.process.interrupt("crash")
        self.overlay.stats.count("crashes")
        history = self.overlay.failure_history
        history[self.name] = history.get(self.name, 0) + 1

    def revive(self) -> None:
        """Restart after an outage (used for the server come-back)."""
        if self.alive:
            return
        self.alive = True
        self.process = self.sim.process(self._main_loop(), name=self.name)
        self.on_revive()

    def on_revive(self) -> None:
        """Hook for subclasses."""

    # -- main loop ------------------------------------------------------------
    def _main_loop(self):
        try:
            while True:
                msg = yield self.mailbox.get()
                if not self.alive:
                    return
                self._dispatch(msg)
        except Interrupt:
            return

    def _dispatch(self, msg: Message) -> None:
        if isinstance(msg, TimerFire):
            handler = getattr(self, f"timer_{msg.tag}", None)
            if handler is None:
                raise RuntimeError(f"{self.name}: no timer handler {msg.tag!r}")
            handler(msg.payload)
            return
        handler = getattr(self, f"handle_{type(msg).__name__}", None)
        if handler is None:
            self.overlay.stats.count("unhandled_messages")
            return
        handler(msg)

    # -- messaging ------------------------------------------------------------
    def send(self, dst: NodeRef, msg: Message) -> None:
        """Asynchronous control-plane send over the network."""
        self.overlay.transport(self, dst, msg)

    def set_timer(self, delay: float, tag: str, payload: Any = None) -> None:
        epoch = self._timer_epoch

        def fire() -> None:
            if self.alive and self._timer_epoch == epoch:
                self.mailbox.put(TimerFire(self.ref, tag, payload))

        self.sim.schedule(delay, fire)

    def every(self, interval: float, tag: str) -> None:
        """Start a periodic timer (stops when the node dies).

        The chain is bound to the current incarnation: after a crash
        (even one followed by a revive) it goes quiet, and the revived
        node re-arms whichever timers it needs.
        """
        epoch = self._timer_epoch

        def fire() -> None:
            if not self.alive or self._timer_epoch != epoch:
                return
            self.mailbox.put(TimerFire(self.ref, tag, None))
            self.sim.schedule(interval, fire)

        self.sim.schedule(interval, fire)

    # -- request/reply correlation ------------------------------------------------
    def new_request(self) -> tuple[int, Signal]:
        self._req_counter += 1
        req_id = self._req_counter
        sig = Signal(f"{self.name}:req{req_id}")
        self._pending[req_id] = sig
        return req_id, sig

    def resolve_request(self, req_id: int, value: Any) -> None:
        sig = self._pending.pop(req_id, None)
        if sig is not None and not sig.triggered:
            sig.succeed(value)

    def drop_request(self, req_id: int) -> None:
        self._pending.pop(req_id, None)
