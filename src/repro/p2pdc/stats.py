"""Per-run statistics for the P2PDC overlay and computations."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional


@lru_cache(maxsize=None)
def _msg_key(type_name: str) -> str:
    """``msg:<Type>`` counter keys, interned (one per message type,
    not one f-string per delivered message)."""
    return f"msg:{type_name}"


@dataclass
class OverlayStats:
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_type: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    #: Observed samples (sum, count) per key — e.g. handoff latency.
    samples: Dict[str, List[float]] = field(
        default_factory=lambda: defaultdict(lambda: [0.0, 0.0])
    )
    control_messages: int = 0
    control_bytes: float = 0.0

    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] += n

    def observe(self, key: str, value: float) -> None:
        """Record one sample of a continuous quantity."""
        bucket = self.samples[key]
        bucket[0] += value
        bucket[1] += 1.0

    def mean(self, key: str) -> float:
        """Mean of observed samples for ``key`` (0.0 when none)."""
        total, n = self.samples.get(key, (0.0, 0.0))
        return total / n if n else 0.0

    def message(self, type_name: str, size: float) -> None:
        self.control_messages += 1
        self.control_bytes += size
        self.bytes_by_type[type_name] += size
        self.counters[_msg_key(type_name)] += 1

    def get(self, key: str) -> int:
        return self.counters.get(key, 0)


@dataclass
class TaskTimings:
    """Phase timestamps of one submitted computation."""

    submitted_at: float = 0.0
    collected_at: Optional[float] = None
    allocated_at: Optional[float] = None
    compute_started_at: Optional[float] = None
    completed_at: Optional[float] = None

    @property
    def collection_time(self) -> Optional[float]:
        if self.collected_at is None:
            return None
        return self.collected_at - self.submitted_at

    @property
    def allocation_time(self) -> Optional[float]:
        if self.allocated_at is None or self.collected_at is None:
            return None
        return self.allocated_at - self.collected_at

    @property
    def total_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at
