"""Overlay bootstrap and message transport for P2PDC actors.

The :class:`Overlay` owns the simulator, the fluid network, the actor
registry, and the protocol configuration (timer intervals, timeouts,
neighbour-set size).  Initial deployment follows the paper §III-A3:
the administrator starts a server plus a set of core trackers spread
over the IP range; their line topology is configured directly (they
are "cores of the system and are on-line permanently"), while every
later tracker/peer joins through the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..desim import RngRegistry, Simulator
from ..net import FluidNetwork, Host, TcpModel
from ..platforms import PlatformSpec
from .ip import IPv4
from .messages import Message, NodeRef
from .node import NodeActor
from .prediction import PredictionError
from .stats import OverlayStats


#: Peer-selection policies (failure_aware follows Dubey & Tokekar 2012:
#: rank candidates by their observed failure history; predicted ranks
#: candidate groups by dPerf-priced makespan, oracle by the true
#: simulated makespan — see repro.p2pdc.prediction).  Must match
#: repro.scenarios.spec.SELECTION_POLICIES — the spec layer stays
#: import-light, so the tuple is mirrored there (drift is pinned by
#: tests/test_churn_recovery.py).
SELECTION_POLICIES = ("proximity", "random", "failure_aware",
                      "predicted", "oracle")


@dataclass(frozen=True)
class OverlayConfig:
    """Protocol constants (paper values where given)."""

    neighbor_set_size: int = 6        # |N|, half per side
    cmax: int = 32                    # max peers per group (paper: 32)
    grouping: str = "proximity"       # "proximity" (paper) | "random"
    selection_policy: str = "proximity"  # peer choice: see SELECTION_POLICIES
    state_update_interval: float = 30.0
    peer_expiry: float = 75.0         # tracker drops silent peers after T
    update_ack_timeout: float = 10.0  # peer declares tracker dead after T
    adjacency_ping_interval: float = 10.0
    adjacency_ping_timeout: float = 25.0
    reserve_timeout: float = 15.0
    stats_report_interval: float = 60.0
    bootstrap_tracker_count: int = 4  # trackers handed out by the server
    #: Mid-computation recovery (subtask re-dispatch).  Off by default:
    #: with recovery disabled the protocol behaves exactly as before
    #: (no coordinator liveness probes, no re-dispatch traffic).
    recovery: bool = False
    compute_ping_interval: float = 2.0  # coordinator → member liveness probe
    compute_ping_timeout: float = 5.0   # silent member declared lost after T
    #: Coordinator recovery (stand-in election).  Off by default, and
    #: only valid on top of ``recovery``: with election disabled the
    #: protocol behaves exactly as before (no CoordPing probes, no
    #: duty checkpoints, no elections).
    election: bool = False
    coord_ping_interval: float = 2.0   # member → coordinator liveness probe
    coord_ping_timeout: float = 5.0    # silent coordinator declared lost after T
    #: The k-th election candidate claims the duty after k·backoff of
    #: silence, so a dead front-runner never blocks the hand-off.
    election_backoff: float = 2.0
    #: Prediction-error ablation: seeded corruption of the scores the
    #: ``predicted`` policy ranks candidate groups by.  Inactive by
    #: default (level 0 — the uncorrupted predictor), and only valid
    #: with ``selection_policy="predicted"``: no other policy reads a
    #: makespan prediction, so a configured corruption would silently
    #: do nothing.
    prediction_error: PredictionError = PredictionError()
    #: Control-plane hardening for lossy networks: critical messages
    #: (dispatch, results, checkpoints, handoffs, registrations) are
    #: wrapped in reliable envelopes with monotone ids, receiver-side
    #: dedup, and ack/retry under bounded exponential backoff.  Off by
    #: default: with reliability disabled the protocol behaves exactly
    #: as before (no envelopes, no acks, no retry timers).
    reliability: bool = False
    ack_timeout: float = 1.0       # first reliable retry after this silence
    max_send_retries: int = 6      # retries before a send is abandoned
    retry_backoff_cap: float = 8.0  # ceiling on the doubling backoff

    def __post_init__(self) -> None:
        if self.grouping not in ("proximity", "random"):
            raise ValueError(
                f"grouping must be 'proximity' or 'random', "
                f"got {self.grouping!r}"
            )
        if self.selection_policy not in SELECTION_POLICIES:
            raise ValueError(
                f"selection_policy must be one of {SELECTION_POLICIES}, "
                f"got {self.selection_policy!r}"
            )
        if self.compute_ping_interval <= 0:
            raise ValueError("compute_ping_interval must be > 0")
        if self.compute_ping_timeout <= self.compute_ping_interval:
            raise ValueError(
                "compute_ping_timeout must exceed compute_ping_interval "
                "(a live member must be able to pong in time)"
            )
        if (self.prediction_error.active
                and self.selection_policy != "predicted"):
            raise ValueError(
                "prediction_error requires selection_policy='predicted': "
                "no other policy consumes makespan predictions, so the "
                "configured corruption would silently do nothing (set "
                "the policy, or drop the error level to 0)"
            )
        if self.election and not self.recovery:
            raise ValueError(
                "election requires the recovery subsystem: a stand-in "
                "coordinator re-dispatches lost subtasks through it "
                "(enable recovery, or disable election)"
            )
        if self.coord_ping_interval <= 0:
            raise ValueError("coord_ping_interval must be > 0")
        if self.coord_ping_timeout <= self.coord_ping_interval:
            raise ValueError(
                "coord_ping_timeout must exceed coord_ping_interval "
                "(a live coordinator must be able to pong in time)"
            )
        if self.election_backoff <= 0:
            raise ValueError("election_backoff must be > 0")
        if not isinstance(self.reliability, bool):
            raise ValueError(
                f"reliability must be a bool, got {self.reliability!r}"
            )
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be > 0")
        if self.max_send_retries < 1:
            raise ValueError("max_send_retries must be >= 1")
        if self.retry_backoff_cap < self.ack_timeout:
            raise ValueError(
                "retry_backoff_cap must be >= ack_timeout "
                "(the cap bounds the doubling backoff from above)"
            )

    def retry_horizon(self) -> float:
        """Worst-case seconds a reliable send keeps retrying before it
        is abandoned: the sum of the capped doubling backoff delays.
        Liveness monitors add this to their silence timeouts when
        reliability is on, so a partition shorter than the retry
        budget heals instead of being declared a crash."""
        return sum(
            min(self.ack_timeout * 2.0 ** k, self.retry_backoff_cap)
            for k in range(self.max_send_retries)
        )


class Overlay:
    """The shared fabric all P2PDC actors live in."""

    def __init__(
        self,
        platform: PlatformSpec,
        config: OverlayConfig = OverlayConfig(),
        seed: int = 0,
        tcp: TcpModel = TcpModel(),
        route_intern: Optional[dict] = None,
    ) -> None:
        self.platform = platform
        self.sim = Simulator()
        self.net = FluidNetwork(self.sim, platform.topology, tcp=tcp,
                                route_intern=route_intern)
        self.config = config
        self.rng = RngRegistry(seed)
        self.stats = OverlayStats()
        #: Observed crash counts per node name — the reputation signal
        #: the failure-aware selection policy scores candidates by.
        #: Never reset between tasks: it is the overlay session's
        #: long-memory reputation store, so the failure-aware policy
        #: separates from proximity on the first selection of a later
        #: task (Dubey & Tokekar 2012).
        self.failure_history: Dict[str, int] = {}
        #: Every churn event armed on this overlay — scripted plans and
        #: the dispatch-time coordinator-targeted draws alike — so
        #: failure metrics see injections armed after deployment.
        self.armed_churn: List = []
        #: Coordinator-targeted churn parameters (set by the scenario
        #: runner); the submitter draws and arms the schedule at
        #: dispatch time, once the coordinators exist.
        self.coordinator_churn = None
        #: Network-fault injector (:class:`repro.net.FaultInjector`),
        #: attached by the deployment when a fault plan is active.
        #: None keeps every send on the exact pre-fault code path.
        self.faults = None
        self.registry: Dict[str, NodeActor] = {}
        self.server = None
        self.trackers: List = []
        self.peers: List = []
        self._data_channels: Dict[tuple, object] = {}

    # -- registry -------------------------------------------------------------
    def register(self, actor: NodeActor) -> None:
        if actor.name in self.registry:
            raise ValueError(f"duplicate node name {actor.name!r}")
        self.registry[actor.name] = actor

    def actor(self, ref: NodeRef) -> Optional[NodeActor]:
        return self.registry.get(ref.name)

    # -- transport -------------------------------------------------------------
    def transport(self, src: NodeActor, dst: NodeRef, msg: Message) -> None:
        """Send a control message over the network; drop if dst is dead."""
        target = self.registry.get(dst.name)
        if target is None:
            raise KeyError(f"unknown destination {dst.name!r}")
        size = msg.size_bytes
        type_name = type(msg).__name__
        self.stats.message(type_name, size)

        def deliver(_info) -> None:
            if target.alive:
                target.mailbox.put(msg)
            else:
                self.stats.count("dropped_to_dead")

        send_cb = deliver
        faults = self.faults
        if faults is not None:
            # fixed draw order (partition → loss → jitter → dup), so
            # the same spec always injects the same fault schedule
            if faults.blocked(src.host, target.host) or faults.drop():
                return
            extra = faults.delay()
            if extra > 0.0:
                def send_cb(info, _extra=extra):
                    self.sim.call_later(_extra, deliver, info)
            if faults.duplicate():
                # the second copy takes its own trip over the network
                self.net.send(src.host, target.host, size, tag=type_name,
                              callback=send_cb)
        self.net.send(src.host, target.host, size, tag=type_name,
                      callback=send_cb)

    # -- factories ---------------------------------------------------------------
    def create_server(self, host: Host, ip: str | IPv4, name: str = "server"):
        from .server import Server

        self.server = Server(self, name, _ip(ip), host)
        return self.server

    def create_tracker(self, host: Host, ip: str | IPv4, name: Optional[str] = None):
        from .tracker import Tracker

        name = name or f"tracker-{len(self.trackers)}"
        tracker = Tracker(self, name, _ip(ip), host)
        self.trackers.append(tracker)
        return tracker

    def create_peer(self, host: Host, ip: str | IPv4, name: Optional[str] = None,
                    resources: Optional[dict] = None):
        from .peer import Peer

        name = name or f"peer-{len(self.peers)}"
        peer = Peer(self, name, _ip(ip), host, resources=resources or {})
        self.peers.append(peer)
        return peer

    # -- bootstrap ------------------------------------------------------------------
    def bootstrap_core(self) -> None:
        """Wire the administrator-deployed core: server knows all core
        trackers; each core tracker gets its line neighbours and starts."""
        if self.server is None:
            raise RuntimeError("create the server before bootstrap_core()")
        core = sorted(self.trackers, key=lambda t: int(t.ip))
        self.server.seed_trackers([t.ref for t in core])
        half = self.config.neighbor_set_size // 2
        for i, tracker in enumerate(core):
            below = [t.ref for t in core[max(0, i - half):i]]
            above = [t.ref for t in core[i + 1:i + 1 + half]]
            tracker.seed_neighbors(below + above)
        self.server.start()
        for tracker in core:
            tracker.start()

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_until(self, waitable, limit: float = 1e6):
        return self.sim.run_until_triggered(waitable, limit=limit)

    @property
    def now(self) -> float:
        return self.sim.now

    def live_trackers(self) -> List:
        return [t for t in self.trackers if t.alive]

    # -- data plane ---------------------------------------------------------------
    def data_channel(self, peer: NodeActor, neighbor: NodeRef, scheme):
        """P2PSAP channel between two peers (cached per pair+scheme)."""
        from ..p2psap import Channel
        from .computation import channel_context_for

        key = (frozenset((peer.name, neighbor.name)), scheme)
        channel = self._data_channels.get(key)
        if channel is None:
            other = self.registry[neighbor.name]
            context = channel_context_for(peer, other, scheme)
            channel = Channel(self.sim, self.net, peer.host, other.host,
                              context, faults=self.faults)
            self._data_channels[key] = channel
        return channel


def _ip(value: str | IPv4) -> IPv4:
    return value if isinstance(value, IPv4) else IPv4.parse(value)
