"""Failure injection for robustness experiments.

P2PDC's decentralization claims are about surviving exactly these
events: a tracker crash (line repair + peer failover), a peer crash
(expiry + reservation replacement), and a server outage (the overlay
keeps running; statistics are buffered until it returns).

Two ways to build a plan: script events explicitly
(:meth:`ChurnPlan.crash_peer` and friends — the pre-existing
churn-under-load scenario), or draw a *Poisson failure schedule* with
:func:`poisson_peer_failures` — the §III-D churn-rate grids.  The
Poisson draw is a pure function of ``(rate, targets, seed, window)``,
so a scenario spec that carries those values always injects the same
schedule, which is what makes churn sweeps cacheable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from .overlay import Overlay


def poisson_peer_failures(
    rate: float,
    targets: Sequence[str],
    seed: int,
    start: float = 0.0,
    horizon: float = 8.0,
    max_failures: int = 0,
) -> List["ChurnEvent"]:
    """A deterministic Poisson schedule of peer crashes.

    ``rate`` is the expected number of crashes per simulated second
    across the whole population; inter-failure gaps are exponential
    draws from ``random.Random(seed)`` and each victim is drawn
    uniformly from the peers not yet crashed.  Failures land in
    ``[start, start + horizon)``; at most ``max_failures`` are
    generated (0 → bounded only by the population size).
    """
    if rate <= 0 or not targets:
        return []
    rng = random.Random(seed)
    pool = list(targets)
    events: List[ChurnEvent] = []
    t = start
    while pool:
        t += rng.expovariate(rate)
        if t >= start + horizon:
            break
        victim = pool.pop(rng.randrange(len(pool)))
        events.append(ChurnEvent(time=t, kind="peer", target=victim))
        if max_failures and len(events) >= max_failures:
            break
    return events


@dataclass
class ChurnEvent:
    time: float
    kind: str   # "peer" | "tracker" | "server-down" | "server-up"
    target: str = ""


@dataclass
class ChurnPlan:
    events: List[ChurnEvent] = field(default_factory=list)

    def crash_peer(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "peer", name))
        return self

    def crash_tracker(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "tracker", name))
        return self

    def server_outage(self, down_at: float, up_at: float) -> "ChurnPlan":
        if up_at <= down_at:
            raise ValueError("outage must end after it starts")
        self.events.append(ChurnEvent(down_at, "server-down"))
        self.events.append(ChurnEvent(up_at, "server-up"))
        return self

    def arm(self, overlay: Overlay) -> None:
        """Schedule every event on the overlay's simulator.

        Events dated before the current clock (e.g. a Poisson draw
        that lands inside the deployment-settle window) fire at the
        earliest possible instant instead of crashing the scheduler —
        a peer that "failed during deployment" is simply down from the
        start.
        """
        for event in self.events:
            overlay.sim.schedule_at(max(event.time, overlay.now),
                                    self._fire, overlay, event)

    @staticmethod
    def _fire(overlay: Overlay, event: ChurnEvent) -> None:
        if event.kind == "server-down":
            overlay.server.crash()
        elif event.kind == "server-up":
            overlay.server.revive()
        else:
            actor = overlay.registry.get(event.target)
            if actor is None:
                raise KeyError(f"churn target {event.target!r} not found")
            actor.crash()
