"""Failure injection and recovery schedules for robustness experiments.

P2PDC's decentralization claims are about surviving exactly these
events: a tracker crash (line repair + peer failover), a peer crash
(expiry + reservation replacement), and a server outage (the overlay
keeps running; statistics are buffered until it returns).

Two ways to build a plan: script events explicitly
(:meth:`ChurnPlan.crash_peer` and friends — the pre-existing
churn-under-load scenario), or draw a *Poisson failure schedule* with
:func:`poisson_peer_failures` — the §III-D churn-rate grids.  The
recovery side mirrors it: :func:`rejoin_events` derives a seeded
rejoin schedule (exponential downtimes) from a crash schedule, so a
crashed peer re-enters the overlay, re-registers with its tracker and
becomes available for subtask re-dispatch.

Every draw is a pure function of ``(rate, targets, seed, window)``, so
a scenario spec that carries those values always injects the same
schedule, which is what makes churn sweeps cacheable.  Crash and
rejoin schedules use *separate* seeds: changing the rejoin rate never
perturbs who crashes when.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from .overlay import Overlay


def poisson_peer_failures(
    rate: float,
    targets: Sequence[str],
    seed: int,
    start: float = 0.0,
    horizon: float = 8.0,
    max_failures: int = 0,
    kind: str = "peer",
) -> List["ChurnEvent"]:
    """A deterministic Poisson schedule of node crashes.

    ``rate`` is the expected number of crashes per simulated second
    across the whole population; inter-failure gaps are exponential
    draws from ``random.Random(seed)`` and each victim is drawn
    uniformly from the targets not yet crashed.  Failures land in
    ``[start, start + horizon)``; at most ``max_failures`` are
    generated (0 → bounded only by the population size).  ``kind``
    selects the event type (``"peer"`` for peers, ``"tracker"`` for
    tracker churn).
    """
    if rate < 0:
        raise ValueError(f"churn rate must be >= 0, got {rate!r}")
    if start < 0:
        raise ValueError(f"churn start must be >= 0, got {start!r}")
    if horizon <= 0:
        raise ValueError(f"churn horizon must be > 0, got {horizon!r}")
    if max_failures < 0:
        raise ValueError(
            f"churn max_failures must be >= 0, got {max_failures!r}"
        )
    if kind not in ("peer", "tracker", "coordinator"):
        raise ValueError(f"churn kind must be 'peer', 'tracker' or "
                         f"'coordinator', got {kind!r}")
    if rate == 0 or not targets:
        return []
    rng = random.Random(seed)
    pool = list(targets)
    events: List[ChurnEvent] = []
    t = start
    while pool:
        t += rng.expovariate(rate)
        if t >= start + horizon:
            break
        victim = pool.pop(rng.randrange(len(pool)))
        events.append(ChurnEvent(time=t, kind=kind, target=victim))
        if max_failures and len(events) >= max_failures:
            break
    return events


def rejoin_events(
    crashes: Sequence["ChurnEvent"],
    rejoin_rate: float,
    seed: int,
    delay: float = 0.0,
) -> List["ChurnEvent"]:
    """A deterministic rejoin schedule derived from a crash schedule.

    Every ``"peer"`` crash gets a matching ``"peer-rejoin"`` event
    after a downtime of ``delay`` plus an exponential draw with rate
    ``rejoin_rate`` (mean downtime ``delay + 1/rejoin_rate``).  Draws
    come from ``random.Random(seed)`` in crash-time order, so the
    schedule is a pure function of ``(crashes, rejoin_rate, delay,
    seed)`` — and because the seed is independent of the crash seed,
    sweeping the rejoin rate never changes who crashes when.
    """
    if rejoin_rate <= 0:
        raise ValueError(
            f"rejoin rate must be > 0 to draw rejoins, got {rejoin_rate!r}"
        )
    if delay < 0:
        raise ValueError(f"rejoin delay must be >= 0, got {delay!r}")
    rng = random.Random(seed)
    out: List[ChurnEvent] = []
    for event in sorted(crashes, key=lambda e: e.time):
        if event.kind != "peer":
            continue
        downtime = delay + rng.expovariate(rejoin_rate)
        out.append(ChurnEvent(time=event.time + downtime,
                              kind="peer-rejoin", target=event.target))
    return out


@dataclass
class ChurnEvent:
    time: float
    #: "peer" | "peer-rejoin" | "tracker" | "coordinator" |
    #: "server-down" | "server-up" — "coordinator" crashes a peer that
    #: holds a group duty (drawn at dispatch time, once coordinators
    #: exist), and is counted separately in the failure metrics.
    kind: str
    target: str = ""


@dataclass(frozen=True)
class CoordinatorChurn:
    """Dispatch-time coordinator-targeted Poisson churn parameters.

    Coordinators only exist once allocation appoints them, so the
    schedule cannot be drawn at deployment: the scenario runner stores
    these parameters on the overlay and the submitter draws and arms
    the schedule right after subtask dispatch, over the appointed
    coordinator names.  ``start`` offsets the window from the dispatch
    instant (mirroring ``ChurnProfile.start``)."""

    rate: float
    seed: int
    start: float = 0.0
    horizon: float = 8.0
    max_failures: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(
                f"coordinator churn rate must be >= 0, got {self.rate!r}"
            )


@dataclass
class ChurnPlan:
    events: List[ChurnEvent] = field(default_factory=list)

    def crash_peer(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "peer", name))
        return self

    def rejoin_peer(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "peer-rejoin", name))
        return self

    def crash_tracker(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "tracker", name))
        return self

    def server_outage(self, down_at: float, up_at: float) -> "ChurnPlan":
        if up_at <= down_at:
            raise ValueError("outage must end after it starts")
        self.events.append(ChurnEvent(down_at, "server-down"))
        self.events.append(ChurnEvent(up_at, "server-up"))
        return self

    def arm(self, overlay: Overlay) -> None:
        """Schedule every event on the overlay's simulator.

        Events dated before the current clock (e.g. a Poisson draw
        that lands inside the deployment-settle window) fire at the
        earliest possible instant instead of crashing the scheduler —
        a peer that "failed during deployment" is simply down from the
        start.  Events are armed in list order, so a crash and its
        rejoin that both clamp to the same instant still fire
        crash-first as long as the list is time-sorted.
        """
        for event in self.events:
            overlay.armed_churn.append(event)
            overlay.sim.schedule_at(max(event.time, overlay.now),
                                    self._fire, overlay, event)

    @staticmethod
    def _fire(overlay: Overlay, event: ChurnEvent) -> None:
        if event.kind == "server-down":
            overlay.server.crash()
        elif event.kind == "server-up":
            overlay.server.revive()
        elif event.kind == "peer-rejoin":
            actor = overlay.registry.get(event.target)
            if actor is None:
                raise KeyError(f"rejoin target {event.target!r} not found")
            if not actor.alive:
                actor.revive()
                overlay.stats.count("peer_rejoins")
        else:
            actor = overlay.registry.get(event.target)
            if actor is None:
                raise KeyError(f"churn target {event.target!r} not found")
            actor.crash()
