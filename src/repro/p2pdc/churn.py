"""Failure injection for robustness experiments.

P2PDC's decentralization claims are about surviving exactly these
events: a tracker crash (line repair + peer failover), a peer crash
(expiry + reservation replacement), and a server outage (the overlay
keeps running; statistics are buffered until it returns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .overlay import Overlay


@dataclass
class ChurnEvent:
    time: float
    kind: str   # "peer" | "tracker" | "server-down" | "server-up"
    target: str = ""


@dataclass
class ChurnPlan:
    events: List[ChurnEvent] = field(default_factory=list)

    def crash_peer(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "peer", name))
        return self

    def crash_tracker(self, time: float, name: str) -> "ChurnPlan":
        self.events.append(ChurnEvent(time, "tracker", name))
        return self

    def server_outage(self, down_at: float, up_at: float) -> "ChurnPlan":
        if up_at <= down_at:
            raise ValueError("outage must end after it starts")
        self.events.append(ChurnEvent(down_at, "server-down"))
        self.events.append(ChurnEvent(up_at, "server-up"))
        return self

    def arm(self, overlay: Overlay) -> None:
        """Schedule every event on the overlay's simulator."""
        for event in self.events:
            overlay.sim.schedule_at(event.time, self._fire, overlay, event)

    @staticmethod
    def _fire(overlay: Overlay, event: ChurnEvent) -> None:
        if event.kind == "server-down":
            overlay.server.crash()
        elif event.kind == "server-up":
            overlay.server.revive()
        else:
            actor = overlay.registry.get(event.target)
            if actor is None:
                raise KeyError(f"churn target {event.target!r} not found")
            actor.crash()
