"""Proximity grouping and coordinator election (paper §III-C).

The submitter divides collected peers into groups based on proximity,
at most ``Cmax = 32`` peers per group, and chooses one coordinator per
group.  Sorting by IP and chunking groups the longest-common-prefix
neighbourhoods together — peers behind the same DSLAM or on the same
campus LAN end up in the same group, which is what makes coordinator↔
peer traffic cheap.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from .messages import NodeRef


def group_by_proximity(
    peers: Sequence[NodeRef], cmax: int = 32
) -> List[List[NodeRef]]:
    """IP-sorted, near-equal chunks of at most ``cmax`` peers."""
    if cmax < 1:
        raise ValueError("cmax must be >= 1")
    ordered = sorted(peers, key=lambda r: int(r.ip))
    n = len(ordered)
    if n == 0:
        return []
    n_groups = math.ceil(n / cmax)
    base, extra = divmod(n, n_groups)
    groups: List[List[NodeRef]] = []
    start = 0
    for g in range(n_groups):
        size = base + (1 if g < extra else 0)
        groups.append(ordered[start:start + size])
        start += size
    return groups


def group_randomly(
    peers: Sequence[NodeRef], cmax: int, rng: random.Random
) -> List[List[NodeRef]]:
    """Ablation baseline: same group sizes, proximity ignored."""
    shuffled = list(peers)
    rng.shuffle(shuffled)
    groups = group_by_proximity(shuffled, cmax)
    # undo the IP sort inside group_by_proximity by re-chunking directly
    sizes = [len(g) for g in groups]
    out, start = [], 0
    for size in sizes:
        out.append(shuffled[start:start + size])
        start += size
    return out


def pick_coordinator(group: Sequence[NodeRef]) -> NodeRef:
    """Deterministic choice: the lowest-IP member (the submitter picks;
    any stable rule works and keeps runs reproducible)."""
    if not group:
        raise ValueError("empty group has no coordinator")
    return min(group, key=lambda r: int(r.ip))


def assign_ranks(groups: Sequence[Sequence[NodeRef]]) -> List[NodeRef]:
    """Global rank order: concatenation of IP-sorted groups, so
    consecutive ranks (halo neighbours) are proximate peers."""
    out: List[NodeRef] = []
    for group in groups:
        out.extend(sorted(group, key=lambda r: int(r.ip)))
    return out
