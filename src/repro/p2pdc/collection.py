"""Peers collection for a task (paper §III-B).

The submitter asks its own tracker first, then every tracker in its
local tracker list, and finally expands outward by asking the two
farthest known trackers (one per side) for the trackers beyond them —
repeating until enough peers are collected or the line is exhausted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..desim import AnyOf
from .messages import MoreTrackersRequest, NodeRef, PeerRequest

#: How long the submitter waits for any single tracker reply.
REPLY_TIMEOUT = 8.0


class CollectionLog:
    """Records how the collection proceeded (for tests/reports)."""

    def __init__(self) -> None:
        self.trackers_queried: List[str] = []
        self.expansions: int = 0
        self.timeouts: int = 0


def collect_peers(submitter, need: int, requirements: Dict[str, float],
                  task_id: int, log: Optional[CollectionLog] = None):
    """Generator process: returns collected peer refs (may exceed
    ``need`` — extras serve as spares)."""
    log = log if log is not None else CollectionLog()
    collected: Dict[str, NodeRef] = {}
    queried: set = set()
    known: List[NodeRef] = []

    def learn(trackers) -> bool:
        fresh = False
        for ref in trackers:
            if ref.name not in {t.name for t in known}:
                known.append(ref)
                fresh = True
        return fresh

    if submitter.tracker is not None:
        learn([submitter.tracker])
    learn(submitter.tracker_list)

    while len(collected) < need:
        target = next((t for t in known if t.name not in queried), None)
        if target is None:
            # expansion: ask the two farthest known trackers for more
            if not known:
                break
            by_ip = sorted(known, key=lambda r: int(r.ip))
            expanded = False
            log.expansions += 1
            for side, tracker in (("left", by_ip[0]), ("right", by_ip[-1])):
                reply = yield from _ask_more_trackers(submitter, tracker, side)
                if reply and learn(reply):
                    expanded = True
            if not expanded:
                break
            continue
        queried.add(target.name)
        log.trackers_queried.append(target.name)
        peers = yield from _request_peers(
            submitter, target, need - len(collected), requirements, task_id, log
        )
        for ref in peers:
            if ref.name != submitter.name:
                collected.setdefault(ref.name, ref)
    return list(collected.values())


def _request_peers(submitter, tracker: NodeRef, want: int,
                   requirements: Dict[str, float], task_id: int,
                   log: CollectionLog):
    req_id, sig = submitter.new_request()
    submitter.send_critical(
        tracker,
        PeerRequest(
            submitter.ref, req_id=req_id, requirements=dict(requirements),
            max_peers=want, task_id=task_id,
        ),
    )
    outcome = yield AnyOf([sig, submitter.sim.timeout(REPLY_TIMEOUT, "timeout")])
    if outcome[1] == "timeout":
        submitter.drop_request(req_id)
        log.timeouts += 1
        return []
    return outcome[1].peers


def _ask_more_trackers(submitter, tracker: NodeRef, side: str):
    req_id, sig = submitter.new_request()
    submitter.send_critical(
        tracker,
        MoreTrackersRequest(submitter.ref, req_id=req_id, side=side),
    )
    outcome = yield AnyOf([sig, submitter.sim.timeout(REPLY_TIMEOUT, "timeout")])
    if outcome[1] == "timeout":
        submitter.drop_request(req_id)
        return []
    return outcome[1].trackers
