"""P2PDC control-plane message vocabulary.

Each message carries an estimated wire size so the control plane has a
real cost on the simulated network.  ``req_id`` fields implement the
request/reply correlation used by blocking actor workflows
(collection, allocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ip import IPv4


@dataclass(frozen=True)
class NodeRef:
    """A lightweight handle on an overlay node (what peers exchange)."""

    name: str
    ip: IPv4
    host_name: str
    role: str = "peer"  # peer | tracker | server

    def __repr__(self) -> str:
        return f"<{self.role} {self.name}@{self.ip}>"


@dataclass
class Message:
    sender: NodeRef
    SIZE = 128  # default control-message wire size (bytes)

    @property
    def size_bytes(self) -> int:
        return type(self).SIZE


@dataclass
class TimerFire(Message):
    tag: str = ""
    payload: object = None
    SIZE = 0  # local, never hits the network


# -- bootstrap / server ------------------------------------------------------

@dataclass
class GetTrackers(Message):
    req_id: int = 0
    SIZE = 96


@dataclass
class TrackersReply(Message):
    req_id: int = 0
    trackers: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 64 + 32 * len(self.trackers)


@dataclass
class TrackerConnect(Message):
    tracker: NodeRef = None  # type: ignore[assignment]
    SIZE = 96


@dataclass
class TrackerDisconnect(Message):
    ip: IPv4 = None  # type: ignore[assignment]
    SIZE = 96


@dataclass
class StatsReport(Message):
    zone_size: int = 0
    donated: float = 0.0
    consumed: float = 0.0

    @property
    def size_bytes(self) -> int:
        return 160


# -- tracker line maintenance --------------------------------------------------

@dataclass
class TrackerJoin(Message):
    new_tracker: NodeRef = None  # type: ignore[assignment]
    SIZE = 128


@dataclass
class TrackerWelcome(Message):
    neighbors: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 64 + 32 * len(self.neighbors)


@dataclass
class NeighborAdd(Message):
    new_tracker: NodeRef = None  # type: ignore[assignment]
    SIZE = 128


@dataclass
class NeighborsRepair(Message):
    lost_ip: IPv4 = None  # type: ignore[assignment]
    replacements: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 96 + 32 * len(self.replacements)


@dataclass
class AdjacencyPing(Message):
    seq: int = 0
    SIZE = 64


@dataclass
class AdjacencyPong(Message):
    seq: int = 0
    SIZE = 64


# -- peer membership ------------------------------------------------------------

@dataclass
class PeerJoin(Message):
    peer: NodeRef = None  # type: ignore[assignment]
    resources: Dict[str, float] = field(default_factory=dict)
    SIZE = 256


@dataclass
class PeerAccept(Message):
    tracker: NodeRef = None  # type: ignore[assignment]
    tracker_list: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 96 + 32 * len(self.tracker_list)


@dataclass
class StateUpdate(Message):
    usage: float = 0.0
    busy: bool = False
    SIZE = 128


@dataclass
class UpdateAck(Message):
    SIZE = 64


@dataclass
class PeerBusy(Message):
    task_id: int = 0
    SIZE = 96


@dataclass
class PeerFree(Message):
    SIZE = 96


# -- peers collection -------------------------------------------------------------

@dataclass
class PeerRequest(Message):
    req_id: int = 0
    requirements: Dict[str, float] = field(default_factory=dict)
    max_peers: int = 0
    task_id: int = 0
    SIZE = 256


@dataclass
class PeerListReply(Message):
    req_id: int = 0
    peers: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 64 + 48 * len(self.peers)


@dataclass
class MoreTrackersRequest(Message):
    req_id: int = 0
    side: str = "right"  # relative to the requester's IP
    SIZE = 128


@dataclass
class MoreTrackersReply(Message):
    req_id: int = 0
    trackers: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 64 + 32 * len(self.trackers)


# -- hierarchical allocation ---------------------------------------------------------

@dataclass
class GroupAssign(Message):
    task_id: int = 0
    group_index: int = 0
    peers: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 128 + 48 * len(self.peers)


@dataclass
class Reserve(Message):
    """The paper's "reverse" message: coordinator reserves a peer."""

    task_id: int = 0
    coordinator: NodeRef = None  # type: ignore[assignment]
    SIZE = 160


@dataclass
class ReserveAck(Message):
    task_id: int = 0
    accepted: bool = True
    SIZE = 96


@dataclass
class GroupReady(Message):
    task_id: int = 0
    group_index: int = 0
    reserved: List[NodeRef] = field(default_factory=list)
    failed: List[NodeRef] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 128 + 48 * (len(self.reserved) + len(self.failed))


@dataclass
class SubtaskMsg(Message):
    task_id: int = 0
    rank: int = 0
    final_dst: Optional[NodeRef] = None  # set while in transit via coordinator
    payload_bytes: int = 0
    spec: object = None  # WorkAssignment (opaque to the transport)

    @property
    def size_bytes(self) -> int:
        return 256 + self.payload_bytes


@dataclass
class SubtaskResult(Message):
    task_id: int = 0
    rank: int = 0
    result_bytes: int = 0
    checksum: float = 0.0
    iterations_done: int = 0

    @property
    def size_bytes(self) -> int:
        return 128 + self.result_bytes


@dataclass
class ResultBatch(Message):
    task_id: int = 0
    group_index: int = 0
    results: List[SubtaskResult] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 128 + sum(r.size_bytes for r in self.results)


# -- mid-computation recovery (churn recovery subsystem) --------------------------------

@dataclass
class ComputePing(Message):
    """Coordinator liveness probe to a computing group member."""

    task_id: int = 0
    SIZE = 64


@dataclass
class ComputePong(Message):
    """Member's liveness reply (only while it computes this task)."""

    task_id: int = 0
    SIZE = 64


@dataclass
class SubtaskLost(Message):
    """Coordinator → submitter: a computing member went silent; its
    rank's subtask needs re-dispatch."""

    task_id: int = 0
    rank: int = 0
    peer: NodeRef = None  # type: ignore[assignment]
    SIZE = 160


@dataclass
class RankUpdate(Message):
    """Submitter → coordinator / halo neighbours: ``rank`` is now
    computed by ``new_ref`` (re-dispatch rewiring)."""

    task_id: int = 0
    rank: int = 0
    new_ref: NodeRef = None  # type: ignore[assignment]
    SIZE = 160


@dataclass
class ReserveCancel(Message):
    """Submitter → peer: a re-dispatch reservation it will never use
    (the task ended, or the ack arrived past the timeout) — release."""

    task_id: int = 0
    SIZE = 96


# -- coordinator recovery (stand-in election) -------------------------------------------

@dataclass
class CoordPing(Message):
    """Member liveness probe to its coordinator — the dual of
    :class:`ComputePing` (only sent when election is enabled)."""

    task_id: int = 0
    SIZE = 64


@dataclass
class CoordPong(Message):
    """Coordinator's liveness reply (only while it holds the duty)."""

    task_id: int = 0
    SIZE = 64


@dataclass
class DutyCheckpoint(Message):
    """Coordinator → members: replicated duty state, piggybacked on
    the compute-monitor cadence, so survivors can elect a stand-in and
    resume monitoring after a coordinator crash."""

    task_id: int = 0
    group_index: int = 0
    submitter: NodeRef = None  # type: ignore[assignment]
    reserved: List[NodeRef] = field(default_factory=list)
    rank_of: Dict[str, int] = field(default_factory=dict)
    expected_results: int = 0
    decided: Dict[int, bool] = field(default_factory=dict)
    version: int = 0

    @property
    def size_bytes(self) -> int:
        return (160 + 48 * len(self.reserved) + 8 * len(self.rank_of)
                + 8 * len(self.decided))


@dataclass
class CoordHandoff(Message):
    """Stand-in → members / submitter / tracker: ``new`` has taken
    over the group duty for ``task_id`` from ``old``.  ``demoted``
    marks a hand-off whose ``old`` is alive but out-ranked (a duel
    loser, or a slow coordinator re-appointed away pre-dispatch) —
    recipients must not treat it as dead."""

    task_id: int = 0
    group_index: int = 0
    old: NodeRef = None  # type: ignore[assignment]
    new: NodeRef = None  # type: ignore[assignment]
    demoted: bool = False
    SIZE = 192


@dataclass
class DispatchGap(Message):
    """Stand-in → submitter: ranks this group should own but whose
    dispatch died in flight with the old coordinator — re-relay them
    (ranks already known to the stand-in are listed, the submitter
    re-sends the rest of the group's ranks)."""

    task_id: int = 0
    group_index: int = 0
    known_ranks: Tuple[int, ...] = ()

    @property
    def size_bytes(self) -> int:
        return 96 + 8 * len(self.known_ranks)


# -- convergence control (through the coordinator hierarchy) ----------------------------

@dataclass
class ConvergenceReport(Message):
    task_id: int = 0
    rank: int = 0
    check_index: int = 0
    residual: float = 0.0
    SIZE = 96


@dataclass
class GroupConvergence(Message):
    task_id: int = 0
    group_index: int = 0
    check_index: int = 0
    residual: float = 0.0
    SIZE = 96


@dataclass
class ConvergenceDecision(Message):
    task_id: int = 0
    check_index: int = 0
    stop: bool = False
    final_dst: Optional[NodeRef] = None
    SIZE = 96


# -- reliable delivery (lossy-network hardening) ------------------------------

@dataclass
class Reliable(Message):
    """Envelope for a critical control message under lossy networks.

    Carries a per-sender monotone ``msg_id``; the receiver acks every
    copy and dispatches the inner message exactly once (dedup on
    ``(sender name, msg_id)``).  One envelope per hop: a relay wraps
    the inner message in its *own* envelope for the next leg, so
    concurrent retries on different hops never share identity.
    """

    inner: Message = None  # type: ignore[assignment]
    msg_id: int = 0

    @property
    def size_bytes(self) -> int:
        # envelope header on top of the wrapped message's wire size
        return 32 + self.inner.size_bytes


@dataclass
class MsgAck(Message):
    """Receiver's acknowledgement of one :class:`Reliable` envelope."""

    ack_of: int = 0
    SIZE = 64
