"""IPv4 addresses and the IP-based proximity metric (paper §III-A2).

P2PDC measures peer proximity as the *longest common IP prefix
length*: it needs only local information, consumes no network
resource, and is faster to evaluate than RTT-style metrics.  The
paper's example: 145.82.1.1 and 145.82.1.129 share a 24-bit prefix,
while 145.82.1.1 and 145.83.56.74 share only 15 bits, so the first
pair is considered closer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class IPv4:
    """An IPv4 address stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value <= 0xFFFFFFFF):
            raise ValueError(f"IPv4 value out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "IPv4":
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not (0 <= octet <= 255):
                raise ValueError(f"malformed IPv4 {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __lt__(self, other: "IPv4") -> bool:
        return self.value < other.value

    def __int__(self) -> int:
        return self.value


def common_prefix_len(a: IPv4, b: IPv4) -> int:
    """Longest common prefix length in bits (0–32)."""
    diff = a.value ^ b.value
    if diff == 0:
        return 32
    return 32 - diff.bit_length()


def proximity(a: IPv4, b: IPv4) -> int:
    """The P2PDC proximity metric: larger = closer."""
    return common_prefix_len(a, b)


def closest(target: IPv4, candidates) -> object:
    """The candidate closest to ``target``.

    Candidates expose an ``ip`` attribute.  Ties break toward the
    numerically closest address (then lowest), keeping the choice
    deterministic across the overlay.
    """
    best = None
    best_key = None
    for cand in candidates:
        key = (
            -proximity(target, cand.ip),
            abs(int(cand.ip) - int(target)),
            int(cand.ip),
        )
        if best_key is None or key < best_key:
            best, best_key = cand, key
    if best is None:
        raise ValueError("no candidates")
    return best
