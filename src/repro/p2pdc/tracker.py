"""The P2PDC tracker (paper §III-A).

A tracker manages a *zone* of peers and a neighbour set ``N`` of
closest trackers — half with lower IPs, half with higher IPs — forming
the tracker line.  It implements:

* tracker join (§III-A4): forward the join toward the closest tracker,
  which splices the newcomer into the line and broadcasts the update;
* tracker leave/crash (§III-A5): adjacency heartbeats between line
  neighbours; on a missed heartbeat the two sides repair their
  neighbour sets and reconnect around the hole;
* peer management (§III-A6/7): zone membership, periodic state
  updates with acknowledgements, expiry of silent peers;
* peers collection support (§III-B): answering ``PeerRequest`` with
  free zone peers matching the requirements, and handing out more
  trackers along the line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ip import IPv4, proximity
from .messages import (
    AdjacencyPing,
    AdjacencyPong,
    CoordHandoff,
    GetTrackers,
    MoreTrackersReply,
    MoreTrackersRequest,
    NeighborAdd,
    NeighborsRepair,
    NodeRef,
    PeerAccept,
    PeerBusy,
    PeerFree,
    PeerJoin,
    PeerListReply,
    PeerRequest,
    StateUpdate,
    StatsReport,
    TrackerConnect,
    TrackerDisconnect,
    TrackerJoin,
    TrackersReply,
    TrackerWelcome,
    UpdateAck,
)
from .node import NodeActor


@dataclass
class PeerRecord:
    ref: NodeRef
    resources: Dict[str, float] = field(default_factory=dict)
    last_update: float = 0.0
    busy: bool = False


class Tracker(NodeActor):
    """A tracker: one zone of peers plus a neighbour set on the line."""
    role = "tracker"

    def __init__(self, overlay, name, ip, host) -> None:
        super().__init__(overlay, name, ip, host)
        self.neighbors: List[NodeRef] = []  # sorted by ip, excludes self
        self.zone: Dict[str, PeerRecord] = {}
        self.joined = False
        self._join_candidates: List[NodeRef] = []
        self._join_attempt = 0
        self._last_heard: Dict[str, float] = {}
        self._ping_seq = 0
        self._stats_buffer: List[StatsReport] = []

    # -- bootstrap (administrator-deployed core) ------------------------------
    def seed_neighbors(self, refs: List[NodeRef]) -> None:
        self.neighbors = sorted(refs, key=lambda r: int(r.ip))
        self.joined = True

    def on_start(self) -> None:
        cfg = self.overlay.config
        self.every(cfg.adjacency_ping_interval, "adjacency")
        self.every(cfg.peer_expiry / 2, "expiry_sweep")
        self.every(cfg.stats_report_interval, "stats")

    # -- neighbour-set maintenance --------------------------------------------
    @property
    def half(self) -> int:
        return self.overlay.config.neighbor_set_size // 2

    def _below(self) -> List[NodeRef]:
        return [r for r in self.neighbors if int(r.ip) < int(self.ip)]

    def _above(self) -> List[NodeRef]:
        return [r for r in self.neighbors if int(r.ip) > int(self.ip)]

    @property
    def left_adjacent(self) -> Optional[NodeRef]:
        below = self._below()
        return below[-1] if below else None

    @property
    def right_adjacent(self) -> Optional[NodeRef]:
        above = self._above()
        return above[0] if above else None

    def insert_neighbor(self, ref: NodeRef) -> None:
        if ref.ip == self.ip or any(r.ip == ref.ip for r in self.neighbors):
            return
        self.neighbors.append(ref)
        self.neighbors.sort(key=lambda r: int(r.ip))
        # trim each side to `half` closest (the farthest drop off)
        below, above = self._below(), self._above()
        keep = below[-self.half:] if self.half else []
        keep += above[: self.half] if self.half else []
        self.neighbors = sorted(keep, key=lambda r: int(r.ip))

    def remove_neighbor(self, ip: IPv4) -> None:
        self.neighbors = [r for r in self.neighbors if r.ip != ip]

    def _closest_to(self, ip: IPv4) -> Optional[NodeRef]:
        """The member of N strictly closer to ``ip`` than this tracker."""
        best = None
        best_prox = proximity(self.ip, ip)
        best_dist = abs(int(self.ip) - int(ip))
        for ref in self.neighbors:
            p = proximity(ref.ip, ip)
            d = abs(int(ref.ip) - int(ip))
            if (p, -d) > (best_prox, -best_dist):
                best, best_prox, best_dist = ref, p, d
        return best

    # -- tracker join protocol ---------------------------------------------------
    def join_overlay(self, candidates: List[NodeRef]) -> None:
        """Join through the closest known tracker (retry down the list,
        then fall back to the server)."""
        self._join_candidates = sorted(
            candidates,
            key=lambda r: (-proximity(self.ip, r.ip), abs(int(r.ip) - int(self.ip))),
        )
        self._join_attempt = 0
        self.start()
        self._try_join()

    def _try_join(self) -> None:
        if self.joined:
            return
        if self._join_attempt < len(self._join_candidates):
            target = self._join_candidates[self._join_attempt]
            self._join_attempt += 1
            self.send_critical(target,
                               TrackerJoin(self.ref, new_tracker=self.ref))
            self.set_timer(self.overlay.config.update_ack_timeout, "join_retry")
        else:
            server = self.overlay.server
            if server is not None:
                req_id, _sig = self.new_request()
                self.send_critical(server.ref,
                                   GetTrackers(self.ref, req_id=req_id))
                self.set_timer(self.overlay.config.update_ack_timeout, "join_retry")

    def timer_join_retry(self, _payload) -> None:
        if not self.joined:
            self._try_join()

    def handle_TrackersReply(self, msg: TrackersReply) -> None:
        self.drop_request(msg.req_id)
        if not self.joined:
            fresh = [r for r in msg.trackers if r.ip != self.ip]
            self._join_candidates = fresh
            self._join_attempt = 0
            self._try_join()

    def handle_TrackerJoin(self, msg: TrackerJoin) -> None:
        new = msg.new_tracker
        closer = self._closest_to(new.ip)
        if closer is not None:
            # not mine: route toward the closest
            self.send_critical(closer, msg)
            return
        # I am the closest tracker in the overlay.
        for ref in list(self.neighbors):
            self.send_critical(ref, NeighborAdd(self.ref, new_tracker=new))
        welcome_set = [self.ref] + list(self.neighbors)
        self.insert_neighbor(new)
        self.send_critical(new, TrackerWelcome(self.ref, neighbors=welcome_set))

    def handle_NeighborAdd(self, msg: NeighborAdd) -> None:
        self.insert_neighbor(msg.new_tracker)

    def handle_TrackerWelcome(self, msg: TrackerWelcome) -> None:
        for ref in msg.neighbors:
            self.insert_neighbor(ref)
        self.joined = True
        server = self.overlay.server
        if server is not None:
            self.send(server.ref, TrackerConnect(self.ref, tracker=self.ref))
        self.overlay.stats.count("tracker_joins")

    # -- adjacency heartbeats / crash repair ----------------------------------------
    def timer_adjacency(self, _payload) -> None:
        cfg = self.overlay.config
        now = self.sim.now
        for ref in (self.left_adjacent, self.right_adjacent):
            if ref is None:
                continue
            self._ping_seq += 1
            self.send(ref, AdjacencyPing(self.ref, seq=self._ping_seq))
            first_seen = self._last_heard.setdefault(ref.name, now)
            if now - first_seen > cfg.adjacency_ping_timeout:
                self._repair_dead_adjacent(ref)

    def handle_AdjacencyPing(self, msg: AdjacencyPing) -> None:
        self._last_heard[msg.sender.name] = self.sim.now
        self.send(msg.sender, AdjacencyPong(self.ref, seq=msg.seq))

    def handle_AdjacencyPong(self, msg: AdjacencyPong) -> None:
        self._last_heard[msg.sender.name] = self.sim.now

    def _repair_dead_adjacent(self, dead: NodeRef) -> None:
        """Paper §III-A5: repair the line around a crashed tracker."""
        self.overlay.stats.count("tracker_repairs")
        was_right = int(dead.ip) > int(self.ip)
        self.remove_neighbor(dead.ip)
        self._last_heard.pop(dead.name, None)
        server = self.overlay.server
        if server is not None:
            self.send_critical(server.ref,
                               TrackerDisconnect(self.ref, ip=dead.ip))
        # Inform my own side of the loss, handing them my far side so
        # they can refill their sets.
        my_side = self._below() if was_right else self._above()
        far_side = self._above() if was_right else self._below()
        for ref in my_side:
            self.send_critical(
                ref,
                NeighborsRepair(
                    self.ref, lost_ip=dead.ip,
                    replacements=far_side + [self.ref],
                ),
            )
        # Reconnect with the first survivor beyond the hole and exchange
        # far lists so both ends rebuild their sets.
        survivor = self.right_adjacent if was_right else self.left_adjacent
        if survivor is not None:
            self.send_critical(
                survivor,
                NeighborsRepair(
                    self.ref, lost_ip=dead.ip,
                    replacements=(self._below() if was_right else self._above())
                    + [self.ref],
                ),
            )

    def handle_NeighborsRepair(self, msg: NeighborsRepair) -> None:
        # If the lost tracker was *my own* line neighbour, I am the
        # other direct neighbour of the hole (paper: both T3 and T5
        # repair their sides).  Learning of the crash through a repair
        # message must not pre-empt my half of the protocol, or the
        # trackers on my far side would never be informed.
        left, right = self.left_adjacent, self.right_adjacent
        dead_adjacent = None
        if left is not None and left.ip == msg.lost_ip:
            dead_adjacent = left
        elif right is not None and right.ip == msg.lost_ip:
            dead_adjacent = right
        if dead_adjacent is not None:
            self._repair_dead_adjacent(dead_adjacent)
        else:
            self.remove_neighbor(msg.lost_ip)
        for ref in msg.replacements:
            self.insert_neighbor(ref)

    # -- peer management -------------------------------------------------------------
    def handle_PeerJoin(self, msg: PeerJoin) -> None:
        peer = msg.peer
        closer = self._closest_to(peer.ip)
        if closer is not None and closer.role == "tracker":
            # registration routes hop by hop: each leg re-wrapped
            self.send_critical(closer, msg)
            return
        self.zone[peer.name] = PeerRecord(
            ref=peer, resources=dict(msg.resources), last_update=self.sim.now
        )
        self.send_critical(
            peer,
            PeerAccept(self.ref, tracker=self.ref,
                       tracker_list=[self.ref] + list(self.neighbors)),
        )
        self.overlay.stats.count("peer_joins")

    def handle_StateUpdate(self, msg: StateUpdate) -> None:
        record = self.zone.get(msg.sender.name)
        if record is None:
            # unknown peer (e.g. rejoined after our crash): adopt it
            record = PeerRecord(ref=msg.sender)
            self.zone[msg.sender.name] = record
        record.last_update = self.sim.now
        record.busy = msg.busy
        self.send(msg.sender, UpdateAck(self.ref))

    def timer_expiry_sweep(self, _payload) -> None:
        cutoff = self.sim.now - self.overlay.config.peer_expiry
        for name, record in list(self.zone.items()):
            if record.last_update < cutoff:
                del self.zone[name]
                self.overlay.stats.count("peer_expiries")

    def handle_PeerBusy(self, msg: PeerBusy) -> None:
        record = self.zone.get(msg.sender.name)
        if record is not None:
            record.busy = True

    def handle_CoordHandoff(self, msg: CoordHandoff) -> None:
        """A stand-in coordinator re-registers its duty with the zone:
        the stand-in stays busy, and the dead coordinator's record is
        dropped right away instead of waiting out the expiry sweep.
        Only a *busy* record is dropped — a free one belongs to a new
        incarnation that already crashed, rejoined and re-registered
        before the election resolved, and must stay collectable."""
        record = self.zone.get(msg.sender.name)
        if record is not None:
            record.busy = True
        old = self.zone.get(msg.old.name) if msg.old is not None else None
        if old is not None and old.busy:
            del self.zone[msg.old.name]
            self.overlay.stats.count("coordinator_death_notices")

    def handle_PeerFree(self, msg: PeerFree) -> None:
        record = self.zone.get(msg.sender.name)
        if record is not None:
            record.busy = False

    # -- peers collection ----------------------------------------------------------------
    def handle_PeerRequest(self, msg: PeerRequest) -> None:
        matching: List[NodeRef] = []
        for record in self.zone.values():
            if record.busy or record.ref.name == msg.sender.name:
                continue
            if all(
                record.resources.get(key, 0.0) >= needed
                for key, needed in msg.requirements.items()
            ):
                matching.append(record.ref)
            if len(matching) >= msg.max_peers:
                break
        self.send_critical(
            msg.sender,
            PeerListReply(self.ref, req_id=msg.req_id, peers=matching),
        )

    def handle_MoreTrackersRequest(self, msg: MoreTrackersRequest) -> None:
        trackers = self._above() if msg.side == "right" else self._below()
        self.send_critical(
            msg.sender,
            MoreTrackersReply(self.ref, req_id=msg.req_id, trackers=trackers),
        )

    # -- statistics ---------------------------------------------------------------------
    def timer_stats(self, _payload) -> None:
        report = StatsReport(
            self.ref,
            zone_size=len(self.zone),
            donated=sum(1.0 for r in self.zone.values() if not r.busy),
            consumed=sum(1.0 for r in self.zone.values() if r.busy),
        )
        server = self.overlay.server
        if server is not None and server.alive:
            # flush anything buffered during an outage, then this one
            for buffered in self._stats_buffer:
                self.send(server.ref, buffered)
            self._stats_buffer.clear()
            self.send(server.ref, report)
        else:
            self._stats_buffer.append(report)

    @property
    def tracker_list(self) -> List[NodeRef]:
        return [self.ref] + list(self.neighbors)
