"""Distributed iterative computation on reserved peers.

This is the data-plane half of the reference execution: once a peer
holds a subtask, it iterates — compute burst, halo exchange with its
rank neighbours over direct P2PSAP channels, and a periodic
convergence check routed through the coordinator hierarchy (peers →
coordinator → submitter → decision broadcast back down).

Synchronous scheme: each iteration blocks on both halo receives.
Asynchronous scheme: receives are non-blocking (freshest iterate
wins, courtesy of P2PSAP's drop-stale mode) at the price of more
iterations to converge (``async_penalty``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..desim import AnyOf, Signal
from ..p2psap import ChannelContext, Scheme, classify_link
from .ip import proximity
from .messages import ConvergenceReport, NodeRef, SubtaskResult

#: Common-prefix bits at or above which two peers count as same-zone
#: for protocol adaptation.
SAME_ZONE_PREFIX_BITS = 16


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of an iterative SPMD workload."""

    name: str
    nit: int
    halo_bytes: float
    iteration_time: Callable[[int, int], float]  # (rank, nranks) -> seconds
    check_every: int = 10
    scheme: Scheme = Scheme.SYNC
    noise_frac: float = 0.003          # reference-run timing jitter
    async_penalty: float = 1.25        # extra iterations for async scheme
    residual: Callable[[int], float] = field(
        default=lambda it: 1.0 / (1 + it)
    )
    tol: float = 0.0                   # 0 → never stop early (fixed nit)
    halo_timeout: Optional[float] = None
    result_bytes: int = 1024
    subtask_bytes: int = 8192
    #: Clock speed the iteration_time bursts were priced at (the dPerf
    #: 3 GHz reference).  0 keeps every burst absolute — the
    #: homogeneous behaviour, bit for bit; > 0 scales each burst by
    #: ``reference_speed / host.speed``, so heterogeneous node clocks
    #: actually move the reference makespan (and group choice matters).
    reference_speed: float = 0.0

    def effective_nit(self) -> int:
        if self.scheme is Scheme.ASYNC:
            return int(round(self.nit * self.async_penalty))
        return self.nit


@dataclass
class WorkAssignment:
    """Everything a peer needs to execute its subtask."""

    task_id: int
    rank: int
    nranks: int
    workload: WorkloadSpec
    coordinator: NodeRef
    submitter: NodeRef
    left: Optional[NodeRef] = None   # rank - 1
    right: Optional[NodeRef] = None  # rank + 1
    #: Re-dispatched subtask: restart from iteration 0 and use
    #: non-blocking halo receives (freshest-iterate) while catching up
    #: with neighbours that are already deep into the computation.
    catch_up: bool = False


def channel_context_for(peer_a, peer_b, scheme: Scheme) -> ChannelContext:
    """Derive the P2PSAP adaptation context for a peer pair."""
    from ..p2psap import Locality

    prefix = proximity(peer_a.ip, peer_b.ip)
    locality = (
        Locality.SAME_ZONE if prefix >= SAME_ZONE_PREFIX_BITS
        else Locality.INTER_ZONE
    )
    latency = peer_a.net.topology.route_latency(peer_a.host, peer_b.host)
    return ChannelContext(scheme, locality, classify_link(latency))


class SubtaskExecution:
    """One peer's execution of one subtask (runs as a desim process).

    Halo partners are tracked *by rank*, not by peer identity: when a
    neighbour dies and its rank is re-dispatched, :meth:`rewire` swaps
    in the replacement's channel, hands it a boundary-resync halo, and
    wakes any receive blocked on the dead peer.
    """

    def __init__(self, peer, assignment: WorkAssignment) -> None:
        self.peer = peer
        self.assignment = assignment
        self.sim = peer.sim
        self.rng = peer.overlay.rng.stream(f"compute:{peer.name}")
        self.iterations_done = 0
        self.stopped_early = False
        a = assignment
        self._neighbors: Dict[int, NodeRef] = {}
        if a.left is not None:
            self._neighbors[a.rank - 1] = a.left
        if a.right is not None:
            self._neighbors[a.rank + 1] = a.right
        self._endpoints = {
            rank: self._endpoint(ref)
            for rank, ref in self._neighbors.items()
        }
        # iterated twice per iteration: rebuilt only on rewire
        self._endpoint_items = list(self._endpoints.items())
        self._rewired = Signal(f"{peer.name}:rewire:{a.task_id}")

    # -- helpers ------------------------------------------------------------
    def _endpoint(self, neighbor: NodeRef):
        scheme = self.assignment.workload.scheme
        channel = self.peer.overlay.data_channel(self.peer, neighbor, scheme)
        return channel.endpoint_for(self.peer.host)

    def rewire(self, rank: int, new_ref: NodeRef) -> None:
        """Rank ``rank`` was re-dispatched to ``new_ref``: swap the
        channel, resync the boundary, wake a blocked receive."""
        if rank not in self._neighbors:
            return
        if self._neighbors[rank].name == new_ref.name:
            return  # duplicate update (e.g. coordinator + neighbour roles)
        a = self.assignment
        self._neighbors[rank] = new_ref
        self._endpoints[rank] = self._endpoint(new_ref)
        self._endpoint_items = list(self._endpoints.items())
        # boundary resync: the replacement needs our freshest iterate
        # to start computing at all
        self._endpoints[rank].send(
            a.workload.halo_bytes,
            data=("halo-resync", a.rank, self.iterations_done),
        )
        fired, self._rewired = self._rewired, Signal(
            f"{self.peer.name}:rewire:{a.task_id}"
        )
        fired.succeed(rank)

    def _noisy(self, seconds: float) -> float:
        frac = self.assignment.workload.noise_frac
        if frac <= 0:
            return seconds
        return max(0.0, seconds * (1.0 + self.rng.gauss(0.0, frac)))

    # -- the process ------------------------------------------------------------
    def run(self):
        a = self.assignment
        w = a.workload
        base_time = w.iteration_time(a.rank, a.nranks)
        speed = self.peer.host.speed
        if w.reference_speed > 0 and speed != w.reference_speed:
            # traces were priced at the reference clock: a slower host
            # stretches every burst, a faster one shrinks it (exact
            # no-op on homogeneous platforms — the guard keeps the
            # pre-heterogeneity event streams bit-identical)
            base_time *= w.reference_speed / speed
        nit = w.effective_nit()
        # A re-dispatched subtask catches up without blocking on halos:
        # its neighbours are far ahead, so it iterates on the freshest
        # boundary available (the resync halo, then whatever arrives).
        blocking = w.scheme is Scheme.SYNC and not a.catch_up
        for it in range(nit):
            # compute burst
            yield self.sim.timeout(self._noisy(base_time))
            # halo exchange with both neighbours (sends first, then
            # receives — full duplex, both directions overlap).  A
            # rewire mid-iteration swaps self._endpoint_items, so the
            # snapshot taken per loop mirrors the old list() copies.
            for _rank, endpoint in self._endpoint_items:
                endpoint.send(w.halo_bytes, data=("halo", a.rank, it))
            if blocking:
                for rank, _endpoint in list(self._endpoint_items):
                    yield from self._recv_halo(rank)
            else:
                for _rank, endpoint in self._endpoint_items:
                    endpoint.try_recv()  # freshest iterate
            self.iterations_done = it + 1
            # periodic convergence check through the hierarchy
            if w.check_every > 0 and (it + 1) % w.check_every == 0:
                check_index = (it + 1) // w.check_every
                decision = yield from self._convergence_check(check_index, it)
                if decision:
                    self.stopped_early = True
                    break
        return self._result()

    def _recv_halo(self, rank: int):
        w = self.assignment.workload
        # Fast path: the halo already arrived (the common case when
        # both sides compute in near lock-step) — consume it without
        # building the recv-signal/AnyOf machinery.  Identical to the
        # slow path consuming the queued item via an immediately-
        # triggered signal: neither schedules a simulator event.
        if w.halo_timeout is None and self._endpoints[rank].try_recv() is not None:
            return
        # one deadline for the whole wait: a rewire wake-up (even for
        # the other neighbour) must not restart the halo timeout
        deadline = (self.sim.timeout(w.halo_timeout, "timeout")
                    if w.halo_timeout is not None else None)
        recv = recv_endpoint = None
        while True:
            endpoint = self._endpoints[rank]
            if recv is None or recv_endpoint is not endpoint:
                # (re)arm only when the channel changed — the pending
                # getter on an unchanged endpoint stays valid, and
                # re-arming it would swallow the next halo
                recv = endpoint.recv()
                recv_endpoint = endpoint
            waits = [recv, self._rewired]
            if deadline is not None:
                waits.append(deadline)
            index, _value = yield AnyOf(waits)
            if index == 0:
                return
            if index == 1:
                continue  # a neighbour was re-dispatched; retry the recv
            raise PeerComputeError(
                f"{self.peer.name}: halo from {self._neighbors[rank].name} "
                f"timed out (rank {self.assignment.rank})"
            )

    def _convergence_check(self, check_index: int, it: int):
        a = self.assignment
        sig = self.peer.register_decision(a.task_id, check_index)
        report = ConvergenceReport(
            self.peer.ref,
            task_id=a.task_id,
            rank=a.rank,
            check_index=check_index,
            residual=a.workload.residual(it),
        )
        # remembered so that, if the coordinator dies while we block on
        # the decision, the report can be re-sent to its stand-in
        self.peer.note_report(report)
        # a lost report (or a lost decision) blocks this generator on
        # ``sig`` forever — the canonical lossy-network deadlock the
        # reliability hardening exists to prevent
        self.peer.send_critical(a.coordinator, report)
        decision = yield sig
        return bool(decision)

    def _result(self) -> SubtaskResult:
        a = self.assignment
        return SubtaskResult(
            self.peer.ref,
            task_id=a.task_id,
            rank=a.rank,
            result_bytes=a.workload.result_bytes,
            checksum=float(a.rank),
            iterations_done=self.iterations_done,
        )


class PeerComputeError(Exception):
    pass
