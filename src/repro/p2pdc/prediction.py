"""Prediction-guided peer selection (closing the dPerf loop).

The paper builds a performance predictor (dPerf) and a scheduler
(P2PDC) but never connects them: selection policies pick computing
peers blind to predicted makespan.  This module supplies the missing
link — a cheap analytic makespan model over a *candidate group sketch*
(the members in rank order with their declared clock speeds), priced
from the same :class:`~repro.p2pdc.computation.WorkloadSpec` numbers
the reference execution runs on.  Those numbers come out of the warm
per-process dPerf trace caches, so scoring hundreds of candidate
groups costs hundreds of float multiplies, not a recalibration each.

Three pieces:

- :func:`predict_makespan` — what the ``predicted`` policy ranks by,
  optionally corrupted by a seeded :class:`PredictionError` (the
  ablation axis: multiplicative noise, adversarial sign flips, or
  stale-trace speed decay);
- :func:`oracle_makespan` — the omniscient upper bound: true speeds
  (never corrupted) plus the synchronous halo-coupling term the
  predictor ignores.  On a contention-free platform with uniform link
  latency the coupling is a constant offset, so oracle ordering
  coincides with zero-error predicted ordering — the consistency
  property the test harness pins;
- :func:`candidate_groups` — deterministic candidate enumeration with
  a windowed fallback that never loses the individually-best group.

Error draws are seeded per candidate key (``derive_seed`` over the
member names), so scores are independent of evaluation order and the
same configuration always corrupts the same way.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, List, Optional, Sequence, Tuple

from ..desim.rng import derive_seed

#: Degradation models of the prediction-error ablation.
PREDICTION_ERROR_KINDS = ("noise", "flip", "stale")

#: Candidate-group enumeration switches from exhaustive combinations
#: to score-ordered windows above this count (C(12, 8) = 495 — the
#: registry grids' collection pools stay exhaustive).
CANDIDATE_CAP = 512

#: (name, declared speed) pairs in rank order — the deployment sketch
#: a candidate group is scored as.
Members = Sequence[Tuple[str, float]]


@dataclass(frozen=True)
class PredictionError:
    """Seeded corruption of predicted-makespan scores.

    ``level == 0`` (the default) is the uncorrupted predictor.  At
    ``level > 0``:

    - ``noise``: each candidate's score is scaled by
      ``exp(N(0, level))`` — multiplicative log-normal noise;
    - ``flip``: each candidate's score is negated with probability
      ``min(1, level)`` — at 1.0 the ranking is exactly inverted,
      the adversarial worst case the robustness bound is measured at;
    - ``stale``: every declared speed is pulled toward the reference
      clock by weight ``min(1, level)`` — at 1.0 all nodes look
      identical and the predictor degenerates to tie-break order.
    """

    kind: str = "noise"
    level: float = 0.0
    seed: int = 2011

    def __post_init__(self) -> None:
        if self.kind not in PREDICTION_ERROR_KINDS:
            raise ValueError(
                f"prediction error kind must be one of "
                f"{PREDICTION_ERROR_KINDS}, got {self.kind!r}"
            )
        if self.level < 0:
            raise ValueError(
                f"prediction error level must be >= 0, got {self.level!r}"
            )

    @property
    def active(self) -> bool:
        return self.level > 0

    def skewed_speed(self, speed: float, reference: float) -> float:
        """The speed the stale predictor believes (geometric pull
        toward the reference clock); identity for the other kinds."""
        if self.kind != "stale" or self.level <= 0:
            return speed
        w = min(1.0, self.level)
        return speed ** (1.0 - w) * reference ** w

    def corrupt(self, score: float, key: str) -> float:
        """Corrupt one candidate's score (noise / flip kinds).

        ``key`` identifies the candidate (member names), so the draw
        is a pure function of (seed, candidate) — independent of how
        many other candidates were scored before it.
        """
        if self.level <= 0 or self.kind == "stale":
            return score
        rng = random.Random(
            derive_seed(self.seed, f"prediction-error:{key}")
        )
        if self.kind == "noise":
            return score * math.exp(rng.gauss(0.0, self.level))
        # flip: adversarial inversion with probability min(1, level)
        if rng.random() < min(1.0, self.level):
            return -score
        return score


def _burst(workload, rank: int, n: int, speed: float) -> float:
    """One member's compute burst per iteration: the trace-priced
    reference burst stretched (or shrunk) to its clock.  With no
    reference pricing the burst degrades to a speed-relative cost —
    the ordering survives, the absolute seconds do not."""
    ref = workload.reference_speed
    base = workload.iteration_time(rank, n)
    if ref > 0:
        return base * (ref / speed)
    return base / speed


def predict_makespan(workload, members: Members,
                     error: Optional[PredictionError] = None) -> float:
    """Predicted makespan of ``workload`` on a candidate group.

    ``members`` is the deployment sketch in rank order (IP order —
    exactly how ``assign_ranks`` will number the group).  The model
    prices the synchronous scheme's lock-step: every iteration lasts
    as long as its slowest rank, so the makespan is ``effective_nit ×
    max_rank(burst)``.  ``error`` corrupts the declared speeds
    (``stale``) or the final score (``noise``/``flip``).
    """
    n = len(members)
    worst = 0.0
    for rank, (name, speed) in enumerate(members):
        if error is not None:
            speed = error.skewed_speed(
                speed, workload.reference_speed or speed
            )
        worst = max(worst, _burst(workload, rank, n, speed))
    score = workload.effective_nit() * worst
    if error is not None:
        score = error.corrupt(
            score, "|".join(name for name, _speed in members)
        )
    return score


def oracle_makespan(workload, members: Members,
                    latency_of: Callable[[str, str], float]) -> float:
    """True reference-simulated makespan of a candidate group.

    The omniscient upper bound of the ablation: the same compute model
    as :func:`predict_makespan` but with the *true* speeds — never
    corrupted — plus the halo-coupling term the predictor ignores.
    Under the synchronous scheme rank ``i`` cannot start iteration
    ``k + 1`` before its neighbours' iteration-``k`` halos arrive, so
    the steady-state period is ``max(burst_i, max_adjacent(burst_j +
    latency_ij))``.
    """
    n = len(members)
    bursts = [
        _burst(workload, rank, n, speed)
        for rank, (_name, speed) in enumerate(members)
    ]
    period = max(bursts)
    for i in range(n - 1):
        lat = latency_of(members[i][0], members[i + 1][0])
        period = max(period, bursts[i] + lat, bursts[i + 1] + lat)
    return workload.effective_nit() * period


def peer_score(workload, name: str, speed: float,
               error: Optional[PredictionError] = None) -> float:
    """Predicted cost of one peer alone — the single-member makespan.

    Orders re-dispatch candidates and leftover spares by the same
    preference the group choice used, and pre-orders the pool the
    windowed enumeration fallback slides over.
    """
    if workload is not None:
        return predict_makespan(workload, ((name, speed),), error)
    # no workload in hand (defensive): rank by bare speed, corrupted
    score = 1.0 / speed
    return score if error is None else error.corrupt(score, name)


class GroupPricer:
    """Batch makespan pricing with amortized candidate enumeration.

    The serving tier answers many pricing queries against *one*
    platform's peer pool — same members, different workloads.  The
    expensive step, :func:`candidate_groups` over the pool (up to
    :data:`CANDIDATE_CAP` subsets), depends only on ``(pool, n)``, so
    the pricer enumerates once per distinct pool and replays the group
    list for every workload priced after it.  ``enumerations`` /
    ``pricings`` are the counters the amortization tests pin.

    Scoring mirrors the ``predicted`` policy's selection exactly: best
    group by ``(predict_makespan, sorted member names)`` — the same
    tie-break :class:`~repro.p2pdc.allocation.Submitter` uses, so a
    priced answer is the group a live dispatch would pick.
    """

    def __init__(self, cap: int = CANDIDATE_CAP) -> None:
        self.cap = cap
        self._groups: dict = {}
        self.enumerations = 0
        self.pricings = 0

    def groups_for(self, ordered: Members, n: int) -> List[Tuple]:
        """Candidate groups of size ``n`` over ``ordered`` (cached).

        ``ordered`` must be sorted best-individual-score-first, the
        same precondition as :func:`candidate_groups`.
        """
        key = (tuple(ordered), n)
        groups = self._groups.get(key)
        if groups is None:
            self.enumerations += 1
            groups = candidate_groups(tuple(ordered), n, self.cap)
            self._groups[key] = groups
        return groups

    def best_group(
        self, workload, ordered: Members, n: int,
        error: Optional[PredictionError] = None,
    ) -> Tuple[Tuple[Tuple[str, float], ...], float]:
        """The argmin candidate group and its predicted makespan."""
        self.pricings += 1
        best = min(
            self.groups_for(ordered, n),
            key=lambda g: (
                predict_makespan(workload, g, error),
                tuple(sorted(name for name, _speed in g)),
            ),
        )
        return best, predict_makespan(workload, best, error)

    def price_batch(
        self, workloads: Sequence, ordered: Members, n: int,
        error: Optional[PredictionError] = None,
    ) -> List[Tuple[Tuple[Tuple[str, float], ...], float]]:
        """:meth:`best_group` for each workload, one enumeration total."""
        return [self.best_group(w, ordered, n, error) for w in workloads]


def candidate_groups(ordered: Sequence, n: int,
                     cap: int = CANDIDATE_CAP) -> List[Tuple]:
    """Candidate member groups of size ``n`` from a pre-scored pool.

    ``ordered`` must be sorted best-individual-score-first.  When the
    full combination count fits under ``cap``, every subset is a
    candidate (exhaustive enumeration); otherwise the candidates are
    the ``len - n + 1`` contiguous windows of the scored ordering —
    window 0 is the ``n`` individually-best peers, which is the argmin
    group under the max-based makespan model, so the fallback never
    loses the optimum the exhaustive pass would find.
    """
    if n < 1:
        raise ValueError(f"candidate group size must be >= 1, got {n!r}")
    if len(ordered) <= n:
        return [tuple(ordered)]
    if math.comb(len(ordered), n) <= cap:
        return [tuple(c) for c in combinations(ordered, n)]
    return [tuple(ordered[i:i + n]) for i in range(len(ordered) - n + 1)]
