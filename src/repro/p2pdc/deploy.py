"""Standard overlay deployments for experiments and tests.

Maps a simulated platform onto a P2PDC overlay: one server, a core of
administrator-chosen trackers spread over the IP range (§III-A3), and
one peer per compute host.  IP addresses are assigned so that network
proximity correlates with IP proximity — peers of one zone share a
``10.<zone>.0.0/16`` prefix — which is the assumption behind the
longest-common-prefix metric (peers behind the same DSLAM or access
switch get adjacent addresses).

Trackers are co-located on peer hosts: in P2PDC trackers *are* trusted
volunteer peers, not dedicated machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..net import TcpModel
from ..platforms import PlatformSpec
from .allocation import Submitter
from .churn import ChurnPlan
from .overlay import Overlay, OverlayConfig
from .peer import Peer
from .server import Server
from .tracker import Tracker


@dataclass
class Deployment:
    overlay: Overlay
    server: Server
    trackers: List[Tracker]
    peers: List[Peer]
    submitter: Optional[Submitter] = None
    #: failure/rejoin events armed on the overlay (scripted + Poisson)
    churn_events: List = field(default_factory=list)

    @property
    def sim(self):
        return self.overlay.sim

    @property
    def crash_events(self) -> List:
        """Every armed event that crashes a node (rejoins excluded) —
        read from the overlay's arming log, so coordinator-targeted
        schedules armed at dispatch time (after deployment) count."""
        return [e for e in self.overlay.armed_churn
                if e.kind in ("peer", "tracker", "coordinator",
                              "server-down")]

    def arm_churn(self, plan: ChurnPlan) -> None:
        """Arm a churn plan post-settle and record its events."""
        plan.arm(self.overlay)
        self.churn_events = plan.events


@dataclass(frozen=True)
class ZonePlan:
    """Precomputed zone layout: the pure derivation of a deployment.

    Everything here is a function of (platform, n_peers, n_zones)
    alone — host selection, contiguous zone chunks, tracker/peer names
    and IP strings — so sweep runners cache one plan per deployment
    shape and grid points that differ only in churn/policy axes skip
    re-deriving it (see ``repro.scenarios.runner``)."""

    hosts: tuple
    n_zones: int
    #: per zone: (tracker_name, tracker_ip, ((peer_name, peer_ip, host), ...))
    zones: tuple


def plan_zones(
    platform: PlatformSpec, n_peers: Optional[int] = None, n_zones: int = 4
) -> ZonePlan:
    """Derive the zone layout ``deploy_overlay`` realizes."""
    hosts = platform.hosts if n_peers is None else platform.take_hosts(n_peers)
    if not hosts:
        raise ValueError("platform has no hosts for the overlay")
    n_zones = max(1, min(n_zones, len(hosts)))
    # contiguous host chunks become zones (host order correlates with
    # physical locality in all three platform builders)
    base, extra = divmod(len(hosts), n_zones)
    zones, start = [], 0
    for z in range(n_zones):
        size = base + (1 if z < extra else 0)
        chunk = hosts[start:start + size]
        start += size
        zones.append((
            f"tracker-{z}", f"10.{z}.0.1",
            tuple((f"p-{z}-{k}", f"10.{z}.{1 + k // 250}.{k % 250 + 2}", h)
                  for k, h in enumerate(chunk)),
        ))
    return ZonePlan(hosts=tuple(hosts), n_zones=n_zones, zones=tuple(zones))


def deploy_overlay(
    platform: PlatformSpec,
    n_peers: Optional[int] = None,
    n_zones: int = 4,
    config: OverlayConfig = OverlayConfig(),
    seed: int = 0,
    tcp: TcpModel = TcpModel(),
    with_submitter: bool = True,
    join_peers: bool = True,
    settle: bool = True,
    plan: Optional[ZonePlan] = None,
    route_intern: Optional[dict] = None,
) -> Deployment:
    """Deploy server + core trackers + peers over a platform.

    ``n_peers`` compute peers are placed on the first hosts (default:
    all hosts).  When ``join_peers`` the peers join the overlay through
    the protocol, and when ``settle`` the simulation runs until every
    peer is accepted into a zone.  Failure injection is armed on the
    returned deployment via :meth:`Deployment.arm_churn` — churn
    targets (peer/tracker names) only exist once this returns.

    ``plan`` short-circuits the zone derivation with a cached
    :class:`ZonePlan` (it must come from :func:`plan_zones` with the
    same arguments); ``route_intern`` shares one per-pair route store
    across deployments on the same (platform, tcp) — both are the
    sweep runner's deployment-template fast path.
    """
    if plan is None:
        plan = plan_zones(platform, n_peers, n_zones)
    hosts = list(plan.hosts)
    n_zones = plan.n_zones
    overlay = Overlay(platform, config, seed=seed, tcp=tcp,
                      route_intern=route_intern)

    server = overlay.create_server(hosts[0], "10.255.0.1")

    trackers: List[Tracker] = []
    peers: List[Peer] = []
    for tracker_name, tracker_ip, zone_peers in plan.zones:
        tracker = overlay.create_tracker(
            zone_peers[0][2], tracker_ip, name=tracker_name
        )
        trackers.append(tracker)
        for peer_name, peer_ip, host in zone_peers:
            peers.append(overlay.create_peer(host, peer_ip, name=peer_name))

    overlay.bootstrap_core()

    submitter = None
    if with_submitter:
        submitter = Submitter(
            overlay, "submitter", _submitter_ip(n_zones), hosts[0]
        )
        overlay.peers.append(submitter)

    install_list = [t.ref for t in trackers]
    if join_peers:
        join_signals = [p.join_overlay(install_list) for p in peers]
        if with_submitter:
            join_signals.append(submitter.join_overlay(install_list))
        if settle:
            from ..desim import AllOf

            overlay.run_until(AllOf(join_signals), limit=1e5)
    elif with_submitter:
        submitter.tracker_list = install_list

    return Deployment(overlay, server, trackers, peers, submitter)


def _submitter_ip(n_zones: int):
    from .ip import IPv4

    return IPv4.parse(f"10.{max(0, n_zones - 1)}.250.250")
