"""Task submission and hierarchical allocation (paper §III-C).

The :class:`Submitter` drives the full task lifecycle:

1. join the overlay;
2. collect peers zone-by-zone along the tracker line (§III-B);
3. group them by proximity (≤ Cmax per group) and appoint one
   coordinator per group;
4. coordinators reserve their peers in parallel ("reverse" messages)
   while subtasks flow submitter → coordinator → peer;
5. the computation runs with convergence checks through the
   hierarchy; results flow back peer → coordinator → submitter.

A *flat* allocation baseline (submitter talks to every peer directly,
the pre-decentralization behaviour) is provided for the ablation
benchmarks: it exhibits exactly the serialization and submitter
bottleneck the hierarchy removes.

Churn recovery (``OverlayConfig.recovery``): coordinators monitor
their computing members and report a silent member's rank as
:class:`~repro.p2pdc.messages.SubtaskLost`; the submitter keeps the
current rank map, collects a replacement (leftover spares and rejoined
peers are free at their trackers), reserves it, and re-dispatches the
subtask with ``catch_up=True`` while rewiring the halo neighbours via
``RankUpdate``.  Candidates are ordered by the configured
``selection_policy`` — ``proximity`` (collection order, the v2
behaviour), ``random`` (seeded shuffle), ``failure_aware`` (fewest
observed failures first, Dubey & Tokekar 2012), or the
prediction-guided pair: ``predicted`` enumerates candidate groups and
ranks them by dPerf-priced makespan (optionally corrupted by the
configured prediction error — the ablation axis), ``oracle`` ranks by
the true simulated makespan (see :mod:`repro.p2pdc.prediction`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..desim import AnyOf, Signal
from .churn import ChurnPlan, poisson_peer_failures
from .collection import CollectionLog, collect_peers
from .computation import WorkAssignment, WorkloadSpec
from .groups import (
    assign_ranks,
    group_by_proximity,
    group_randomly,
    pick_coordinator,
)
from .messages import (
    ConvergenceDecision,
    CoordHandoff,
    DispatchGap,
    GroupAssign,
    GroupConvergence,
    GroupReady,
    NodeRef,
    RankUpdate,
    Reserve,
    ReserveCancel,
    ResultBatch,
    SubtaskLost,
    SubtaskMsg,
    SubtaskResult,
)
from .peer import Peer
from .prediction import (
    candidate_groups,
    oracle_makespan,
    peer_score,
    predict_makespan,
)
from .stats import TaskTimings

_task_ids = iter(range(1, 1_000_000))


@dataclass
class TaskSpec:
    """A computation to submit to the environment."""

    workload: WorkloadSpec
    n_peers: int
    requirements: Dict[str, float] = field(default_factory=dict)
    spares: int = 2
    task_timeout: float = 1e6


@dataclass
class TaskOutcome:
    task_id: int
    ok: bool
    reason: str = ""
    #: rank → peer; under recovery, re-dispatch updates entries in
    #: place, so this names the peer that finally computed each rank
    #: (groups/coordinators keep the initial allocation structure)
    ranks: List[NodeRef] = field(default_factory=list)
    groups: List[List[NodeRef]] = field(default_factory=list)
    coordinators: List[NodeRef] = field(default_factory=list)
    results: List[SubtaskResult] = field(default_factory=list)
    timings: TaskTimings = field(default_factory=TaskTimings)
    collection: CollectionLog = field(default_factory=CollectionLog)

    @property
    def makespan(self) -> Optional[float]:
        return self.timings.total_time


class Submitter(Peer):
    """A peer that can submit tasks."""

    role = "peer"

    def __init__(self, overlay, name, ip, host, resources=None) -> None:
        super().__init__(overlay, name, ip, host, resources)
        self._group_ready: Dict[tuple, Signal] = {}
        self._task_results: Dict[int, Signal] = {}
        self._batches: Dict[int, List[ResultBatch]] = {}
        self._expected_groups: Dict[int, int] = {}
        self._convergence: Dict[tuple, Dict[int, float]] = {}
        self._task_coordinators: Dict[int, List[NodeRef]] = {}
        self._task_tol: Dict[int, float] = {}
        # -- recovery state (subtask re-dispatch) -------------------------
        self._active_tasks: Set[int] = set()
        self._task_spec: Dict[int, TaskSpec] = {}
        self._task_ranks: Dict[int, List[NodeRef]] = {}
        self._task_members: Dict[int, Set[str]] = {}
        self._recovery_pending: Dict[int, Deque[Tuple[int, NodeRef]]] = {}
        self._recovery_kick: Dict[int, Signal] = {}
        self._recovery_procs: Dict[int, object] = {}
        # -- coordinator recovery (stand-in hand-offs) --------------------
        #: Verdict of every decided convergence check, so a stand-in
        #: re-reporting a check its predecessor already carried gets
        #: the recorded decision replayed instead of a stalled bucket.
        self._decided_checks: Dict[int, Dict[int, bool]] = {}
        #: (task, group) → the global ranks that group owns; used to
        #: re-relay dispatches that died in flight with a coordinator.
        self._task_group_ranks: Dict[Tuple[int, int], List[int]] = {}
        #: (task, old coordinator name) → its elected stand-in, so
        #: in-flight re-dispatch hunts resolve to the live coordinator.
        self._coord_successor: Dict[Tuple[int, str], NodeRef] = {}
        #: Dispatch-time coordinator-churn draws made so far: later
        #: tasks in one overlay session derive fresh seeds so their
        #: schedules are independent samples, not replays of task 1's.
        self._coord_churn_draws = 0

    # -- subtask dispatch (single constructor for every dispatch path) ------
    def _send_subtask(self, task_id: int, rank: int,
                      ranks: List[NodeRef], workload: WorkloadSpec,
                      coord: NodeRef, ref: NodeRef,
                      catch_up: bool = False,
                      via: Optional[NodeRef] = None) -> None:
        """Build and send one subtask dispatch: the assignment wires
        the halo neighbours from the current rank map, the message
        travels ``via`` (the relaying coordinator by default) toward
        ``ref``.  Initial dispatch, flat dispatch, re-dispatch and
        DispatchGap re-relay all construct through here, so the wiring
        can never drift between paths."""
        n = len(ranks)
        assignment = WorkAssignment(
            task_id=task_id, rank=rank, nranks=n, workload=workload,
            coordinator=coord, submitter=self.ref,
            left=ranks[rank - 1] if rank > 0 else None,
            right=ranks[rank + 1] if rank < n - 1 else None,
            catch_up=catch_up,
        )
        self.send_critical(via if via is not None else coord, SubtaskMsg(
            self.ref, task_id=task_id, rank=rank, final_dst=ref,
            payload_bytes=workload.subtask_bytes, spec=assignment,
        ))

    # -- peer-selection policy ----------------------------------------------
    def _policy_order(self, refs: List[NodeRef],
                      workload: Optional[WorkloadSpec] = None
                      ) -> List[NodeRef]:
        """Candidates ordered by ``config.selection_policy``.

        ``proximity`` keeps collection order (nearest zones were
        queried first — the pre-recovery behaviour, bit for bit);
        ``random`` shuffles with the seeded ``selection`` stream;
        ``failure_aware`` prefers peers with the fewest observed
        crashes (stable within equal scores); ``predicted``/``oracle``
        sort by individual predicted cost (re-dispatch hunts and the
        flat baseline score peers one at a time — group enumeration
        only happens in :meth:`_prediction_select`).
        """
        policy = self.overlay.config.selection_policy
        out = list(refs)
        if policy == "random":
            self.overlay.rng.stream("selection").shuffle(out)
        elif policy == "failure_aware":
            history = self.overlay.failure_history
            out.sort(key=lambda r: history.get(r.name, 0))
        elif policy in ("predicted", "oracle"):
            error = self._prediction_error() if policy == "predicted" else None
            out.sort(key=lambda r: peer_score(
                workload, r.name, self._declared_speed(r), error
            ))
        return out

    def _prediction_error(self):
        """The configured corruption, or None when inactive — level 0
        is the pure predictor, not a degenerate noise model."""
        error = self.overlay.config.prediction_error
        return error if error.active else None

    def _declared_speed(self, ref: NodeRef) -> float:
        """A candidate's declared clock speed.  Peers publish it in
        their resource vector at join time, so reading it back models
        the tracker-collected resource declaration, not an
        out-of-band measurement."""
        actor = self.overlay.actor(ref)
        if actor is None:
            return self.host.speed
        return float(getattr(actor, "resources", {}).get(
            "speed", actor.host.speed
        ))

    def _route_latency(self, name_a: str, name_b: str) -> float:
        """True route latency between two peers' hosts — the oracle's
        halo-coupling term (omniscient by construction)."""
        a = self.overlay.registry.get(name_a)
        b = self.overlay.registry.get(name_b)
        if a is None or b is None:
            return 0.0
        return self.overlay.net.topology.route_latency(a.host, b.host)

    def _select_peers(self, collected: List[NodeRef], task: TaskSpec
                      ) -> Tuple[List[NodeRef], List[NodeRef]]:
        """Split the collected pool into computing peers and spares.

        Classic policies order the whole pool and cut at ``n_peers``
        (exactly the pre-prediction behaviour); the prediction-guided
        policies enumerate candidate groups instead.
        """
        if self.overlay.config.selection_policy in ("predicted", "oracle"):
            return self._prediction_select(collected, task)
        ordered = self._policy_order(collected)
        return ordered[:task.n_peers], ordered[task.n_peers:]

    def _prediction_select(self, collected: List[NodeRef], task: TaskSpec
                           ) -> Tuple[List[NodeRef], List[NodeRef]]:
        """Prediction-guided group choice (``predicted`` / ``oracle``).

        Every candidate group is a deployment sketch: members in IP
        order (the exact rank numbering ``assign_ranks`` will give
        them) with their declared speeds, priced through the warm
        trace caches.  ``predicted`` ranks sketches by predicted
        makespan, corrupted by the configured prediction error if any;
        ``oracle`` ranks by the true simulated makespan (true speeds
        plus halo coupling, never corrupted) — the upper bound the
        ablation measures against.  Spares keep individual-score order
        so re-dispatch replacements follow the same preference.
        """
        policy = self.overlay.config.selection_policy
        workload = task.workload
        error = self._prediction_error() if policy == "predicted" else None
        speeds = {r.name: self._declared_speed(r) for r in collected}

        # best-individual-first pool: the windowed enumeration
        # fallback and the spare ordering both want it (IP tie-break
        # keeps equal-speed pools deterministic)
        pool = sorted(collected, key=lambda r: (
            peer_score(workload, r.name, speeds[r.name], error), int(r.ip)
        ))

        def sketch(group) -> tuple:
            ranked = sorted(group, key=lambda r: int(r.ip))
            return tuple((r.name, speeds[r.name]) for r in ranked)

        def score(group) -> float:
            if policy == "oracle":
                return oracle_makespan(workload, sketch(group),
                                       self._route_latency)
            return predict_makespan(workload, sketch(group), error)

        candidates = candidate_groups(pool, task.n_peers)
        best = min(candidates, key=lambda g: (
            score(g), tuple(sorted(r.name for r in g))
        ))
        chosen = sorted(best, key=lambda r: int(r.ip))
        taken = {r.name for r in chosen}
        spares = [r for r in pool if r.name not in taken]
        self.overlay.stats.count("prediction_candidates", len(candidates))
        return chosen, spares

    # -- public API -----------------------------------------------------------
    def submit(self, task: TaskSpec) -> Signal:
        """Submit a task; the returned signal yields a TaskOutcome."""
        done = Signal(f"{self.name}:task-outcome")
        self.start()
        self.sim.process(self._submit_process(task, done),
                         name=f"{self.name}:submit")
        return done

    def submit_flat(self, task: TaskSpec) -> Signal:
        """Baseline without coordinators (ablation A1)."""
        done = Signal(f"{self.name}:task-outcome-flat")
        self.start()
        self.sim.process(self._submit_flat_process(task, done),
                         name=f"{self.name}:submit-flat")
        return done

    # -- hierarchical path ------------------------------------------------------
    def _submit_process(self, task: TaskSpec, done: Signal):
        task_id = next(_task_ids)
        timings = TaskTimings(submitted_at=self.sim.now)
        outcome = TaskOutcome(task_id=task_id, ok=False, timings=timings)

        if not self.joined:
            yield self.join_overlay()

        # Phase 1: peers collection
        collected = yield from collect_peers(
            self, task.n_peers + task.spares, task.requirements, task_id,
            outcome.collection,
        )
        if len(collected) < task.n_peers:
            outcome.reason = (
                f"collected only {len(collected)}/{task.n_peers} peers"
            )
            done.succeed(outcome)
            return
        timings.collected_at = self.sim.now
        chosen, spares = self._select_peers(collected, task)

        # Phase 2: proximity groups + coordinators (random grouping is
        # the ablation control — a seeded stream keeps runs replayable)
        if self.overlay.config.grouping == "random":
            groups = group_randomly(
                chosen, self.overlay.config.cmax,
                self.overlay.rng.stream("grouping"),
            )
        else:
            groups = group_by_proximity(chosen, self.overlay.config.cmax)
        coordinators = [pick_coordinator(g) for g in groups]
        outcome.groups = groups
        outcome.coordinators = coordinators
        self._task_coordinators[task_id] = coordinators
        self._task_tol[task_id] = task.workload.tol
        self._expected_groups[task_id] = len(groups)
        self._batches[task_id] = []
        results_sig = Signal(f"{self.name}:results:{task_id}")
        self._task_results[task_id] = results_sig

        # Phase 3: parallel reservation through coordinators; on
        # failures, patch the groups with spares and re-assign (the
        # coordinator re-reserves — already-reserved peers re-ack).
        # With election enabled, a group whose coordinator never
        # answers gets a new coordinator appointed from its own
        # members — the pre-dispatch dual of the stand-in election.
        reserved_groups: List[List[NodeRef]] = []
        assign_lists = [list(g) for g in groups]
        tried_coords = [{coord.name} for coord in coordinators]
        for attempt in range(3):
            ready_sigs = []
            for gi, (group, coord) in enumerate(zip(assign_lists, coordinators)):
                sig = Signal(f"{self.name}:ready:{task_id}:{gi}:{attempt}")
                self._group_ready[(task_id, gi)] = sig
                ready_sigs.append(sig)
                self.send_critical(coord,
                                   GroupAssign(self.ref, task_id=task_id,
                                               group_index=gi, peers=group))
            readies = yield _all_of_with_timeout(
                self.sim, ready_sigs, self.overlay.config.reserve_timeout * 3
            )
            if readies == "timeout":
                missing = [gi for gi, sig in enumerate(ready_sigs)
                           if not sig.triggered]
                replaced = 0
                if self.overlay.config.election and attempt < 2:
                    for gi in missing:
                        candidates = [r for r in assign_lists[gi]
                                      if r.name not in tried_coords[gi]]
                        if candidates:
                            old = coordinators[gi]
                            coordinators[gi] = pick_coordinator(candidates)
                            tried_coords[gi].add(coordinators[gi].name)
                            replaced += 1
                            # stand the replaced coordinator down: if
                            # it was merely slow (not dead) it drops
                            # its duty and rejoins as a plain member
                            self.send_critical(old, CoordHandoff(
                                self.ref, task_id=task_id, group_index=gi,
                                old=old, new=coordinators[gi],
                                demoted=True,
                            ))
                if not replaced:
                    outcome.reason = "group reservation timed out"
                    done.succeed(outcome)
                    return
                self.overlay.stats.count("coordinator_reappointments",
                                         replaced)
                continue
            readies = sorted(readies, key=lambda m: m.group_index)
            failed = [ref for msg in readies for ref in msg.failed]
            reserved_groups = [list(msg.reserved) for msg in readies]
            if not failed:
                break
            if len(spares) < len(failed) or attempt == 2:
                outcome.reason = (
                    f"{len(failed)} peers failed reservation, "
                    f"{len(spares)} spares available"
                )
                done.succeed(outcome)
                return
            # patch: reserved members + one spare per failure, rebalanced
            self.overlay.stats.count("reservation_replacements", len(failed))
            replacements = spares[:len(failed)]
            spares = spares[len(failed):]
            assign_lists = [list(g) for g in reserved_groups]
            for ref in replacements:
                min(assign_lists, key=len).append(ref)
            for g in assign_lists:
                g.sort(key=lambda r: int(r.ip))
        timings.allocated_at = self.sim.now

        # Phase 4: rank assignment + subtask dispatch via coordinators
        ranks = assign_ranks(reserved_groups)
        outcome.ranks = ranks
        n = len(ranks)
        rank_of = {ref.name: i for i, ref in enumerate(ranks)}
        if self.overlay.config.recovery:
            self._task_spec[task_id] = task
            # the same list object as outcome.ranks: re-dispatch swaps
            # propagate, so the outcome credits the peer that actually
            # computed each rank
            self._task_ranks[task_id] = ranks
            self._task_members[task_id] = {r.name for r in ranks}
            self._active_tasks.add(task_id)
        timings.compute_started_at = self.sim.now
        for gi, (group, coord) in enumerate(zip(reserved_groups, coordinators)):
            if self.overlay.config.recovery:
                self._task_group_ranks[(task_id, gi)] = sorted(
                    rank_of[ref.name] for ref in group
                )
            for ref in group:
                self._send_subtask(task_id, rank_of[ref.name], ranks,
                                   task.workload, coord, ref)
        self._arm_coordinator_churn(coordinators)

        # Phase 5: await all result batches (convergence handled by handlers)
        res = yield AnyOf([results_sig,
                           self.sim.timeout(task.task_timeout, "timeout")])
        if res[1] == "timeout":
            self._finish_task(task_id)
            outcome.reason = "computation timed out"
            done.succeed(outcome)
            return
        self._finish_task(task_id)
        outcome.results = sorted(
            (r for batch in self._batches.pop(task_id) for r in batch.results),
            key=lambda r: r.rank,
        )
        timings.completed_at = self.sim.now
        outcome.ok = len(outcome.results) == n
        if not outcome.ok:
            outcome.reason = f"{n - len(outcome.results)} results missing"
        done.succeed(outcome)

    # -- flat baseline -------------------------------------------------------------
    def _submit_flat_process(self, task: TaskSpec, done: Signal):
        task_id = next(_task_ids)
        timings = TaskTimings(submitted_at=self.sim.now)
        outcome = TaskOutcome(task_id=task_id, ok=False, timings=timings)
        if not self.joined:
            yield self.join_overlay()
        collected = yield from collect_peers(
            self, task.n_peers, task.requirements, task_id, outcome.collection
        )
        if len(collected) < task.n_peers:
            outcome.reason = "not enough peers"
            done.succeed(outcome)
            return
        timings.collected_at = self.sim.now
        ranks = sorted(
            self._policy_order(collected, task.workload)[:task.n_peers],
            key=lambda r: int(r.ip),
        )
        outcome.ranks = ranks
        n = len(ranks)
        # serial reservation: connect to every peer in succession
        for ref in ranks:
            sig = Signal(f"{self.name}:flatrsv:{ref.name}")
            self._reserve_sigs[(task_id, ref.name)] = sig
            self.send_critical(ref, Reserve(self.ref, task_id=task_id,
                                            coordinator=self.ref))
            result = yield AnyOf([
                sig,
                self.sim.timeout(self.overlay.config.reserve_timeout, "t/o"),
            ])
            if result[1] is not True:
                outcome.reason = f"peer {ref.name} failed reservation"
                done.succeed(outcome)
                return
        timings.allocated_at = self.sim.now
        # submitter is the single coordinator for everything
        self._expected_groups[task_id] = 1
        self._batches[task_id] = []
        results_sig = Signal(f"{self.name}:results:{task_id}")
        self._task_results[task_id] = results_sig
        self._task_coordinators[task_id] = [self.ref]
        self._task_tol[task_id] = task.workload.tol
        from .peer import GroupDuty

        duty = GroupDuty(task_id=task_id, group_index=0, submitter=self.ref,
                         peers=list(ranks), reserved=list(ranks),
                         expected_results=n)
        self._duties[task_id] = duty
        timings.compute_started_at = self.sim.now
        for r, ref in enumerate(ranks):
            # no coordinator tier: the submitter dispatches directly
            self._send_subtask(task_id, r, ranks, task.workload,
                               self.ref, ref, via=ref)
        res = yield AnyOf([results_sig,
                           self.sim.timeout(task.task_timeout, "timeout")])
        if res[1] == "timeout":
            outcome.reason = "computation timed out"
            done.succeed(outcome)
            return
        outcome.results = sorted(
            (r for batch in self._batches.pop(task_id) for r in batch.results),
            key=lambda r: r.rank,
        )
        timings.completed_at = self.sim.now
        outcome.ok = len(outcome.results) == n
        done.succeed(outcome)

    # -- handlers -------------------------------------------------------------------
    def handle_PeerListReply(self, msg) -> None:
        self.resolve_request(msg.req_id, msg)

    def handle_MoreTrackersReply(self, msg) -> None:
        self.resolve_request(msg.req_id, msg)

    def handle_GroupReady(self, msg: GroupReady) -> None:
        coords = self._task_coordinators.get(msg.task_id)
        if (coords is not None and msg.group_index < len(coords)
                and coords[msg.group_index].name != msg.sender.name):
            # a late GroupReady from a coordinator this group no longer
            # uses (re-appointed away while its reservation dragged):
            # accepting it would leave two live coordinators owning
            # the same group
            return
        sig = self._group_ready.pop((msg.task_id, msg.group_index), None)
        if sig is not None and not sig.triggered:
            sig.succeed(msg)

    def handle_GroupConvergence(self, msg: GroupConvergence) -> None:
        decided = self._decided_checks.setdefault(msg.task_id, {})
        verdict = decided.get(msg.check_index)
        if verdict is not None:
            # a stand-in coordinator re-reporting a check its
            # predecessor already carried: replay the recorded verdict
            # to it directly instead of waiting on a stalled bucket
            self.send_critical(msg.sender, ConvergenceDecision(
                self.ref, task_id=msg.task_id, check_index=msg.check_index,
                stop=verdict, final_dst=None,
            ))
            return
        key = (msg.task_id, msg.check_index)
        bucket = self._convergence.setdefault(key, {})
        bucket[msg.group_index] = msg.residual
        if len(bucket) < self._expected_groups.get(msg.task_id, 0):
            return
        del self._convergence[key]
        tol = self._task_tol.get(msg.task_id, 0.0)
        stop = tol > 0.0 and max(bucket.values()) <= tol
        decided[msg.check_index] = stop
        for coord in self._task_coordinators.get(msg.task_id, []):
            if coord.name == self.name:
                # flat mode: we are the coordinator — fan out directly
                duty = self._duties.get(msg.task_id)
                if duty is not None:
                    for ref in duty.reserved:
                        self.send_critical(ref, ConvergenceDecision(
                            self.ref, task_id=msg.task_id,
                            check_index=msg.check_index, stop=stop,
                            final_dst=ref,
                        ))
            else:
                self.send_critical(coord, ConvergenceDecision(
                    self.ref, task_id=msg.task_id,
                    check_index=msg.check_index, stop=stop, final_dst=None,
                ))

    def handle_ResultBatch(self, msg: ResultBatch) -> None:
        batches = self._batches.get(msg.task_id)
        if batches is None:
            return
        batches.append(msg)
        if len(batches) >= self._expected_groups.get(msg.task_id, 0):
            sig = self._task_results.pop(msg.task_id, None)
            if sig is not None and not sig.triggered:
                sig.succeed(True)

    # -- coordinator recovery: hand-offs and dispatch gaps --------------------------
    def _arm_coordinator_churn(self, coordinators: List[NodeRef]) -> None:
        """Draw and arm the coordinator-targeted Poisson crash schedule
        (configured by the scenario runner) over the coordinators just
        appointed — they only exist from dispatch time on."""
        churn = self.overlay.coordinator_churn
        if churn is None or churn.rate <= 0:
            return
        from ..desim.rng import derive_seed

        targets: List[str] = []
        for ref in coordinators:
            if ref.name != self.name and ref.name not in targets:
                targets.append(ref.name)
        # the first task draws straight from the configured seed; each
        # later task in the same overlay session derives a fresh one,
        # so its schedule is an independent sample, not a replay of
        # task 1's offsets.  (A per-submitter counter, never the
        # process-global task id: the draw must stay a pure function
        # of the spec for the result cache to be sound.)
        self._coord_churn_draws += 1
        seed = (churn.seed if self._coord_churn_draws == 1
                else derive_seed(churn.seed,
                                 f"task-{self._coord_churn_draws}"))
        events = poisson_peer_failures(
            churn.rate, targets, seed,
            start=self.sim.now + churn.start, horizon=churn.horizon,
            max_failures=churn.max_failures, kind="coordinator",
        )
        if events:
            ChurnPlan(events=events).arm(self.overlay)

    def handle_CoordHandoff(self, msg: CoordHandoff) -> None:
        """A stand-in coordinator took over a group: route every future
        decision, re-dispatch and rank update to it."""
        coords = self._task_coordinators.get(msg.task_id)
        if coords is None:
            return
        old_name = msg.old.name if msg.old is not None else None
        for i, ref in enumerate(coords):
            if ref.name == old_name:
                coords[i] = msg.new
        if old_name is not None:
            self._coord_successor[(msg.task_id, old_name)] = msg.new
        # the new coordinator is current: a stale entry naming a
        # successor *for it* (e.g. from a duel it later re-won) would
        # close a cycle and resolve hunts to a dead node
        self._coord_successor.pop((msg.task_id, msg.new.name), None)
        pending = self._recovery_pending.get(msg.task_id)
        if pending:
            refreshed = [(rank, msg.new if coord.name == old_name else coord)
                         for rank, coord in pending]
            pending.clear()
            pending.extend(refreshed)
        # the verdict history died with the old coordinator: replay it,
        # so catch-up subtasks sailing through already-decided checks
        # get instant decisions instead of stalling a bucket forever
        for check_index, stop in sorted(
                self._decided_checks.get(msg.task_id, {}).items()):
            self.send_critical(msg.new, ConvergenceDecision(
                self.ref, task_id=msg.task_id, check_index=check_index,
                stop=stop, final_dst=None,
            ))
        self.overlay.stats.count("coordinator_handoffs")

    def _live_coordinator(self, task_id: int, coord: NodeRef) -> NodeRef:
        """Resolve a coordinator ref through the hand-off successor
        chain (identity when no hand-off happened)."""
        seen = set()
        while coord.name not in seen:
            seen.add(coord.name)
            successor = self._coord_successor.get((task_id, coord.name))
            if successor is None:
                return coord
            coord = successor
        return coord

    def handle_DispatchGap(self, msg: DispatchGap) -> None:
        """A stand-in found group ranks with no known computer — their
        dispatch died in flight with the old coordinator.  Re-relay
        those subtasks (catch-up mode) through the stand-in."""
        task_id = msg.task_id
        if task_id not in self._active_tasks:
            return
        group_ranks = self._task_group_ranks.get((task_id, msg.group_index))
        task = self._task_spec.get(task_id)
        ranks = self._task_ranks.get(task_id)
        if group_ranks is None or task is None or ranks is None:
            return
        known = set(msg.known_ranks)
        for rank in group_ranks:
            if rank in known:
                continue
            self._send_subtask(task_id, rank, ranks, task.workload,
                               msg.sender, ranks[rank], catch_up=True)
            self.overlay.stats.count("gap_redispatches")

    # -- mid-computation recovery: subtask re-dispatch ------------------------------
    def handle_SubtaskLost(self, msg: SubtaskLost) -> None:
        """A coordinator reports a silent member: queue the rank for
        re-dispatch and (re)start the per-task recovery worker."""
        task_id = msg.task_id
        if task_id not in self._active_tasks:
            return
        pending = self._recovery_pending.setdefault(task_id, deque())
        if any(rank == msg.rank for rank, _coord in pending):
            return
        members = self._task_members.get(task_id)
        if members is not None:
            # the dead peer leaves the task; if it rejoins it becomes
            # an ordinary (free) re-dispatch candidate again
            members.discard(msg.peer.name)
        pending.append((msg.rank, msg.sender))
        self.overlay.stats.count("subtask_loss_reports")
        kick = self._recovery_kick.get(task_id)
        if kick is not None and not kick.triggered:
            kick.succeed(None)
        worker = self._recovery_procs.get(task_id)
        if worker is None or not worker.alive:
            self._recovery_procs[task_id] = self.sim.process(
                self._recovery_worker(task_id),
                name=f"{self.name}:recovery:{task_id}",
            )

    def _recovery_worker(self, task_id: int):
        """Serial re-dispatch loop: one replacement hunt at a time, so
        two lost ranks never race for the same candidate."""
        while task_id in self._active_tasks:
            pending = self._recovery_pending.get(task_id)
            if not pending:
                kick = Signal(f"{self.name}:recovery-kick:{task_id}")
                self._recovery_kick[task_id] = kick
                yield kick
                continue
            rank, coord = pending.popleft()
            yield from self._redispatch(task_id, rank, coord)

    def _redispatch(self, task_id: int, rank: int, coord: NodeRef):
        """Find, reserve and re-dispatch a replacement for ``rank``.

        Leftover spares were never reserved and rejoined peers
        re-registered as free, so a fresh collection round finds both;
        candidates are policy-ordered.  While nobody is available the
        hunt retries every ``reserve_timeout`` (a crashed peer may
        still rejoin) until the task completes or times out.
        """
        cfg = self.overlay.config
        while task_id in self._active_tasks:
            # a hand-off may have replaced the reporting coordinator
            # while this hunt was collecting or waiting: re-resolve
            coord = self._live_coordinator(task_id, coord)
            task = self._task_spec.get(task_id)
            members = self._task_members.get(task_id)
            if task is None or members is None:
                return
            collected = yield from collect_peers(
                self, 2, task.requirements, task_id, CollectionLog()
            )
            pool = self._policy_order(
                [r for r in collected if r.name not in members],
                task.workload,
            )
            for ref in pool:
                if task_id not in self._active_tasks:
                    return  # task ended mid-hunt: stop reserving
                sig = Signal(f"{self.name}:redsv:{task_id}:{rank}:{ref.name}")
                self._reserve_sigs[(task_id, ref.name)] = sig
                self.send_critical(ref, Reserve(self.ref, task_id=task_id,
                                                coordinator=coord))
                result = yield AnyOf([
                    sig, self.sim.timeout(cfg.reserve_timeout, "timeout"),
                ])
                if result[1] is True:
                    self._reserve_sigs.pop((task_id, ref.name), None)
                    if task_id in self._active_tasks:
                        self._dispatch_replacement(task_id, rank, coord, ref)
                        return
                    # reserved, but the task ended while we waited: undo
                    self.send_critical(ref,
                                       ReserveCancel(self.ref,
                                                     task_id=task_id))
                    return
                elif result[1] == "timeout":
                    # leave the signal registered: a positive ack past
                    # the timeout still reserved the peer, so release
                    # it the moment the ack lands instead of leaking a
                    # busy peer for the rest of the run
                    sig._subscribe(
                        lambda s, ref=ref: self._cancel_late_reserve(
                            task_id, ref, s)
                    )
                else:
                    self._reserve_sigs.pop((task_id, ref.name), None)
            yield self.sim.timeout(cfg.reserve_timeout)

    def _cancel_late_reserve(self, task_id: int, ref: NodeRef,
                             sig: Signal) -> None:
        """A reservation ack that arrived after the hunt gave up: the
        peer is reserved for nothing — tell it to release.  If a later
        hunt re-registered this (task, peer) key with a fresh signal,
        that hunt owns the ack and no cancel is sent."""
        if self._reserve_sigs.get((task_id, ref.name)) is sig:
            self._reserve_sigs.pop((task_id, ref.name), None)
            if sig._value is True:
                self.send_critical(ref,
                                   ReserveCancel(self.ref, task_id=task_id))

    def _dispatch_replacement(self, task_id: int, rank: int,
                              coord: NodeRef, ref: NodeRef) -> None:
        """Hand ``rank`` to the reserved replacement and rewire."""
        coord = self._live_coordinator(task_id, coord)
        task = self._task_spec[task_id]
        ranks = self._task_ranks[task_id]
        members = self._task_members[task_id]
        ranks[rank] = ref
        members.add(ref.name)
        n = len(ranks)
        # rewire first (smaller messages land before the subtask): the
        # coordinator swaps its reserved/monitoring entry, the halo
        # neighbours swap channels and resync their boundary
        recipients = {coord.name: coord}
        for nb in (rank - 1, rank + 1):
            if 0 <= nb < n:
                recipients.setdefault(ranks[nb].name, ranks[nb])
        for dst in recipients.values():
            self.send_critical(dst,
                               RankUpdate(self.ref, task_id=task_id,
                                          rank=rank, new_ref=ref))
        self._send_subtask(task_id, rank, ranks, task.workload, coord, ref,
                           catch_up=True)
        self.overlay.stats.count("redispatched_subtasks")

    def _finish_task(self, task_id: int) -> None:
        """Stop recovery for a task that completed or timed out."""
        self._active_tasks.discard(task_id)
        kick = self._recovery_kick.pop(task_id, None)
        if kick is not None and not kick.triggered:
            kick.succeed(None)
        self._recovery_procs.pop(task_id, None)
        for store in (self._task_spec, self._task_ranks,
                      self._task_members, self._recovery_pending,
                      self._decided_checks):
            store.pop(task_id, None)
        for keyed in (self._task_group_ranks, self._coord_successor):
            for key in [k for k in keyed if k[0] == task_id]:
                del keyed[key]


def _all_of_with_timeout(sim, signals, timeout):
    """Process helper: yields the list of signal values, or "timeout"."""
    from ..desim import AllOf

    done = Signal("allof-timeout")
    all_of = AllOf(signals)
    all_of._subscribe(
        lambda s: done.succeed(s._value) if not done.triggered else None
    )
    sim.schedule(timeout, lambda: done.succeed("timeout")
                 if not done.triggered else None)
    return done
