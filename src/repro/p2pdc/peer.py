"""The P2PDC peer (paper §III-A6/7 and §III-C).

A peer donates resources: it joins the zone of its closest tracker,
publishes its resources, heartbeats state updates (and re-joins via
its local tracker list when the tracker dies), and waits for work.

Peers also carry the *coordinator* role: when a submitter assigns it a
group, the peer reserves the group members in parallel (the paper's
"reverse" message), relays subtasks downward and results upward, and
aggregates convergence reports — the hierarchical mechanism that
avoids the submitter bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..desim import AnyOf, Signal
from .computation import PeerComputeError, SubtaskExecution, WorkAssignment
from .ip import proximity
from .messages import (
    ComputePing,
    ComputePong,
    ConvergenceDecision,
    ConvergenceReport,
    CoordHandoff,
    CoordPing,
    CoordPong,
    DispatchGap,
    DutyCheckpoint,
    GetTrackers,
    GroupAssign,
    GroupConvergence,
    GroupReady,
    NodeRef,
    PeerAccept,
    PeerBusy,
    PeerFree,
    PeerJoin,
    RankUpdate,
    Reserve,
    ReserveAck,
    ReserveCancel,
    ResultBatch,
    StateUpdate,
    SubtaskLost,
    SubtaskMsg,
    SubtaskResult,
    TrackersReply,
    UpdateAck,
)
from .node import NodeActor


@dataclass
class GroupDuty:
    """Coordinator-side state for one assigned group."""

    task_id: int
    group_index: int
    submitter: NodeRef
    peers: List[NodeRef]
    reserved: List[NodeRef] = field(default_factory=list)
    failed: List[NodeRef] = field(default_factory=list)
    results: List[SubtaskResult] = field(default_factory=list)
    expected_results: int = 0
    reports: Dict[int, Dict[int, float]] = field(default_factory=dict)
    batch_sent: bool = False
    # -- recovery bookkeeping (only used when config.recovery) ------------
    rank_of: Dict[str, int] = field(default_factory=dict)
    #: The ranks this group owns — stable under re-dispatch, unlike
    #: rank_of whose name→rank entries are overwritten when a rejoined
    #: ex-member takes over a different rank.
    ranks: Set[int] = field(default_factory=set)
    last_heard: Dict[str, float] = field(default_factory=dict)
    decided: Dict[int, bool] = field(default_factory=dict)
    reported_checks: Set[int] = field(default_factory=set)
    # -- replication bookkeeping (only used when config.election) ---------
    #: Bumped whenever election-relevant state changes; the monitor
    #: broadcasts a DutyCheckpoint when it outruns ``checkpointed``.
    version: int = 0
    checkpointed: int = -1


class Peer(NodeActor):
    """A resource-donating peer; also carries the coordinator role."""
    role = "peer"

    def __init__(self, overlay, name, ip, host, resources=None) -> None:
        super().__init__(overlay, name, ip, host)
        self.resources: Dict[str, float] = dict(resources or {})
        self.resources.setdefault("speed", host.speed)
        self.tracker: Optional[NodeRef] = None
        self.tracker_list: List[NodeRef] = []
        self.joined = False
        self.busy = False
        self.current_task: Optional[int] = None
        self.current_coordinator: Optional[NodeRef] = None
        self._join_signal: Optional[Signal] = None
        self._join_candidates: List[NodeRef] = []
        self._join_attempt = 0
        self._last_ack = 0.0
        self._decisions: Dict[Tuple[int, int], Signal] = {}
        self._duties: Dict[int, GroupDuty] = {}
        self._reserve_sigs: Dict[Tuple[int, str], Signal] = {}
        self._compute_procs: list = []
        self._executions: Dict[int, SubtaskExecution] = {}
        self.completed_subtasks: List[SubtaskResult] = []
        self.rejoin_count = 0
        # -- coordinator recovery (member side, config.election) -----------
        #: Latest replicated duty snapshot per task (from checkpoints).
        self._checkpoints: Dict[int, DutyCheckpoint] = {}
        #: Tasks with a live coordinator-monitor timer chain (one chain
        #: per task; the chain discards its entry when it dies).
        self._coord_watch: Set[int] = set()
        #: When the coordinator of each task was last heard from.
        self._coord_heard: Dict[int, float] = {}
        #: Coordinators declared lost per task (never re-adopted).
        self._dead_coords: Dict[int, Set[str]] = {}
        #: Claim-timer epoch per task: bumping it cancels a scheduled
        #: stand-in claim (a hand-off from an earlier candidate won).
        self._claim_epoch: Dict[int, int] = {}
        #: Latest convergence report per task (re-sent to a stand-in).
        self._last_reports: Dict[int, ConvergenceReport] = {}

    # -- membership ---------------------------------------------------------------
    def join_overlay(self, tracker_list: Optional[List[NodeRef]] = None) -> Signal:
        """Join through the closest tracker in the local list (stored at
        install time, §III-A3); falls back to the server when empty."""
        self.start()
        if self._join_signal is None or self._join_signal.triggered:
            self._join_signal = Signal(f"{self.name}:joined")
        if tracker_list:
            self.tracker_list = list(tracker_list)
        self._join_candidates = self._ranked_trackers()
        self._join_attempt = 0
        self._try_join()
        return self._join_signal

    def _ranked_trackers(self) -> List[NodeRef]:
        return sorted(
            self.tracker_list,
            key=lambda r: (-proximity(self.ip, r.ip), abs(int(r.ip) - int(self.ip))),
        )

    def _try_join(self) -> None:
        if self.joined:
            return
        if self._join_attempt < len(self._join_candidates):
            target = self._join_candidates[self._join_attempt]
            self._join_attempt += 1
            self.send_critical(
                target,
                PeerJoin(self.ref, peer=self.ref, resources=self.resources),
            )
        else:
            server = self.overlay.server
            if server is not None:
                req_id, _ = self.new_request()
                self.send_critical(server.ref,
                                   GetTrackers(self.ref, req_id=req_id))
        self.set_timer(self.overlay.config.update_ack_timeout, "join_retry")

    def timer_join_retry(self, _payload) -> None:
        if not self.joined:
            self._try_join()

    def handle_TrackersReply(self, msg: TrackersReply) -> None:
        self.drop_request(msg.req_id)
        if not self.joined:
            self._join_candidates = list(msg.trackers)
            self._join_attempt = 0
            self._try_join()

    def handle_PeerAccept(self, msg: PeerAccept) -> None:
        first_join = not self.joined
        self.tracker = msg.tracker
        self.tracker_list = list(msg.tracker_list)
        self.joined = True
        self._last_ack = self.sim.now
        if first_join:
            self.every(self.overlay.config.state_update_interval, "state_update")
        if self._join_signal is not None and not self._join_signal.triggered:
            self._join_signal.succeed(msg.tracker)

    # -- heartbeats / tracker-failure recovery -----------------------------------------
    def timer_state_update(self, _payload) -> None:
        if not self.joined or self.tracker is None:
            return
        self.send(self.tracker, StateUpdate(self.ref, usage=0.0, busy=self.busy))
        self.set_timer(
            self.overlay.config.update_ack_timeout, "ack_check", self.sim.now
        )

    def timer_ack_check(self, sent_at) -> None:
        if not self.joined or self.tracker is None:
            return
        if self._last_ack < sent_at:
            # tracker considered disconnected → join a neighbour zone
            dead = self.tracker
            self.overlay.stats.count("peer_tracker_failovers")
            self.rejoin_count += 1
            self.tracker = None
            self.joined = False
            self.tracker_list = [r for r in self.tracker_list if r.ip != dead.ip]
            self._join_candidates = self._ranked_trackers()
            self._join_attempt = 0
            self._try_join()

    def handle_UpdateAck(self, _msg: UpdateAck) -> None:
        self._last_ack = self.sim.now

    # -- reservation ("reverse") ----------------------------------------------------------
    def handle_Reserve(self, msg: Reserve) -> None:
        if self.busy and self.current_task != msg.task_id:
            self.send_critical(msg.sender,
                               ReserveAck(self.ref, task_id=msg.task_id,
                                          accepted=False))
            return
        self.busy = True
        self.current_task = msg.task_id
        self.current_coordinator = msg.coordinator
        if self.tracker is not None:
            self.send(self.tracker, PeerBusy(self.ref, task_id=msg.task_id))
        # a lost positive ack would leave this peer reserved for a
        # coordinator that counted it failed — busy for the whole run
        self.send_critical(msg.sender,
                           ReserveAck(self.ref, task_id=msg.task_id,
                                      accepted=True))

    def _release(self) -> None:
        task_id = self.current_task
        self.busy = False
        self.current_task = None
        self.current_coordinator = None
        if task_id is not None:
            # member-side coordinator-recovery state dies with the
            # reservation (completed results stay in completed_subtasks
            # for post-release re-sends to a stand-in)
            self._checkpoints.pop(task_id, None)
            self._coord_heard.pop(task_id, None)
            self._dead_coords.pop(task_id, None)
            self._claim_epoch.pop(task_id, None)
            self._last_reports.pop(task_id, None)
            self._coord_watch.discard(task_id)
        if self.tracker is not None:
            self.send(self.tracker, PeerFree(self.ref))

    # -- subtask execution ---------------------------------------------------------------
    def handle_SubtaskMsg(self, msg: SubtaskMsg) -> None:
        duty = self._duties.get(msg.task_id)
        if duty is not None and msg.final_dst is not None:
            # coordinator: remember who computes which rank (the
            # compute monitor reports losses per rank)
            duty.rank_of[msg.final_dst.name] = msg.rank
            duty.ranks.add(msg.rank)
            duty.version += 1
        if msg.final_dst is not None and msg.final_dst.name != self.name:
            # coordinator relay toward the computing peer (per-hop
            # reliability: the relay leg gets its own envelope)
            self.send_critical(msg.final_dst, msg)
            return
        if msg.task_id in self._executions:
            # duplicate dispatch (e.g. a DispatchGap re-relay racing
            # the original): the first one wins
            return
        done = next((r for r in self.completed_subtasks
                     if r.task_id == msg.task_id and r.rank == msg.rank),
                    None)
        if done is not None:
            # this exact rank was computed by a previous incarnation
            # and the result may have died with a crashed coordinator:
            # re-send it instead of recomputing, and free the
            # reservation so the peer can serve other lost ranks
            self.overlay.stats.count("resent_completed_results")
            self.send_critical(msg.spec.coordinator, done)
            if self.current_task == msg.task_id:
                self._release()
            return
        if self.current_task != msg.task_id:
            # not reserved for this task — e.g. a re-relay addressed to
            # a rank holder that crashed and rejoined as a free peer.
            # Dropping it keeps the reservation protocol honest: the
            # coordinator's monitor sees the rank silent and the
            # submitter re-dispatches it with a proper reservation.
            self.overlay.stats.count("unreserved_dispatches")
            return
        assignment: WorkAssignment = msg.spec
        execution = SubtaskExecution(self, assignment)
        self._executions[msg.task_id] = execution
        proc = self.sim.process(
            self._execute(execution), name=f"{self.name}:task{msg.task_id}"
        )
        self._compute_procs.append(proc)
        cfg = self.overlay.config
        if (cfg.election and assignment.coordinator.name != self.name
                and msg.task_id not in self._coord_watch):
            # member side of coordinator recovery: watch our
            # coordinator for as long as we compute this task.  The
            # subtask arrived through the coordinator's own relay, so
            # the clock starts *now* — a reservation-era checkpoint
            # timestamp must not count a long allocation stall (e.g. a
            # pre-dispatch reappointment) as coordinator silence.
            self._coord_watch.add(msg.task_id)
            self._coord_heard[msg.task_id] = self.sim.now
            self.set_timer(cfg.coord_ping_interval, "coord_monitor",
                           msg.task_id)

    def _execute(self, execution: SubtaskExecution):
        assignment = execution.assignment
        try:
            result = yield from execution.run()
        except PeerComputeError:
            self.overlay.stats.count("subtask_failures")
            self._executions.pop(assignment.task_id, None)
            self._release()
            return
        self.completed_subtasks.append(result)
        self.send_critical(assignment.coordinator, result)
        self._executions.pop(assignment.task_id, None)
        self._release()

    def register_decision(self, task_id: int, check_index: int) -> Signal:
        sig = Signal(f"{self.name}:decision:{task_id}:{check_index}")
        self._decisions[(task_id, check_index)] = sig
        return sig

    def note_report(self, report: ConvergenceReport) -> None:
        """Remember the latest convergence report per task, so it can
        be re-sent to a stand-in coordinator after a hand-off."""
        self._last_reports[report.task_id] = report

    def handle_ConvergenceDecision(self, msg: ConvergenceDecision) -> None:
        duty = self._duties.get(msg.task_id)
        if (duty is not None and msg.final_dst is None
                and duty.decided.get(msg.check_index) is not msg.stop):
            # coordinator: record the verdict (late reports from a
            # re-dispatched subtask get an immediate replay), then fan
            # the decision out to the group.  A verdict already known
            # (the submitter's decided-history replay after a
            # hand-off) is not re-recorded or re-broadcast.
            duty.decided[msg.check_index] = msg.stop
            duty.version += 1
            for ref in duty.reserved:
                if ref.name != self.name:
                    self.send_critical(
                        ref,
                        ConvergenceDecision(
                            self.ref, task_id=msg.task_id,
                            check_index=msg.check_index, stop=msg.stop,
                            final_dst=ref,
                        ),
                    )
        sig = self._decisions.pop((msg.task_id, msg.check_index), None)
        if sig is not None and not sig.triggered:
            sig.succeed(msg.stop)

    # -- coordinator role ---------------------------------------------------------------------
    def handle_GroupAssign(self, msg: GroupAssign) -> None:
        duty = GroupDuty(
            task_id=msg.task_id,
            group_index=msg.group_index,
            submitter=msg.sender,
            peers=list(msg.peers),
        )
        self._duties[msg.task_id] = duty
        self.sim.process(
            self._reserve_group(duty), name=f"{self.name}:reserve{msg.task_id}"
        )

    def _reserve_group(self, duty: GroupDuty):
        cfg = self.overlay.config
        pending = []
        for ref in duty.peers:
            if ref.name == self.name:
                # the coordinator reserves itself directly
                self.busy = True
                self.current_task = duty.task_id
                self.current_coordinator = self.ref
                duty.reserved.append(self.ref)
                continue
            sig = Signal(f"{self.name}:rsv:{duty.task_id}:{ref.name}")
            self._reserve_sigs[(duty.task_id, ref.name)] = sig
            self.send_critical(ref, Reserve(self.ref, task_id=duty.task_id,
                                            coordinator=self.ref))
            pending.append((ref, sig))
        if pending:
            yield AnyOf([  # wait for all acks or the timeout, whichever first
                _all_or_timeout(self.sim, [s for _r, s in pending],
                                cfg.reserve_timeout)
            ])
        for ref, sig in pending:
            if sig.triggered and sig.ok and sig._value:
                duty.reserved.append(ref)
            else:
                duty.failed.append(ref)
            self._reserve_sigs.pop((duty.task_id, ref.name), None)
        duty.reserved.sort(key=lambda r: int(r.ip))
        duty.expected_results = len(duty.reserved)
        self.send_critical(
            duty.submitter,
            GroupReady(
                self.ref, task_id=duty.task_id, group_index=duty.group_index,
                reserved=list(duty.reserved), failed=list(duty.failed),
            ),
        )
        if cfg.recovery:
            # liveness monitoring of the computing members starts with
            # the reservation: a member that goes silent mid-compute is
            # reported to the submitter for subtask re-dispatch
            now = self.sim.now
            duty.last_heard = {ref.name: now for ref in duty.reserved
                               if ref.name != self.name}
            self.set_timer(cfg.compute_ping_interval, "compute_monitor",
                           duty.task_id)
            if cfg.election:
                # seed the replicated duty state right away: even a
                # pre-dispatch coordinator crash must leave the
                # survivors a snapshot to elect from
                duty.version += 1
                self._broadcast_checkpoint(duty)

    # -- compute-liveness monitoring (churn recovery) ---------------------------
    def timer_compute_monitor(self, task_id) -> None:
        duty = self._duties.get(task_id)
        if duty is None or duty.batch_sent:
            return  # group done: let the monitor chain die
        cfg = self.overlay.config
        now = self.sim.now
        # partition-aware silence: with the reliability hardening on, a
        # member behind a healing partition answers once the retry
        # budget delivers — don't declare it dead before that window
        # has provably closed
        silence = cfg.compute_ping_timeout
        if cfg.reliability:
            silence += cfg.retry_horizon()
        done_ranks = {r.rank for r in duty.results}
        for ref in list(duty.reserved):
            if ref.name == self.name:
                continue
            rank = duty.rank_of.get(ref.name)
            if rank is not None and rank in done_ranks:
                continue  # result already in: nothing left to lose
            last = duty.last_heard.setdefault(ref.name, now)
            if now - last > silence and rank is not None:
                # silent past the timeout: its unfinished subtask goes
                # back to the submitter's pending pool.  A member whose
                # rank is not known yet (died between reservation and
                # dispatch) stays under watch — the subtask relay will
                # name its rank and the next sweep reports it.
                duty.reserved = [r for r in duty.reserved
                                 if r.name != ref.name]
                duty.last_heard.pop(ref.name, None)
                duty.version += 1
                self.overlay.stats.count("subtasks_lost")
                self.send_critical(duty.submitter, SubtaskLost(
                    self.ref, task_id=task_id, rank=rank, peer=ref,
                ))
            else:
                self.send(ref, ComputePing(self.ref, task_id=task_id))
        if cfg.election and duty.version != duty.checkpointed:
            # piggyback the duty replication on the monitor cadence
            self._broadcast_checkpoint(duty)
        self.set_timer(cfg.compute_ping_interval, "compute_monitor", task_id)

    def handle_ComputePing(self, msg: ComputePing) -> None:
        # pong only while actually computing this task — a peer that
        # crashed and rejoined must read as dead for its old subtask
        if self.current_task == msg.task_id:
            self.send(msg.sender, ComputePong(self.ref, task_id=msg.task_id))

    def handle_ComputePong(self, msg: ComputePong) -> None:
        duty = self._duties.get(msg.task_id)
        if duty is not None:
            duty.last_heard[msg.sender.name] = self.sim.now

    # -- coordinator recovery: stand-in election (config.election) ---------------
    def _broadcast_checkpoint(self, duty: GroupDuty) -> None:
        """Replicate the duty state to every group member, so any
        survivor can reconstruct it after a coordinator crash."""
        checkpoint = DutyCheckpoint(
            self.ref, task_id=duty.task_id, group_index=duty.group_index,
            submitter=duty.submitter, reserved=list(duty.reserved),
            rank_of=dict(duty.rank_of),
            expected_results=duty.expected_results,
            decided=dict(duty.decided), version=duty.version,
        )
        duty.checkpointed = duty.version
        for ref in duty.reserved:
            if ref.name != self.name:
                self.send_critical(ref, checkpoint)

    def handle_CoordPing(self, msg: CoordPing) -> None:
        # pong only while actually holding the duty — a coordinator
        # that crashed and rejoined must read as dead for its old group
        duty = self._duties.get(msg.task_id)
        if duty is not None:
            # the member's probe doubles as a member-liveness sample
            duty.last_heard[msg.sender.name] = self.sim.now
            self.send(msg.sender, CoordPong(self.ref, task_id=msg.task_id))

    def handle_CoordPong(self, msg: CoordPong) -> None:
        if self.current_task == msg.task_id:
            self._coord_heard[msg.task_id] = self.sim.now

    def handle_DutyCheckpoint(self, msg: DutyCheckpoint) -> None:
        current = self._checkpoints.get(msg.task_id)
        if current is None or msg.version >= current.version:
            self._checkpoints[msg.task_id] = msg
        if self.current_task == msg.task_id:
            # a checkpoint proves the coordinator alive
            self._coord_heard[msg.task_id] = self.sim.now

    def timer_coord_monitor(self, task_id) -> None:
        cfg = self.overlay.config
        if (not cfg.election or self.current_task != task_id
                or task_id in self._duties):
            # released, or promoted to (stand-in) coordinator
            self._coord_watch.discard(task_id)
            return
        coord = self.current_coordinator
        if coord is None or coord.name == self.name:
            self._coord_watch.discard(task_id)
            return
        now = self.sim.now
        heard = self._coord_heard.setdefault(task_id, now)
        silence = cfg.coord_ping_timeout
        if cfg.reliability:
            # same partition-aware margin as the compute monitor: a
            # coordinator sealed behind a healing partition is slow,
            # not dead — electing over it would fork the group
            silence += cfg.retry_horizon()
        if now - heard > silence:
            dead = self._dead_coords.setdefault(task_id, set())
            if coord.name not in dead:
                dead.add(coord.name)
                self.overlay.stats.count("coordinator_losses_detected")
                self._begin_claim(task_id, coord)
            # the chain stays alive: if the election stalls (no
            # checkpoint survived anywhere) the run times out and the
            # non-completion is reported honestly
        else:
            self.send(coord, CoordPing(self.ref, task_id=task_id))
        self.set_timer(cfg.coord_ping_interval, "coord_monitor", task_id)

    def _election_order(self, checkpoint: DutyCheckpoint,
                        dead: Set[str]) -> List[NodeRef]:
        """Deterministic stand-in candidate order: lowest rank alive
        first; under the failure-aware policy, candidates with the
        fewest observed crashes come first and rank breaks the tie.
        Every survivor computes the same list from the same checkpoint,
        so the k-th candidate's claim delay staggers cleanly."""
        candidates = [r for r in checkpoint.reserved if r.name not in dead]
        unranked = len(checkpoint.rank_of) + len(candidates) + 1

        def rank_key(ref: NodeRef) -> int:
            return checkpoint.rank_of.get(ref.name, unranked)

        if self.overlay.config.selection_policy == "failure_aware":
            history = self.overlay.failure_history
            return sorted(candidates, key=lambda r: (
                history.get(r.name, 0), rank_key(r), int(r.ip)))
        return sorted(candidates, key=lambda r: (rank_key(r), int(r.ip)))

    def _begin_claim(self, task_id: int, dead_coord: NodeRef) -> None:
        checkpoint = self._checkpoints.get(task_id)
        if checkpoint is None:
            return  # no replicated state here; another survivor may hold it
        order = self._election_order(checkpoint,
                                     self._dead_coords.get(task_id, set()))
        names = [r.name for r in order]
        if self.name not in names:
            return
        epoch = self._claim_epoch.get(task_id, 0) + 1
        self._claim_epoch[task_id] = epoch
        delay = names.index(self.name) * self.overlay.config.election_backoff
        self.set_timer(delay, "claim_standin", (task_id, epoch, dead_coord))

    def timer_claim_standin(self, payload) -> None:
        task_id, epoch, dead_coord = payload
        if (self._claim_epoch.get(task_id) != epoch
                or not self.overlay.config.election
                or self.current_task != task_id
                or task_id in self._duties):
            return
        coord = self.current_coordinator
        if (coord is not None
                and coord.name not in self._dead_coords.get(task_id, set())):
            return  # a hand-off landed while we were backing off
        self._claim_standin(task_id, dead_coord)

    def _claim_standin(self, task_id: int, dead_coord: NodeRef) -> None:
        """Become the group's stand-in coordinator: rebuild the duty
        from the replicated checkpoint, resume monitoring and
        re-dispatch, and announce the hand-off to the members, the
        submitter and the tracker."""
        checkpoint = self._checkpoints[task_id]
        cfg = self.overlay.config
        now = self.sim.now
        duty = GroupDuty(
            task_id=task_id, group_index=checkpoint.group_index,
            submitter=checkpoint.submitter,
            peers=list(checkpoint.reserved),
            # the dead coordinator stays reserved: its rank goes
            # through the normal silent-member loss path, *after*
            # re-sent results had a chance to mark it done
            reserved=list(checkpoint.reserved),
            expected_results=checkpoint.expected_results,
            rank_of=dict(checkpoint.rank_of),
            ranks=set(checkpoint.rank_of.values()),
            decided=dict(checkpoint.decided),
            reported_checks=set(checkpoint.decided),
        )
        duty.version = checkpoint.version + 1
        duty.last_heard = {r.name: now for r in duty.reserved
                           if r.name != self.name}
        self._duties[task_id] = duty
        self.current_coordinator = self.ref
        execution = self._executions.get(task_id)
        if execution is not None:
            # our own subtask now reports to us
            execution.assignment.coordinator = self.ref
        self.overlay.stats.count("coordinator_elections")
        self.overlay.stats.observe(
            "handoff_latency", now - self._coord_heard.get(task_id, now))
        handoff = CoordHandoff(self.ref, task_id=task_id,
                               group_index=checkpoint.group_index,
                               old=dead_coord, new=self.ref)
        for ref in duty.reserved:
            if ref.name not in (self.name, dead_coord.name):
                self.send_critical(ref, handoff)
        self.send_critical(duty.submitter, handoff)
        if self.tracker is not None:
            # re-register the duty with the zone: the stand-in stays
            # busy and the dead coordinator's record is dropped early
            self.send_critical(self.tracker, handoff)
        # dispatches that died in flight with the old coordinator: ask
        # the submitter to re-relay every group rank we have never seen
        self.send_critical(duty.submitter, DispatchGap(
            self.ref, task_id=task_id, group_index=checkpoint.group_index,
            known_ranks=tuple(sorted(duty.ranks)),
        ))
        # our own pending convergence report re-enters the rebuilt duty
        report = self._last_reports.get(task_id)
        if (report is not None
                and (task_id, report.check_index) in self._decisions):
            self.handle_ConvergenceReport(report)
        self.set_timer(cfg.compute_ping_interval, "compute_monitor", task_id)
        self._broadcast_checkpoint(duty)

    def handle_CoordHandoff(self, msg: CoordHandoff) -> None:
        new = msg.new
        dead = self._dead_coords.setdefault(msg.task_id, set())
        if msg.old is not None and not msg.demoted:
            # a demoted predecessor is alive (out-ranked, not crashed):
            # it stays a legitimate candidate for future elections
            dead.add(msg.old.name)
        dead.discard(new.name)
        # cancel any scheduled claim of our own: this hand-off won
        self._claim_epoch[msg.task_id] = (
            self._claim_epoch.get(msg.task_id, 0) + 1)
        # results we completed may have died unreported in the old
        # coordinator's duty state: re-send (the stand-in dedups by rank)
        for result in self.completed_subtasks:
            if result.task_id == msg.task_id and new.name != self.name:
                self.send_critical(new, result)
        duty = self._duties.get(msg.task_id)
        if duty is not None and new.name != self.name:
            # duelling claims (detection skew beat the backoff grid):
            # deterministic arbitration — the earlier candidate in the
            # election order keeps the duty
            checkpoint = self._checkpoints.get(msg.task_id)
            order = ([r.name for r in self._election_order(checkpoint, dead)]
                     if checkpoint is not None else [])
            if (self.name in order and new.name in order
                    and order.index(self.name) < order.index(new.name)):
                # we precede the other claimer: keep the duty, and
                # re-announce so members/submitter that processed the
                # losing hand-off last are routed back to us (the
                # loser is demoted, not dead — the tracker is skipped
                # so its zone record survives)
                reannounce = CoordHandoff(
                    self.ref, task_id=msg.task_id,
                    group_index=duty.group_index, old=new, new=self.ref,
                    demoted=True)
                for ref in duty.reserved:
                    if ref.name not in (self.name, new.name):
                        self.send_critical(ref, reannounce)
                self.send_critical(new, reannounce)
                self.send_critical(duty.submitter, reannounce)
                return
            del self._duties[msg.task_id]
            if (self.current_task == msg.task_id
                    and msg.task_id not in self._coord_watch):
                # demoted back to a plain member: resume watching the
                # coordinator that out-ranked us
                self._coord_watch.add(msg.task_id)
                self.set_timer(self.overlay.config.coord_ping_interval,
                               "coord_monitor", msg.task_id)
        if self.current_task != msg.task_id or new.name == self.name:
            return
        self.current_coordinator = new
        self._coord_heard[msg.task_id] = self.sim.now
        execution = self._executions.get(msg.task_id)
        if execution is not None:
            execution.assignment.coordinator = new
        # a convergence report the old coordinator swallowed: re-send
        # the stored message, so the stand-in's bucket for the blocked
        # check can fill (same object the claim path replays)
        report = self._last_reports.get(msg.task_id)
        if (report is not None
                and (msg.task_id, report.check_index) in self._decisions):
            self.send_critical(new, report)

    def handle_RankUpdate(self, msg: RankUpdate) -> None:
        duty = self._duties.get(msg.task_id)
        if duty is not None and msg.rank in duty.ranks:
            # coordinator of the group that owns this rank: the rank is
            # now computed by new_ref — swap it into the reserved set
            # and monitor it.  (A coordinator that receives this as a
            # mere halo neighbour of another group must not adopt the
            # replacement into its own duty.)
            duty.reserved = [
                r for r in duty.reserved
                if r.name != msg.new_ref.name
                and duty.rank_of.get(r.name) != msg.rank
            ]
            duty.reserved.append(msg.new_ref)
            duty.reserved.sort(key=lambda r: int(r.ip))
            duty.rank_of[msg.new_ref.name] = msg.rank
            duty.last_heard[msg.new_ref.name] = self.sim.now
            duty.version += 1
        execution = self._executions.get(msg.task_id)
        if execution is not None:
            # halo neighbour: swap the channel to the replacement
            execution.rewire(msg.rank, msg.new_ref)

    def handle_ReserveAck(self, msg: ReserveAck) -> None:
        sig = self._reserve_sigs.get((msg.task_id, msg.sender.name))
        if sig is not None and not sig.triggered:
            sig.succeed(msg.accepted)

    def handle_ReserveCancel(self, msg: ReserveCancel) -> None:
        # release only an *idle* reservation: a peer already computing
        # (or relaying as coordinator) this task keeps its state
        if (self.current_task == msg.task_id
                and msg.task_id not in self._executions
                and msg.task_id not in self._duties):
            self._release()

    def handle_ConvergenceReport(self, msg: ConvergenceReport) -> None:
        duty = self._duties.get(msg.task_id)
        if duty is None:
            return
        if msg.check_index in duty.decided:
            # a re-dispatched subtask catching up through an already-
            # decided check: replay the verdict so it keeps iterating
            self.send_critical(msg.sender, ConvergenceDecision(
                self.ref, task_id=msg.task_id, check_index=msg.check_index,
                stop=duty.decided[msg.check_index], final_dst=msg.sender,
            ))
            return
        bucket = duty.reports.setdefault(msg.check_index, {})
        bucket[msg.rank] = msg.residual
        if (len(bucket) == duty.expected_results
                and msg.check_index not in duty.reported_checks):
            duty.reported_checks.add(msg.check_index)
            self.send_critical(
                duty.submitter,
                GroupConvergence(
                    self.ref, task_id=msg.task_id,
                    group_index=duty.group_index,
                    check_index=msg.check_index,
                    residual=max(bucket.values()),
                ),
            )

    def handle_SubtaskResult(self, msg: SubtaskResult) -> None:
        duty = self._duties.get(msg.task_id)
        if duty is None:
            return
        if any(r.rank == msg.rank for r in duty.results):
            # conservation: a rank completes exactly once — a late
            # result racing its own loss report is dropped
            self.overlay.stats.count("duplicate_results")
            return
        duty.results.append(msg)
        if len(duty.results) >= duty.expected_results and not duty.batch_sent:
            duty.batch_sent = True
            self.send_critical(
                duty.submitter,
                ResultBatch(
                    self.ref, task_id=msg.task_id,
                    group_index=duty.group_index,
                    results=list(duty.results),
                ),
            )

    # -- failure / recovery ---------------------------------------------------------
    def crash(self) -> None:
        for proc in self._compute_procs:
            if proc.alive:
                proc.interrupt("peer crash")
        super().crash()

    def on_revive(self) -> None:
        """Churn rejoin: come back with fresh protocol state and
        re-register through the locally stored tracker list.

        Any subtask the peer held at crash time is gone (the
        coordinator's compute monitor reports it lost); the rejoined
        peer is free and immediately eligible for re-dispatch.
        """
        self.busy = False
        self.current_task = None
        self.current_coordinator = None
        self._duties.clear()
        self._executions.clear()
        self._compute_procs.clear()
        self._decisions.clear()
        self._reserve_sigs.clear()
        self._checkpoints.clear()
        self._coord_watch.clear()
        self._coord_heard.clear()
        self._dead_coords.clear()
        self._claim_epoch.clear()
        self._last_reports.clear()
        self.joined = False
        self.tracker = None
        self.rejoin_count += 1
        self._join_signal = Signal(f"{self.name}:rejoined")
        self._join_candidates = self._ranked_trackers()
        self._join_attempt = 0
        self._try_join()


def _all_or_timeout(sim, signals, timeout):
    """A signal that fires when all of ``signals`` fire or after
    ``timeout`` — whichever comes first."""
    from ..desim import AllOf

    done = Signal("all-or-timeout")
    AllOf(signals)._subscribe(
        lambda _s: done.succeed("all") if not done.triggered else None
    )
    sim.schedule(timeout, lambda: done.succeed("timeout")
                 if not done.triggered else None)
    return done
