"""``python -m repro.dperf`` entry point."""

import sys

from .cli import main

sys.exit(main())
