"""Mini-C interpreter with operation accounting.

This is the "execution of instrumented code" stage of dPerf (Fig. 6):
the program runs for real — arrays hold real numbers, messages carry
real data between ranks — while every operation is charged to the
innermost active instrumented block of the per-rank
:class:`~repro.dperf.papi.SkeletonRecorder`.

Multi-rank execution uses one Python thread per rank with blocking
queues for the P2PSAP data plane, so synchronous iterative codes (the
obstacle problem) execute with their true data dependences.
"""

from __future__ import annotations

import math
import queue
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .instrument import BlockTable
from .minic import cast as A
from .minic.semantics import BUILTINS, COMM_APIS
from .papi import Census, CommRecord, SkeletonRecorder


class InterpError(Exception):
    pass


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class CArray:
    """A mini-C array backed by a numpy array (views share storage)."""

    __slots__ = ("data", "is_float")

    def __init__(self, data: np.ndarray, is_float: bool) -> None:
        self.data = data
        self.is_float = is_float

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def view(self, index: int) -> "CArray":
        return CArray(self.data[index], self.is_float)


# --------------------------------------------------------------------------
# Communication runtimes
# --------------------------------------------------------------------------

class NullComm:
    """Single-process runtime: rank 0 of 1; point-to-point is an error."""

    rank = 0
    size = 1

    def data_send(self, dst: int, values: np.ndarray, tag: str) -> None:
        raise InterpError("p2psap send with no peers (NullComm)")

    def data_recv(self, src: int, count: int, tag: str) -> np.ndarray:
        raise InterpError("p2psap recv with no peers (NullComm)")

    def barrier(self) -> None:
        pass

    def allreduce_max(self, value: float) -> float:
        return value


class ThreadedComm:
    """One rank's endpoint of the threaded multi-rank runtime."""

    def __init__(self, rank: int, size: int, shared: "_SharedComm") -> None:
        self.rank = rank
        self.size = size
        self._shared = shared

    def data_send(self, dst: int, values: np.ndarray, tag: str) -> None:
        if not (0 <= dst < self.size):
            raise InterpError(f"send to invalid rank {dst}")
        self._shared.channel(self.rank, dst).put(np.array(values, copy=True))

    def data_recv(self, src: int, count: int, tag: str) -> np.ndarray:
        if not (0 <= src < self.size):
            raise InterpError(f"recv from invalid rank {src}")
        try:
            data = self._shared.channel(src, self.rank).get(
                timeout=self._shared.timeout
            )
        except queue.Empty:
            raise InterpError(
                f"rank {self.rank}: recv from {src} timed out — "
                "deadlock or peer failure"
            ) from None
        if len(data) != count:
            raise InterpError(
                f"rank {self.rank}: recv count {count} != sent {len(data)}"
            )
        return data

    def barrier(self) -> None:
        try:
            self._shared.barrier.wait(timeout=self._shared.timeout)
        except threading.BrokenBarrierError:
            raise InterpError("barrier broken (peer failed?)") from None

    def allreduce_max(self, value: float) -> float:
        shared = self._shared
        shared.reduce_slots[self.rank] = value
        self.barrier()
        result = max(shared.reduce_slots)
        self.barrier()  # keep slots stable until everyone has read
        return result


class _SharedComm:
    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self._channels: Dict[tuple, queue.Queue] = {}
        self._lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.reduce_slots: List[float] = [0.0] * size

    def channel(self, src: int, dst: int) -> queue.Queue:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            with self._lock:
                ch = self._channels.setdefault(key, queue.Queue())
        return ch


# --------------------------------------------------------------------------
# The interpreter
# --------------------------------------------------------------------------

_FLOAT_TYPES = ("float", "double")

_PRINTF_SPEC = re.compile(r"%[-+ #0-9.]*([dioufgGeEsxX%])")


class Interp:
    """Evaluates one rank's program with operation accounting."""

    def __init__(
        self,
        program: A.Program,
        recorder: Optional[SkeletonRecorder] = None,
        comm: Optional[Any] = None,
        block_table: Optional[BlockTable] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        self.program = program
        self.funcs = {f.name: f for f in program.funcs}
        self.recorder = recorder or SkeletonRecorder(0)
        self.comm = comm or NullComm()
        self.table = block_table
        self.output: List[str] = []
        self.max_steps = max_steps
        self._steps = 0
        self._ctrl_stack: List[int] = []  # innermost loop-control block ids
        self.globals: Dict[str, Any] = {}
        self.global_types: Dict[str, str] = {}
        # hot path: bind the recorder's charge directly (one hop less
        # per executed operation)
        self._charge = self.recorder.charge
        self._init_globals()

    # -- setup -------------------------------------------------------------
    def _init_globals(self) -> None:
        frame = _Frame(self.globals, self.global_types)
        for decl_stmt in self.program.globals:
            self._exec_decl(decl_stmt, frame)

    # -- public API -----------------------------------------------------------
    def call_function(self, name: str, args: Sequence[Any]) -> Any:
        func = self.funcs.get(name)
        if func is None:
            raise InterpError(f"no function {name!r}")
        if len(args) != len(func.params):
            raise InterpError(
                f"{name}() takes {len(func.params)} args, got {len(args)}"
            )
        frame = _Frame({}, {}, parent_values=self.globals,
                       parent_types=self.global_types)
        for param, arg in zip(func.params, args):
            if param.is_array:
                if isinstance(arg, np.ndarray):
                    arg = CArray(arg, param.type.name in _FLOAT_TYPES)
                if not isinstance(arg, CArray):
                    raise InterpError(
                        f"{name}(): parameter {param.name!r} expects an array"
                    )
                frame.values[param.name] = arg
                frame.types[param.name] = param.type.name
            else:
                frame.values[param.name] = self._coerce(arg, param.type.name)
                frame.types[param.name] = param.type.name
        try:
            self._exec_block(func.body, frame)
        except _ReturnSignal as ret:
            if func.return_type.is_void:
                return None
            return self._coerce(ret.value, func.return_type.name)
        return None

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _coerce(value: Any, type_name: str) -> Any:
        if value is None:
            return None
        if type_name in _FLOAT_TYPES:
            return float(value)
        return int(value)  # truncation toward zero, as in C

    def _step(self) -> None:
        self._steps += 1
        if self.max_steps is not None and self._steps > self.max_steps:
            raise InterpError(f"step limit {self.max_steps} exceeded")

    # -- statements ------------------------------------------------------------
    def _exec_block(self, block: A.Block, frame: "_Frame") -> None:
        inner = frame.child()
        for stmt in block.stmts:
            self._exec_stmt(stmt, inner)

    def _exec_stmt(self, stmt: A.Stmt, frame: "_Frame") -> None:
        self._step()
        if isinstance(stmt, A.ExprStmt):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, A.DeclStmt):
            self._exec_decl(stmt, frame)
        elif isinstance(stmt, A.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, A.If):
            self._charge("branch")
            if self._truthy(self._eval_attr_ctrl(stmt.cond, frame)):
                self._exec_stmt(stmt.then, frame.child())
            elif stmt.other is not None:
                self._exec_stmt(stmt.other, frame.child())
        elif isinstance(stmt, A.While):
            self._exec_while(stmt, frame)
        elif isinstance(stmt, A.For):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, A.Return):
            value = None if stmt.value is None else self._eval(stmt.value, frame)
            raise _ReturnSignal(value)
        elif isinstance(stmt, A.Break):
            raise _BreakSignal()
        elif isinstance(stmt, A.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, A.Empty):
            pass
        else:  # pragma: no cover - defensive
            raise InterpError(f"unsupported statement {type(stmt).__name__}")

    def _exec_decl(self, stmt: A.DeclStmt, frame: "_Frame") -> None:
        for d in stmt.decls:
            if d.is_array:
                dims = []
                for dim_expr in d.dims:
                    dim = int(self._eval(dim_expr, frame))
                    if dim <= 0:
                        raise InterpError(
                            f"line {d.line}: array {d.name!r} dimension {dim} <= 0"
                        )
                    dims.append(dim)
                is_float = d.type.name in _FLOAT_TYPES
                dtype = np.float64 if is_float else np.int64
                frame.declare(d.name, CArray(np.zeros(dims, dtype), is_float),
                              d.type.name)
                if d.init is not None:
                    raise InterpError(
                        f"line {d.line}: array initializers are not supported"
                    )
            else:
                value = 0
                if d.init is not None:
                    value = self._eval(d.init, frame)
                frame.declare(d.name, self._coerce(value, d.type.name),
                              d.type.name)
                self._charge("scalar_store")

    def _exec_while(self, stmt: A.While, frame: "_Frame") -> None:
        ctrl = self.table.control_block_for(stmt) if self.table else None
        while True:
            self._step()
            self._charge_ctrl(ctrl, "branch")
            cond = self._eval_with_ctrl(stmt.cond, frame, ctrl)
            if not self._truthy(cond):
                break
            try:
                self._run_loop_body(stmt.body, frame, ctrl)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_for(self, stmt: A.For, frame: "_Frame") -> None:
        ctrl = self.table.control_block_for(stmt) if self.table else None
        loop_frame = frame.child()
        if stmt.init is not None:
            if ctrl is not None:
                self.recorder.attr_push(ctrl)
                try:
                    self._exec_stmt(stmt.init, loop_frame)
                finally:
                    self.recorder.attr_pop()
            else:
                self._exec_stmt(stmt.init, loop_frame)
        while True:
            self._step()
            self._charge_ctrl(ctrl, "branch")
            if stmt.cond is not None:
                cond = self._eval_with_ctrl(stmt.cond, loop_frame, ctrl)
                if not self._truthy(cond):
                    break
            try:
                self._run_loop_body(stmt.body, loop_frame, ctrl)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval_with_ctrl(stmt.step, loop_frame, ctrl)

    def _run_loop_body(self, body: A.Stmt, frame: "_Frame", ctrl) -> None:
        if ctrl is not None:
            self._ctrl_stack.append(ctrl)
            try:
                self._exec_stmt(body, frame.child())
            finally:
                self._ctrl_stack.pop()
        else:
            self._exec_stmt(body, frame.child())

    def _charge_ctrl(self, ctrl: Optional[int], category: str) -> None:
        if ctrl is not None:
            self.recorder.attr_push(ctrl)
            try:
                self._charge(category)
            finally:
                self.recorder.attr_pop()
        else:
            self._charge(category)

    def _eval_with_ctrl(self, expr: A.Expr, frame: "_Frame", ctrl) -> Any:
        if ctrl is not None:
            self.recorder.attr_push(ctrl)
            try:
                return self._eval(expr, frame)
            finally:
                self.recorder.attr_pop()
        return self._eval(expr, frame)

    def _eval_attr_ctrl(self, expr: A.Expr, frame: "_Frame") -> Any:
        """Evaluate an If condition, attributed to the innermost loop's
        control block when inside a loop."""
        ctrl = self._ctrl_stack[-1] if self._ctrl_stack else None
        return self._eval_with_ctrl(expr, frame, ctrl)

    # -- expressions -------------------------------------------------------------
    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)

    def _eval(self, expr: A.Expr, frame: "_Frame") -> Any:
        kind = type(expr)
        if kind is A.IntLit:
            return expr.value
        if kind is A.FloatLit:
            return expr.value
        if kind is A.Ident:
            value = frame.lookup(expr.name, expr.line)
            if not isinstance(value, CArray):
                self._charge("scalar_load")
            return value
        if kind is A.Index:
            return self._eval_index_read(expr, frame)
        if kind is A.BinOp:
            return self._eval_binop(expr, frame)
        if kind is A.Assign:
            return self._eval_assign(expr, frame)
        if kind is A.Call:
            return self._eval_call(expr, frame)
        if kind is A.UnOp:
            return self._eval_unop(expr, frame)
        if kind is A.Cast:
            self._charge("int_op")
            return self._coerce(self._eval(expr.expr, frame), expr.type.name)
        if kind is A.Cond:
            self._charge("branch")
            if self._truthy(self._eval(expr.cond, frame)):
                return self._eval(expr.then, frame)
            return self._eval(expr.other, frame)
        if kind is A.StringLit:
            return expr.value
        raise InterpError(f"unsupported expression {type(expr).__name__}")

    def _resolve_element(self, expr: A.Index, frame: "_Frame"):
        array = frame.lookup(expr.base.name, expr.line)
        if not isinstance(array, CArray):
            raise InterpError(
                f"line {expr.line}: {expr.base.name!r} is not an array"
            )
        idx = []
        for index_expr in expr.indices:
            self._charge("addr")
            idx.append(int(self._eval(index_expr, frame)))
        data = array.data
        if len(idx) > data.ndim:
            raise InterpError(
                f"line {expr.line}: {expr.base.name!r} has {data.ndim} dims,"
                f" indexed with {len(idx)}"
            )
        for axis, i in enumerate(idx):
            if not (0 <= i < data.shape[axis]):
                raise InterpError(
                    f"line {expr.line}: index {i} out of bounds for axis"
                    f" {axis} of {expr.base.name!r} (size {data.shape[axis]})"
                )
        return array, tuple(idx)

    def _eval_index_read(self, expr: A.Index, frame: "_Frame") -> Any:
        array, idx = self._resolve_element(expr, frame)
        if len(idx) < array.data.ndim:
            # Partial indexing yields a row view (C array decay).
            return CArray(array.data[idx], array.is_float)
        self._charge("mem_load")
        value = array.data[idx]
        return float(value) if array.is_float else int(value)

    def _eval_binop(self, expr: A.BinOp, frame: "_Frame") -> Any:
        op = expr.op
        if op == "&&":
            self._charge("branch")
            left = self._eval(expr.left, frame)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        if op == "||":
            self._charge("branch")
            left = self._eval(expr.left, frame)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval(expr.right, frame)) else 0
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        both_int = isinstance(left, int) and isinstance(right, int)
        if op == "+":
            self._charge("int_op" if both_int else "fp_add")
            return left + right
        if op == "-":
            self._charge("int_op" if both_int else "fp_add")
            return left - right
        if op == "*":
            self._charge("int_op" if both_int else "fp_mul")
            return left * right
        if op == "/":
            self._charge("int_op" if both_int else "fp_div")
            if both_int:
                if right == 0:
                    raise InterpError(f"line {expr.line}: integer division by zero")
                return -(-left // right) if (left < 0) != (right < 0) else left // right
            if right == 0.0:
                return math.inf if left > 0 else (-math.inf if left < 0 else math.nan)
            return left / right
        if op == "%":
            self._charge("int_op")
            if not both_int:
                raise InterpError(f"line {expr.line}: %% requires integers")
            if right == 0:
                raise InterpError(f"line {expr.line}: modulo by zero")
            return int(math.fmod(left, right))
        if op in ("<", "<=", ">", ">=", "==", "!="):
            self._charge("int_op")
            result = {
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right,
                "==": left == right, "!=": left != right,
            }[op]
            return 1 if result else 0
        if op in ("&", "|", "^", "<<", ">>"):
            self._charge("int_op")
            l, r = int(left), int(right)
            return {
                "&": l & r, "|": l | r, "^": l ^ r,
                "<<": l << r, ">>": l >> r,
            }[op]
        raise InterpError(f"unsupported operator {op!r}")

    def _eval_unop(self, expr: A.UnOp, frame: "_Frame") -> Any:
        op = expr.op
        if op in ("++", "--"):
            delta = 1 if op == "++" else -1
            target = expr.operand
            old = self._read_lvalue(target, frame)
            self._charge("int_op" if isinstance(old, int) else "fp_add")
            new = old + delta
            self._write_lvalue(target, new, frame)
            return old if expr.postfix else new
        value = self._eval(expr.operand, frame)
        if op == "-":
            self._charge("int_op" if isinstance(value, int) else "fp_add")
            return -value
        if op == "!":
            self._charge("int_op")
            return 0 if self._truthy(value) else 1
        if op == "~":
            self._charge("int_op")
            return ~int(value)
        raise InterpError(f"unsupported unary {op!r}")

    def _read_lvalue(self, target: A.Expr, frame: "_Frame") -> Any:
        if isinstance(target, A.Ident):
            self._charge("scalar_load")
            value = frame.lookup(target.name, target.line)
            if isinstance(value, CArray):
                raise InterpError(
                    f"line {target.line}: cannot use array {target.name!r}"
                    " as a scalar"
                )
            return value
        if isinstance(target, A.Index):
            return self._eval_index_read(target, frame)
        raise InterpError(f"line {target.line}: invalid lvalue")

    def _write_lvalue(self, target: A.Expr, value: Any, frame: "_Frame") -> None:
        if isinstance(target, A.Ident):
            self._charge("scalar_store")
            frame.assign(target.name, value, target.line, self._coerce)
            return
        if isinstance(target, A.Index):
            array, idx = self._resolve_element(target, frame)
            if len(idx) != array.data.ndim:
                raise InterpError(
                    f"line {target.line}: cannot assign to a whole row"
                )
            self._charge("mem_store")
            array.data[idx] = value
            return
        raise InterpError(f"line {target.line}: invalid assignment target")

    def _eval_assign(self, expr: A.Assign, frame: "_Frame") -> Any:
        value = self._eval(expr.value, frame)
        if expr.op != "=":
            old = self._read_lvalue(expr.target, frame)
            binop = expr.op[0]
            both_int = isinstance(old, int) and isinstance(value, int)
            if binop == "+":
                self._charge("int_op" if both_int else "fp_add")
                value = old + value
            elif binop == "-":
                self._charge("int_op" if both_int else "fp_add")
                value = old - value
            elif binop == "*":
                self._charge("int_op" if both_int else "fp_mul")
                value = old * value
            elif binop == "/":
                self._charge("int_op" if both_int else "fp_div")
                if both_int:
                    if value == 0:
                        raise InterpError(f"line {expr.line}: division by zero")
                    q = old / value
                    value = int(q) if q >= 0 else -int(-q)
                else:
                    value = old / value
            elif binop == "%":
                self._charge("int_op")
                value = int(math.fmod(old, value))
        self._write_lvalue(expr.target, value, frame)
        return value

    # -- calls -------------------------------------------------------------------
    def _eval_call(self, expr: A.Call, frame: "_Frame") -> Any:
        name = expr.name
        if name in self.funcs:
            self._charge("call")
            args = [self._eval(a, frame) for a in expr.args]
            return self.call_function(name, args)
        if name in BUILTINS:
            return self._eval_builtin(expr, frame)
        if name in COMM_APIS:
            return self._eval_comm(expr, frame)
        if name == "papi_block_begin":
            self.recorder.block_begin(int(self._const_arg(expr, 0)))
            return 0
        if name == "papi_block_end":
            self.recorder.block_end(int(self._const_arg(expr, 0)))
            return 0
        if name == "dperf_region_begin":
            self.recorder.region(self._string_arg(expr, 0), "begin")
            return 0
        if name == "dperf_region_end":
            self.recorder.region(self._string_arg(expr, 0), "end")
            return 0
        raise InterpError(f"line {expr.line}: unknown function {name!r}")

    def _const_arg(self, expr: A.Call, i: int) -> int:
        arg = expr.args[i]
        if not isinstance(arg, A.IntLit):
            raise InterpError(f"line {expr.line}: {expr.name} needs int literal")
        return arg.value

    def _string_arg(self, expr: A.Call, i: int) -> str:
        arg = expr.args[i]
        if not isinstance(arg, A.StringLit):
            raise InterpError(f"line {expr.line}: {expr.name} needs a string")
        return arg.value

    def _eval_builtin(self, expr: A.Call, frame: "_Frame") -> Any:
        name = expr.name
        if name == "printf":
            fmt = self._eval(expr.args[0], frame)
            args = [self._eval(a, frame) for a in expr.args[1:]]
            self._charge("builtin:printf")
            self.output.append(_printf(fmt, args))
            return 0
        args = [self._eval(a, frame) for a in expr.args]
        self._charge(f"builtin:{name}")
        try:
            if name == "fabs":
                return abs(float(args[0]))
            if name == "sqrt":
                return math.sqrt(args[0])
            if name == "exp":
                return math.exp(args[0])
            if name == "log":
                return math.log(args[0])
            if name == "pow":
                return math.pow(args[0], args[1])
            if name == "fmax":
                return max(float(args[0]), float(args[1]))
            if name == "fmin":
                return min(float(args[0]), float(args[1]))
            if name == "floor":
                return math.floor(args[0])
            if name == "ceil":
                return math.ceil(args[0])
            if name == "abs":
                return abs(int(args[0]))
        except ValueError as err:
            raise InterpError(f"line {expr.line}: {name}: {err}") from None
        raise InterpError(f"builtin {name!r} not implemented")  # pragma: no cover

    def _eval_comm(self, expr: A.Call, frame: "_Frame") -> Any:
        name = expr.name
        low = name.lower()
        if low in ("p2psap_init", "p2psap_finalize"):
            return 0
        if low == "p2psap_rank":
            return self.comm.rank
        if low == "p2psap_size":
            return self.comm.size
        if low in ("p2psap_barrier", "mpi_barrier"):
            self.recorder.comm(CommRecord(api=name, kind="barrier"))
            self.comm.barrier()
            return 0
        if low in ("p2psap_allreduce_max", "mpi_allreduce_max"):
            value = float(self._eval(expr.args[0], frame))
            self.recorder.comm(
                CommRecord(api=name, kind="allreduce", count=1, elem_bytes=8)
            )
            return self.comm.allreduce_max(value)
        if low in ("p2psap_send", "p2psap_isend", "mpi_send", "mpi_isend"):
            dst = int(self._eval(expr.args[0], frame))
            buf = self._array_arg(expr, 1, frame)
            count = int(self._eval(expr.args[2], frame))
            self._check_count(expr, buf, count)
            kind = "isend" if "isend" in low else "send"
            self.recorder.comm(
                CommRecord(
                    api=name, kind=kind, peer=dst, count=count,
                    count_expr=expr.args[2], elem_bytes=8,
                )
            )
            self.comm.data_send(dst, buf.data[:count], tag="m")
            return 0
        if low in ("p2psap_recv", "mpi_recv"):
            src = int(self._eval(expr.args[0], frame))
            buf = self._array_arg(expr, 1, frame)
            count = int(self._eval(expr.args[2], frame))
            self._check_count(expr, buf, count)
            self.recorder.comm(
                CommRecord(
                    api=name, kind="recv", peer=src, count=count,
                    count_expr=expr.args[2], elem_bytes=8,
                )
            )
            data = self.comm.data_recv(src, count, tag="m")
            buf.data[:count] = data
            return 0
        raise InterpError(f"line {expr.line}: comm API {name!r} not handled")

    def _array_arg(self, expr: A.Call, i: int, frame: "_Frame") -> CArray:
        value = self._eval(expr.args[i], frame)
        if not isinstance(value, CArray):
            raise InterpError(
                f"line {expr.line}: {expr.name} argument {i} must be an array"
            )
        if value.data.ndim != 1:
            raise InterpError(
                f"line {expr.line}: {expr.name} needs a 1-D buffer "
                "(pass a row, e.g. u[i])"
            )
        return value

    @staticmethod
    def _check_count(expr: A.Call, buf: CArray, count: int) -> None:
        if count < 0 or count > len(buf.data):
            raise InterpError(
                f"line {expr.line}: count {count} out of range for buffer"
                f" of {len(buf.data)}"
            )


class _Frame:
    """Lexical scope chain for one function activation."""

    __slots__ = ("values", "types", "parent_values", "parent_types", "_parent")

    def __init__(self, values, types, parent_values=None, parent_types=None,
                 parent: "Optional[_Frame]" = None):
        self.values: Dict[str, Any] = values
        self.types: Dict[str, str] = types
        self.parent_values = parent_values
        self.parent_types = parent_types
        self._parent = parent

    def child(self) -> "_Frame":
        return _Frame({}, {}, self.parent_values, self.parent_types, parent=self)

    def declare(self, name: str, value: Any, type_name: str) -> None:
        self.values[name] = value
        self.types[name] = type_name

    def _find(self, name: str) -> Optional["_Frame"]:
        frame: Optional[_Frame] = self
        while frame is not None:
            if name in frame.values:
                return frame
            frame = frame._parent
        return None

    def lookup(self, name: str, line: int) -> Any:
        frame = self._find(name)
        if frame is not None:
            return frame.values[name]
        if self.parent_values is not None and name in self.parent_values:
            return self.parent_values[name]
        raise InterpError(f"line {line}: undefined variable {name!r}")

    def assign(self, name: str, value: Any, line: int, coerce) -> None:
        frame = self._find(name)
        if frame is not None:
            frame.values[name] = coerce(value, frame.types[name])
            return
        if self.parent_values is not None and name in self.parent_values:
            self.parent_values[name] = coerce(
                value, self.parent_types.get(name, "double")
            )
            return
        raise InterpError(f"line {line}: assignment to undefined {name!r}")


def _printf(fmt: str, args: List[Any]) -> str:
    """Minimal C printf semantics for trace/debug output."""
    out = []
    arg_iter = iter(args)

    def repl(match: re.Match) -> str:
        spec = match.group(0)
        conv = match.group(1)
        if conv == "%":
            return "%"
        try:
            value = next(arg_iter)
        except StopIteration:
            raise InterpError("printf: not enough arguments") from None
        if conv in "dix":
            return (spec[:-1] + conv.replace("i", "d")) % int(value)
        if conv in "ufgGeE":
            pyspec = spec[:-1] + conv.replace("u", "d")
            return pyspec % (int(value) if conv == "u" else float(value))
        if conv == "s":
            return spec % str(value)
        return spec  # pragma: no cover

    return _PRINTF_SPEC.sub(repl, fmt)


# --------------------------------------------------------------------------
# Multi-rank execution
# --------------------------------------------------------------------------

@dataclass
class RankRun:
    """Result of one rank's instrumented execution."""

    rank: int
    entries: list
    value: Any
    output: List[str]
    census: Census
    block_exec_counts: Dict[int, int] = field(default_factory=dict)


def run_single(
    program: A.Program,
    entry: str,
    args: Sequence[Any] = (),
    block_table: Optional[BlockTable] = None,
    max_steps: Optional[int] = None,
) -> RankRun:
    """Run a program single-rank (rank 0 of 1)."""
    recorder = SkeletonRecorder(0)
    interp = Interp(program, recorder, NullComm(), block_table, max_steps)
    value = interp.call_function(entry, list(args))
    entries = recorder.finish()
    return RankRun(0, entries, value, interp.output,
                   recorder.total_census(), recorder.block_exec_counts)


def run_distributed(
    program: A.Program,
    entry: str,
    nprocs: int,
    args: Sequence[Any] | Callable[[int], Sequence[Any]] = (),
    block_table: Optional[BlockTable] = None,
    max_steps: Optional[int] = None,
    timeout: float = 300.0,
) -> List[RankRun]:
    """Execute ``nprocs`` ranks (one thread each) with real messaging.

    ``args`` is either a fixed argument list or ``rank -> args``.
    Raises the first rank's error if any rank fails.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    shared = _SharedComm(nprocs, timeout)
    results: List[Optional[RankRun]] = [None] * nprocs
    errors: List[Optional[BaseException]] = [None] * nprocs

    def worker(rank: int) -> None:
        recorder = SkeletonRecorder(rank)
        comm = ThreadedComm(rank, nprocs, shared)
        interp = Interp(program, recorder, comm, block_table, max_steps)
        rank_args = args(rank) if callable(args) else list(args)
        try:
            value = interp.call_function(entry, rank_args)
            entries = recorder.finish()
            results[rank] = RankRun(
                rank, entries, value, interp.output,
                recorder.total_census(), recorder.block_exec_counts,
            )
        except BaseException as err:  # noqa: BLE001 - funneled to caller
            errors[rank] = err
            shared.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"minic-rank{r}")
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 30.0)
        if t.is_alive():
            raise InterpError("distributed run did not terminate (deadlock?)")
    for rank, err in enumerate(errors):
        if err is not None:
            raise InterpError(f"rank {rank} failed: {err}") from err
    return [r for r in results if r is not None]
