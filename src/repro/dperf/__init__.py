"""dPerf: the performance-prediction environment (paper §III-D).

Pipeline stages (Fig. 6 of the paper):

1. static analysis of C sources (``repro.dperf.minic``);
2. automatic instrumentation (``repro.dperf.instrument``);
3. execution of the instrumented code with virtual hardware counters
   (``repro.dperf.interp`` + ``repro.dperf.papi``);
4. block benchmarking and scale-up (``repro.dperf.blockbench``) priced
   per GCC optimization level (``repro.dperf.gcc`` +
   ``repro.dperf.costmodel``);
5. trace-based network simulation (``repro.simx``) orchestrated by
   :class:`~repro.dperf.predictor.DPerfPredictor`.
"""

from .blockbench import (
    ScaleError,
    ScalePlan,
    block_scale_factor,
    eval_affine,
    materialize,
    scale_entries,
    scale_skeleton,
    split_by_region,
    tile_iterations,
)
from .costmodel import REFERENCE_MACHINE, MachineModel
from .gcc import OPT_LEVELS, GccModel, UnknownOptLevel, parse_level
from .instrument import (
    BlockInfo,
    BlockTable,
    instrument,
    instrumentation_overhead_ns,
    instrumentation_slowdown,
)
from .interp import (
    CArray,
    Interp,
    InterpError,
    NullComm,
    RankRun,
    run_distributed,
    run_single,
)
from .papi import (
    CATEGORIES,
    UNATTRIBUTED,
    Census,
    CommRecord,
    ComputeGap,
    RegionMark,
    SkeletonRecorder,
)
from .predictor import DPerfPredictor, PredictionResult, predict_many_levels

__all__ = [
    "BlockInfo",
    "BlockTable",
    "CATEGORIES",
    "CArray",
    "Census",
    "CommRecord",
    "ComputeGap",
    "DPerfPredictor",
    "GccModel",
    "Interp",
    "InterpError",
    "MachineModel",
    "NullComm",
    "OPT_LEVELS",
    "PredictionResult",
    "REFERENCE_MACHINE",
    "RankRun",
    "RegionMark",
    "ScaleError",
    "ScalePlan",
    "SkeletonRecorder",
    "UNATTRIBUTED",
    "UnknownOptLevel",
    "block_scale_factor",
    "eval_affine",
    "instrument",
    "instrumentation_overhead_ns",
    "instrumentation_slowdown",
    "materialize",
    "parse_level",
    "predict_many_levels",
    "run_distributed",
    "run_single",
    "scale_entries",
    "scale_skeleton",
    "split_by_region",
    "tile_iterations",
]
