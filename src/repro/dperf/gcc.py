"""Empirical model of GCC optimization levels 0/1/2/3/s.

dPerf compiles the instrumented source at each level and measures the
resulting block times (paper §III-D2: "Build the transformed code
using several compiler optimization levels").  Without a real
compiler, we model each level as per-category multipliers over the O0
cost table:

* **O0** — baseline: every named scalar lives in memory, no CSE.
* **O1** — register allocation kills most scalar traffic; basic
  branch/loop cleanup.
* **O2** — adds CSE, strength reduction of address arithmetic, better
  scheduling.
* **O3** — adds vectorization: on *vectorizable* blocks (innermost
  loop bodies with array traffic and no user calls), float and memory
  ops are amortized across SIMD lanes.
* **Os** — optimize for size: O2-like scalar handling, no
  vectorization, slightly worse loop overhead than O2.

The resulting whole-kernel ratios for a stencil mix land near the
classic O0 : O1 : O2 : O3 : Os ≈ 1 : 0.42 : 0.37 : 0.30 : 0.40 —
the shape of the paper's Fig. 9 family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

OPT_LEVELS = ("O0", "O1", "O2", "O3", "Os")

#: Per-category multipliers by level (missing category → "default").
_BASE_FACTORS: Dict[str, Dict[str, float]] = {
    "O0": {"default": 1.0},
    "O1": {
        "default": 1.0,
        "scalar_load": 0.10, "scalar_store": 0.10,   # register allocation
        "addr": 0.40, "int_op": 0.70, "branch": 0.70,  # strength reduction
        "mem_load": 0.90, "mem_store": 0.90,
        "call": 0.80,
        "fp_add": 0.95, "fp_mul": 0.95, "fp_div": 1.0,
    },
    "O2": {
        "default": 1.0,
        "scalar_load": 0.08, "scalar_store": 0.08,
        "addr": 0.35, "int_op": 0.50, "branch": 0.50,  # CSE + strength red.
        "mem_load": 0.85, "mem_store": 0.85,
        "call": 0.60,
        "fp_add": 0.90, "fp_mul": 0.90, "fp_div": 0.95,
    },
    "O3": {
        "default": 1.0,
        "scalar_load": 0.08, "scalar_store": 0.08,
        "addr": 0.30, "int_op": 0.45, "branch": 0.45,
        "mem_load": 0.80, "mem_store": 0.80,
        "call": 0.60,
        "fp_add": 0.85, "fp_mul": 0.85, "fp_div": 0.95,
    },
    "Os": {
        "default": 1.0,
        "scalar_load": 0.10, "scalar_store": 0.10,
        "addr": 0.45, "int_op": 0.60, "branch": 0.60,
        "mem_load": 0.90, "mem_store": 0.90,
        "call": 0.70,
        "fp_add": 0.92, "fp_mul": 0.92, "fp_div": 1.0,
    },
}

#: Extra multiplier applied at O3 to fp/mem categories of blocks the
#: static analysis marked vectorizable.  SSE2 is 2 doubles/lane, but
#: era-typical GCC gets little of that on stencils with fmax/fabs in
#: the inner loop (the obstacle kernel), so the effective gain is mild
#: — consistent with the paper's tight O1/O2/O3 cluster in Fig. 9.
_VECTOR_FACTOR = 0.75

_VECTOR_CATEGORIES = ("fp_add", "fp_mul", "mem_load", "mem_store")


class UnknownOptLevel(ValueError):
    pass


@dataclass(frozen=True)
class GccModel:
    """Factor provider for one optimization level."""

    level: str = "O0"
    vector_factor: float = _VECTOR_FACTOR

    def __post_init__(self) -> None:
        if self.level not in OPT_LEVELS:
            raise UnknownOptLevel(
                f"unknown optimization level {self.level!r}; "
                f"expected one of {OPT_LEVELS}"
            )

    def factors(self, vectorizable: bool = False) -> Mapping[str, float]:
        base = _BASE_FACTORS[self.level]
        if self.level == "O3" and vectorizable:
            out = dict(base)
            for cat in _VECTOR_CATEGORIES:
                out[cat] = out.get(cat, 1.0) * self.vector_factor
            return out
        return base

    @property
    def vectorizes(self) -> bool:
        return self.level == "O3"


def parse_level(level: str | int) -> str:
    """Accept ``0``/``"0"``/``"O0"``/``"s"``/``"Os"`` spellings."""
    text = str(level)
    if not text.startswith("O"):
        text = "O" + text
    if text not in OPT_LEVELS:
        raise UnknownOptLevel(f"unknown optimization level {level!r}")
    return text
