"""Automatic instrumentation of the mini-C AST (paper §III-D2).

dPerf inserts PAPI timing calls around basic instruction blocks and
isolates communication calls so computation time excludes transfer
time.  This module performs the same transformation:

* maximal runs of *simple* statements become instrumented blocks,
  bracketed by ``papi_block_begin(id)`` / ``papi_block_end(id)``;
* statements containing communication calls (or region markers, or
  control transfers) terminate a run and stay outside any block;
* control statements recurse into their bodies; their condition/step
  expressions are attributed to a per-loop *control block* (tracked in
  the :class:`BlockTable`, since C syntax cannot host calls there).

Each block records its static context: loop depth, the chain of
enclosing *compute* loops (loops free of communication — this drives
the block-benchmark scale-up), and a vectorizable flag used by the
GCC O3 model.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .minic import cast as A
from .minic.semantics import BUILTINS, COMM_APIS, DPERF_APIS, PAPI_APIS
from .papi import UNATTRIBUTED

_RUN_BREAKERS = (A.Return, A.Break, A.Continue)
_SIMPLE = (A.DeclStmt, A.ExprStmt, A.Empty)


@dataclass
class BlockInfo:
    """Static facts about one instrumented block."""

    bid: int
    func: str
    line: int
    loop_depth: int
    vectorizable: bool
    label: str
    # Enclosing loops that do not contain communication; the trip-count
    # ratio of these loops is the block's scale-up factor.
    enclosing_loops: List[A.For] = field(default_factory=list)
    is_loop_control: bool = False


class BlockTable:
    """Registry of instrumented blocks for one program."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BlockInfo] = {}
        # AST id of a loop node → its control block id.
        self.loop_control: Dict[int, int] = {}
        self._next = 0
        self.blocks[UNATTRIBUTED] = BlockInfo(
            UNATTRIBUTED, "<unattributed>", 0, 0, False, "unattributed"
        )

    def register(self, info_args: dict) -> BlockInfo:
        info = BlockInfo(bid=self._next, **info_args)
        self.blocks[self._next] = info
        self._next += 1
        return info

    def info(self, bid: int) -> BlockInfo:
        return self.blocks[bid]

    def control_block_for(self, loop_node: A.Node) -> Optional[int]:
        return self.loop_control.get(id(loop_node))

    @property
    def n_blocks(self) -> int:
        return self._next

    def __iter__(self):
        return iter(
            info for bid, info in sorted(self.blocks.items()) if bid >= 0
        )


def _contains_comm(node: A.Node) -> bool:
    for n in A.walk(node):
        if isinstance(n, A.Call) and (
            n.name in COMM_APIS or n.name in DPERF_APIS or n.name in PAPI_APIS
        ):
            return True
    return False


def _contains_user_call(node: A.Node, user_funcs: set) -> bool:
    for n in A.walk(node):
        if isinstance(n, A.Call) and (
            n.name in user_funcs
            or (n.name not in BUILTINS and n.name not in COMM_APIS
                and n.name not in DPERF_APIS and n.name not in PAPI_APIS)
        ):
            return True
    return False


def _contains_array_access(node: A.Node) -> bool:
    return any(isinstance(n, A.Index) for n in A.walk(node))


def _papi_call(name: str, bid: int, line: int) -> A.ExprStmt:
    call = A.Call(line, 0, name, [A.IntLit(line, 0, bid)])
    return A.ExprStmt(line, 0, call)


class Instrumenter:
    """AST instrumentation at a chosen granularity.

    ``granularity="block"`` (dPerf's block benchmarking) wraps maximal
    simple-statement runs; ``granularity="statement"`` wraps every
    simple statement individually — the finer-grained alternative the
    block technique improves on (more counter reads, same information
    after aggregation).
    """

    def __init__(self, program: A.Program, granularity: str = "block") -> None:
        if granularity not in ("block", "statement"):
            raise ValueError(f"unknown granularity {granularity!r}")
        # Work on a deep copy: the caller's AST stays pristine.
        self.program = copy.deepcopy(program)
        self.table = BlockTable()
        self.user_funcs = set(self.program.func_names)
        self.granularity = granularity

    def run(self) -> Tuple[A.Program, BlockTable]:
        for func in self.program.funcs:
            func.body = self._instrument_block(func.body, func.name, [], 0)
        return self.program, self.table

    # -- statement-run segmentation -----------------------------------------
    def _instrument_block(
        self,
        block: A.Block,
        func: str,
        loop_chain: List[A.For],
        depth: int,
    ) -> A.Block:
        new_stmts: List[A.Stmt] = []
        run: List[A.Stmt] = []

        def flush_run() -> None:
            if not run:
                return
            info = self.table.register(
                dict(
                    func=func,
                    line=run[0].line,
                    loop_depth=depth,
                    vectorizable=self._vectorizable(run, depth),
                    label=f"{func}:{run[0].line}",
                    enclosing_loops=[
                        l for l in loop_chain if not _contains_comm(l)
                    ],
                )
            )
            new_stmts.append(_papi_call("papi_block_begin", info.bid, run[0].line))
            new_stmts.extend(run)
            new_stmts.append(_papi_call("papi_block_end", info.bid, run[-1].line))
            run.clear()

        for stmt in block.stmts:
            if isinstance(stmt, _SIMPLE) and not _contains_comm(stmt):
                run.append(stmt)
                if self.granularity == "statement":
                    flush_run()  # one instrumented block per statement
                continue
            flush_run()
            new_stmts.append(self._instrument_stmt(stmt, func, loop_chain, depth))
        flush_run()
        return A.Block(block.line, block.col, new_stmts)

    def _instrument_stmt(
        self,
        stmt: A.Stmt,
        func: str,
        loop_chain: List[A.For],
        depth: int,
    ) -> A.Stmt:
        if isinstance(stmt, A.Block):
            return self._instrument_block(stmt, func, loop_chain, depth)
        if isinstance(stmt, A.If):
            stmt.then = self._as_block(stmt.then)
            stmt.then = self._instrument_block(stmt.then, func, loop_chain, depth)
            if stmt.other is not None:
                stmt.other = self._as_block(stmt.other)
                stmt.other = self._instrument_block(
                    stmt.other, func, loop_chain, depth
                )
            return stmt
        if isinstance(stmt, A.For):
            self._register_loop_control(stmt, func, loop_chain, depth)
            stmt.body = self._as_block(stmt.body)
            stmt.body = self._instrument_block(
                stmt.body, func, loop_chain + [stmt], depth + 1
            )
            return stmt
        if isinstance(stmt, A.While):
            self._register_loop_control(stmt, func, loop_chain, depth)
            stmt.body = self._as_block(stmt.body)
            # While loops are non-canonical for scale-up: keep the chain
            # (factor falls back to 1 for the While itself).
            stmt.body = self._instrument_block(
                stmt.body, func, loop_chain, depth + 1
            )
            return stmt
        # comm-bearing simple statements, returns, breaks, continues
        return stmt

    def _register_loop_control(
        self, loop: A.Stmt, func: str, loop_chain: List[A.For], depth: int
    ) -> None:
        chain = [l for l in loop_chain if not _contains_comm(l)]
        if isinstance(loop, A.For) and not _contains_comm(loop):
            chain = chain + [loop]  # the control ops run once per trip
        info = self.table.register(
            dict(
                func=func,
                line=loop.line,
                loop_depth=depth + 1,
                vectorizable=False,
                label=f"{func}:{loop.line}:loop-control",
                enclosing_loops=chain,
                is_loop_control=True,
            )
        )
        self.table.loop_control[id(loop)] = info.bid

    @staticmethod
    def _as_block(stmt: A.Stmt) -> A.Block:
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block(stmt.line, stmt.col, [stmt])

    def _vectorizable(self, run: List[A.Stmt], depth: int) -> bool:
        if depth == 0:
            return False
        has_array = any(_contains_array_access(s) for s in run)
        if not has_array:
            return False
        return not any(
            _contains_user_call(s, self.user_funcs) for s in run
        )


def instrument(
    program: A.Program, granularity: str = "block"
) -> Tuple[A.Program, BlockTable]:
    """Instrument a program; returns (new AST, block table)."""
    return Instrumenter(program, granularity).run()


#: Cost of one hardware-counter read through PAPI, in nanoseconds
#: (Zaparanuks et al. [27] measure O(100 ns) per accurate read).
PAPI_READ_NS = 150.0


def instrumentation_overhead_ns(
    block_exec_counts, papi_read_ns: float = PAPI_READ_NS
) -> float:
    """Modeled probe cost of one instrumented execution.

    Every block execution performs two counter reads (begin + end).
    The paper's block-benchmarking claim is that this overhead stays
    small because blocks aggregate many statements per read.
    """
    executions = sum(block_exec_counts.values())
    return 2.0 * papi_read_ns * executions


def instrumentation_slowdown(
    block_exec_counts, total_compute_ns: float,
    papi_read_ns: float = PAPI_READ_NS,
) -> float:
    """Probe overhead as a fraction of the uninstrumented runtime."""
    if total_compute_ns <= 0:
        raise ValueError("total_compute_ns must be positive")
    return instrumentation_overhead_ns(block_exec_counts, papi_read_ns) \
        / total_compute_ns
