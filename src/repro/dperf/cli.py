"""Command-line interface to dPerf.

Mirrors the real tool's workflow — analyze a C source, run the
instrumented code, emit trace files, and predict on a platform
description::

    python -m repro.dperf program.c --entry main --peers 4 \
        --platform lan --level O3 --args 512 100

    # inspect the instrumented source only
    python -m repro.dperf program.c --entry main --dump-instrumented

    # write traces + the platform description file
    python -m repro.dperf program.c --peers 4 --trace-dir out/ \
        --platform-file out/platform.xml
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..platforms import (
    build_cluster,
    build_daisy,
    build_lan,
    build_multisite,
    parse_platform_xml,
    write_platform_xml,
)
from ..simx import write_trace_files
from .gcc import OPT_LEVELS, parse_level
from .predictor import DPerfPredictor

_BUILDERS = {
    "cluster": lambda n: build_cluster(max(n, 1)),
    "grid5000": lambda n: build_cluster(max(n, 1)),
    "lan": lambda n: build_lan(max(n, 2)),
    "xdsl": lambda n: build_daisy(petals=2, routers_per_petal=3,
                                  dslams_per_router=2, nodes_per_dslam=3,
                                  extra_nodes=max(0, n - 36)),
    "multisite": lambda n: build_multisite(
        n_sites=4, peers_per_site=max(1, (n + 3) // 4)
    ),
}


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.dperf",
        description="dPerf: performance prediction for distributed C programs",
    )
    parser.add_argument("source", help="C or Fortran source file")
    parser.add_argument("--entry", default="main",
                        help="per-rank entry function (default: main)")
    parser.add_argument("--language", default=None, choices=("c", "fortran"),
                        help="source language (default: by file extension)")
    parser.add_argument("--peers", type=int, default=1,
                        help="number of ranks to execute/predict")
    parser.add_argument("--args", type=int, nargs="*", default=[],
                        help="integer arguments passed to the entry function")
    parser.add_argument("--level", default="O0",
                        help=f"GCC optimization level {OPT_LEVELS}")
    parser.add_argument("--platform", default="cluster",
                        choices=sorted(_BUILDERS),
                        help="built-in platform to predict on")
    parser.add_argument("--platform-xml", metavar="FILE",
                        help="predict on a platform description file instead")
    parser.add_argument("--trace-dir", metavar="DIR",
                        help="write per-rank trace files here")
    parser.add_argument("--platform-file", metavar="FILE",
                        help="write the platform description file here")
    parser.add_argument("--dump-instrumented", action="store_true",
                        help="print the instrumented source and exit")
    parser.add_argument("--app", default=None,
                        help="application name used in trace files")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    source_path = Path(args.source)
    try:
        source = source_path.read_text()
    except OSError as err:
        print(f"error: cannot read {args.source}: {err}", file=sys.stderr)
        return 2

    language = args.language
    if language is None:
        language = (
            "fortran"
            if source_path.suffix.lower() in (".f", ".f90", ".f95", ".for")
            else "c"
        )
    try:
        predictor = DPerfPredictor(source, entry=args.entry,
                                   language=language)
    except Exception as err:  # parse/semantic errors are user errors
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.dump_instrumented:
        print(predictor.instrumented_source)
        return 0

    level = parse_level(args.level)
    app = args.app or source_path.stem

    if args.platform_xml:
        platform = parse_platform_xml(Path(args.platform_xml).read_text())
    else:
        platform = _BUILDERS[args.platform](args.peers)
    if len(platform.hosts) < args.peers:
        print(f"error: platform has {len(platform.hosts)} hosts, "
              f"need {args.peers}", file=sys.stderr)
        return 2

    print(f"dPerf: executing {args.peers} rank(s) of "
          f"{source_path.name}:{args.entry}{tuple(args.args)} ...")
    runs = predictor.execute(args.peers, args=list(args.args))
    traces = predictor.traces_for(runs, level, app=app)

    if args.trace_dir:
        paths = write_trace_files(traces, args.trace_dir)
        print(f"wrote {len(paths)} trace file(s) to {args.trace_dir}/")
    if args.platform_file:
        Path(args.platform_file).write_text(write_platform_xml(platform))
        print(f"wrote platform description to {args.platform_file}")

    result = predictor.predict(traces, platform,
                               hosts=platform.take_hosts(args.peers))
    replay = result.replay
    print(f"platform          : {platform.name} ({len(platform.hosts)} hosts)")
    print(f"optimization level: {level}")
    print(f"t_predicted       : {result.t_predicted:.6f} s")
    print(f"  max compute     : {max(replay.compute_time):.6f} s")
    print(f"  max comm-blocked: {max(replay.blocked_time):.6f} s")
    print(f"  bytes on wire   : {replay.bytes_sent:.0f}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
