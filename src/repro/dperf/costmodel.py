"""Machine cost model: operation census → nanoseconds.

The table expresses *O0 (unoptimized) costs in cycles* on the
reference machine — the paper's Intel Xeon EM64T 3 GHz.  Unoptimized
code keeps every named variable in memory, so scalar traffic is the
dominant term; the GCC model (:mod:`repro.dperf.gcc`) then scales
categories downward per optimization level.

The constants are empirical, chosen so a projected-Richardson cell
update costs ≈150 cycles (≈50 ns) at O0 and ≈45 cycles (≈15 ns) at O3
— the typical 3–3.5× O0→O3 spread for 2-D stencil kernels of the era.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from .papi import CATEGORIES, Census

#: Cycles per operation at O0 on the reference machine.  O0 keeps every
#: named scalar on the stack, so each scalar touch is a store-forwarded
#: load/store pair — by far the dominant O0 term.
DEFAULT_CYCLE_COSTS: Dict[str, float] = {
    "scalar_load": 8.0,    # stack reload (store-forwarding stall)
    "scalar_store": 8.0,   # stack spill
    "mem_load": 6.0,       # array element: effective L1/L2 mix
    "mem_store": 6.0,
    "addr": 4.0,           # per-index address arithmetic, unfolded at O0
    "fp_add": 3.0,
    "fp_mul": 5.0,
    "fp_div": 22.0,
    "int_op": 2.0,
    "branch": 4.0,
    "call": 20.0,          # call/ret + frame setup
}

#: Cycles per builtin call (libm / libc, O0 call overhead included).
DEFAULT_BUILTIN_COSTS: Dict[str, float] = {
    "fabs": 4.0,
    "sqrt": 30.0,
    "exp": 70.0,
    "log": 70.0,
    "pow": 100.0,
    "fmax": 6.0,
    "fmin": 6.0,
    "floor": 8.0,
    "ceil": 8.0,
    "abs": 3.0,
    "printf": 1200.0,
}


@dataclass(frozen=True)
class MachineModel:
    """Reference machine: clock + per-category cycle costs."""

    clock_hz: float = 3.0e9  # Xeon EM64T 3 GHz (paper §IV-A3)
    cycle_costs: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CYCLE_COSTS)
    )
    builtin_costs: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BUILTIN_COSTS)
    )

    @property
    def ns_per_cycle(self) -> float:
        return 1e9 / self.clock_hz

    def cycles_for(self, category: str) -> float:
        if category.startswith("builtin:"):
            name = category.split(":", 1)[1]
            return self.builtin_costs.get(name, 50.0)
        cost = self.cycle_costs.get(category)
        if cost is None:
            raise KeyError(f"unknown op category {category!r}")
        return cost

    def census_ns(
        self, census: Census, factors: Mapping[str, float] | None = None
    ) -> float:
        """Nanoseconds for a census, with optional per-category factors
        (supplied by the GCC optimization model)."""
        total_cycles = 0.0
        for category, count in census.items():
            f = 1.0 if factors is None else factors.get(
                category, factors.get("default", 1.0)
            )
            total_cycles += count * self.cycles_for(category) * f
        return total_cycles * self.ns_per_cycle


#: The calibrated reference machine used throughout the experiments.
REFERENCE_MACHINE = MachineModel()


def validate_census_categories(census: Census) -> None:
    """Raise on categories the machine model cannot price."""
    for category in census:
        if category.startswith("builtin:"):
            continue
        if category not in CATEGORIES:
            raise KeyError(f"census contains unknown category {category!r}")
