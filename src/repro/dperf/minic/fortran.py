"""Fortran frontend: a second language lowering onto the same AST.

The paper (§II-B, §III-D): "the dPerf prediction environment evaluates
distributed applications written in C, C++, or Fortran".  This module
parses a free-form Fortran 90-ish subset — the dialect iterative
numerical codes of the era actually use — and lowers it onto the
mini-C AST, so instrumentation, interpretation, block benchmarking and
prediction all work unchanged.

Supported subset
----------------
* ``subroutine name(a, b)`` / ``function name(a, b) result(r)`` … ``end``
* declarations: ``integer``, ``real*8`` / ``double precision``, with
  ``::`` or classic form; array declarators ``u(n)``, ``m(n, k)``
* ``do v = lo, hi [, step]`` … ``end do``; ``exit`` / ``cycle``
* ``if (cond) then`` … ``else`` … ``end if``; one-line ``if (c) stmt``
* assignments, arithmetic (incl. ``**`` → ``pow``), comparisons in
  both ``.lt.`` and ``<`` spellings, ``.and./.or./.not.``
* ``call sub(args)`` — including the P2PSAP/MPI communication calls
* intrinsics: ``max``, ``min``, ``abs``, ``sqrt``, ``exp``, ``log``,
  ``mod``, ``dble``
* ``!`` comments and ``&`` continuation lines; case-insensitive

Fortran arrays are 1-based and indexed with parentheses; indexing is
lowered to 0-based element access by subtracting one — the extra
integer op per access is exactly what a naive compiler pays, so the
cost model sees it too.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import cast as A
from .lexer import Token
from .semantics import BUILTINS, COMM_APIS, DPERF_APIS

_INTRINSIC_MAP = {
    "max": "fmax",
    "min": "fmin",
    "abs": "fabs",
    "dabs": "fabs",
    "sqrt": "sqrt",
    "dsqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "dble": None,  # handled as a cast
}

_DOTOP_MAP = {
    ".lt.": "<", ".le.": "<=", ".gt.": ">", ".ge.": ">=",
    ".eq.": "==", ".ne.": "!=", ".and.": "&&", ".or.": "||",
}

_TYPE_MAP = {
    "integer": "int",
    "real": "double",        # promote: numerical codes want real*8 anyway
    "real*8": "double",
    "doubleprecision": "double",
}


class FortranError(SyntaxError):
    """Raised on source outside the supported subset."""


# --------------------------------------------------------------------------
# Line preparation
# --------------------------------------------------------------------------

def _logical_lines(source: str) -> List[Tuple[int, str]]:
    """Strip comments, join ``&`` continuations; returns (lineno, text)."""
    out: List[Tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if pending:
            line = pending + " " + line
            lineno = pending_line
            pending = ""
        if line.endswith("&"):
            pending = line[:-1].rstrip()
            pending_line = lineno
            continue
        out.append((lineno, line))
    if pending:
        out.append((pending_line, pending))
    return out


def _strip_comment(line: str) -> str:
    in_string = False
    for i, ch in enumerate(line):
        if ch == "'":
            in_string = not in_string
        elif ch == "!" and not in_string:
            return line[:i]
    return line


# --------------------------------------------------------------------------
# Expression parsing (recursive descent over a token list)
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'[^']*')"
    r"|(?P<dotop>\.[a-zA-Z]+\.)"
    r"|(?P<float>\d+\.\d*(?:[dDeE][+-]?\d+)?|\d+[dDeE][+-]?\d+|\.\d+(?:[dDeE][+-]?\d+)?)"
    r"|(?P<int>\d+)"
    r"|(?P<name>[a-zA-Z_][a-zA-Z_0-9]*)"
    r"|(?P<op>\*\*|==|/=|<=|>=|<|>|[-+*/(),=])"
    r")"
)


def _tokenize_expr(text: str, line: int) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise FortranError(f"line {line}: cannot tokenize {rest!r}")
        pos = match.end()
        if match.group("string"):
            tokens.append(("string", match.group("string")[1:-1]))
        elif match.group("dotop"):
            dotop = match.group("dotop").lower()
            if dotop == ".not.":
                tokens.append(("op", "!"))
            elif dotop in _DOTOP_MAP:
                tokens.append(("op", _DOTOP_MAP[dotop]))
            elif dotop in (".true.", ".false."):
                tokens.append(("int", "1" if dotop == ".true." else "0"))
            else:
                raise FortranError(f"line {line}: unknown operator {dotop}")
        elif match.group("float"):
            tokens.append(
                ("float", match.group("float").lower().replace("d", "e"))
            )
        elif match.group("int"):
            tokens.append(("int", match.group("int")))
        elif match.group("name"):
            tokens.append(("name", match.group("name").lower()))
        else:
            op = match.group("op")
            tokens.append(("op", "!=" if op == "/=" else op))
    return tokens


class _ExprParser:
    """Precedence-climbing parser over Fortran expression tokens."""

    _PREC = {
        "||": 1, "&&": 2,
        "==": 3, "!=": 3, "<": 4, "<=": 4, ">": 4, ">=": 4,
        "+": 5, "-": 5, "*": 6, "/": 6, "**": 7,
    }

    def __init__(self, tokens: List[Tuple[str, str]], line: int,
                 arrays: Dict[str, int]) -> None:
        self.tokens = tokens
        self.line = line
        self.pos = 0
        self.arrays = arrays  # known array names → rank

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise FortranError(f"line {self.line}: unexpected end of expression")
        self.pos += 1
        return tok

    def expect_op(self, text: str) -> None:
        tok = self.next()
        if tok != ("op", text):
            raise FortranError(
                f"line {self.line}: expected {text!r}, found {tok[1]!r}"
            )

    def parse(self) -> A.Expr:
        expr = self.parse_binary(1)
        if self.peek() is not None:
            raise FortranError(
                f"line {self.line}: trailing tokens {self.tokens[self.pos:]}"
            )
        return expr

    def parse_binary(self, min_prec: int) -> A.Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok is None or tok[0] != "op":
                return left
            prec = self._PREC.get(tok[1])
            if prec is None or prec < min_prec:
                return left
            self.next()
            if tok[1] == "**":
                # right-associative, lowered to pow()
                right = self.parse_binary(prec)
                left = A.Call(self.line, 0, "pow", [left, right])
                continue
            right = self.parse_binary(prec + 1)
            left = A.BinOp(self.line, 0, tok[1], left, right)

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok == ("op", "-"):
            self.next()
            return A.UnOp(self.line, 0, "-", self.parse_unary())
        if tok == ("op", "+"):
            self.next()
            return self.parse_unary()
        if tok == ("op", "!"):
            self.next()
            return A.UnOp(self.line, 0, "!", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> A.Expr:
        tok = self.next()
        kind, text = tok
        if kind == "int":
            return A.IntLit(self.line, 0, int(text))
        if kind == "float":
            return A.FloatLit(self.line, 0, float(text))
        if kind == "string":
            return A.StringLit(self.line, 0, text)
        if kind == "op" and text == "(":
            inner = self.parse_binary(1)
            self.expect_op(")")
            return inner
        if kind == "name":
            if self.peek() == ("op", "("):
                self.next()
                args: List[A.Expr] = []
                if self.peek() != ("op", ")"):
                    while True:
                        args.append(self.parse_binary(1))
                        if self.peek() == ("op", ","):
                            self.next()
                            continue
                        break
                self.expect_op(")")
                return self._name_with_args(text, args)
            return A.Ident(self.line, 0, text)
        raise FortranError(f"line {self.line}: unexpected token {text!r}")

    def _name_with_args(self, name: str, args: List[A.Expr]) -> A.Expr:
        if name in self.arrays:
            # 1-based Fortran indexing → 0-based element access
            indices = [
                A.BinOp(self.line, 0, "-", a, A.IntLit(self.line, 0, 1))
                for a in args
            ]
            return A.Index(self.line, 0, A.Ident(self.line, 0, name), indices)
        if name == "mod":
            if len(args) != 2:
                raise FortranError(f"line {self.line}: mod takes 2 args")
            return A.BinOp(self.line, 0, "%", args[0], args[1])
        if name == "dble":
            return A.Cast(self.line, 0, A.CType(self.line, 0, "double"),
                          args[0])
        mapped = _INTRINSIC_MAP.get(name)
        if mapped:
            return A.Call(self.line, 0, mapped, args)
        return A.Call(self.line, 0, _external_name(name), args)


def _external_name(name: str) -> str:
    """Map lowercase Fortran names onto the comm-API spellings."""
    for table in (COMM_APIS, DPERF_APIS, BUILTINS):
        for known in table:
            if known.lower() == name:
                return known
    return name


# --------------------------------------------------------------------------
# Statement-level parsing
# --------------------------------------------------------------------------

_UNIT_RE = re.compile(
    r"^(subroutine|function)\s+([a-zA-Z_][\w]*)\s*(?:\(([^)]*)\))?"
    r"(?:\s+result\s*\(\s*([a-zA-Z_][\w]*)\s*\))?\s*$",
    re.IGNORECASE,
)
_DECL_RE = re.compile(
    r"^(integer|real\s*\*\s*8|real|double\s+precision)\s*(::)?\s*(.+)$",
    re.IGNORECASE,
)
_DO_RE = re.compile(
    r"^do\s+([a-zA-Z_][\w]*)\s*=\s*(.+)$", re.IGNORECASE
)
_IF_THEN_RE = re.compile(r"^if\s*\((.*)\)\s*then$", re.IGNORECASE)
_IF_ONELINE_RE = re.compile(r"^if\s*\((.*)\)\s*(\S.*)$", re.IGNORECASE)
_CALL_RE = re.compile(r"^call\s+([a-zA-Z_][\w]*)\s*(?:\((.*)\))?\s*$",
                      re.IGNORECASE)


class _FortranParser:
    def __init__(self, source: str) -> None:
        self.lines = _logical_lines(source)
        self.pos = 0

    def peek(self) -> Optional[Tuple[int, str]]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next(self) -> Tuple[int, str]:
        item = self.peek()
        if item is None:
            raise FortranError("unexpected end of source")
        self.pos += 1
        return item

    # -- program --------------------------------------------------------------
    def parse_program(self) -> A.Program:
        program = A.Program()
        while self.peek() is not None:
            program.funcs.append(self.parse_unit())
        return program

    def parse_unit(self) -> A.FuncDef:
        lineno, line = self.next()
        match = _UNIT_RE.match(line)
        if match is None:
            raise FortranError(
                f"line {lineno}: expected subroutine/function, got {line!r}"
            )
        kind, name, arg_text, result_name = match.groups()
        name = name.lower()
        arg_names = [a.strip().lower() for a in (arg_text or "").split(",")
                     if a.strip()]
        is_function = kind.lower() == "function"
        result_var = (result_name or name).lower() if is_function else None

        unit = _UnitBuilder(name, arg_names, result_var)
        body = self.parse_block(unit, terminators=("end",))
        self.next()  # consume the `end`
        return unit.build(body, lineno, is_function)

    # -- statements --------------------------------------------------------------
    def parse_block(self, unit: "_UnitBuilder",
                    terminators: Tuple[str, ...]) -> List[A.Stmt]:
        stmts: List[A.Stmt] = []
        while True:
            item = self.peek()
            if item is None:
                raise FortranError(
                    f"missing terminator {terminators} at end of source"
                )
            _lineno, line = item
            lowered = re.sub(r"\s+", " ", line.lower()).strip()
            if lowered in terminators or lowered.split(" ")[0] in terminators:
                return stmts
            self.next()
            stmt = self.parse_stmt(_lineno, line, unit)
            if stmt is not None:
                stmts.append(stmt)

    def parse_stmt(self, lineno: int, line: str,
                   unit: "_UnitBuilder") -> Optional[A.Stmt]:
        lowered = line.lower()

        decl = _DECL_RE.match(line)
        if decl is not None and "=" not in decl.group(3).split("(")[0]:
            unit.add_declarations(decl, lineno)
            return None  # declarations materialize in the prologue

        if lowered == "return":
            return self._return_stmt(lineno, unit)
        if lowered == "exit":
            return A.Break(lineno, 0)
        if lowered == "cycle":
            return A.Continue(lineno, 0)
        if lowered in ("continue",):
            return A.Empty(lineno, 0)

        match = _IF_THEN_RE.match(line)
        if match is not None:
            return self.parse_if_block(lineno, match.group(1), unit)

        match = _DO_RE.match(line)
        if match is not None:
            return self.parse_do(lineno, match, unit)

        match = _CALL_RE.match(line)
        if match is not None:
            name = match.group(1).lower()
            args_text = match.group(2) or ""
            args = _split_args(args_text, lineno)
            call = A.Call(lineno, 0, _external_name(name), [
                self._expr(a, lineno, unit) for a in args
            ])
            return A.ExprStmt(lineno, 0, call)

        match = _IF_ONELINE_RE.match(line)
        if match is not None and not _IF_THEN_RE.match(line):
            cond = self._expr(match.group(1), lineno, unit)
            inner = self.parse_stmt(lineno, match.group(2), unit)
            if inner is None:
                raise FortranError(f"line {lineno}: bad one-line if body")
            return A.If(lineno, 0, cond, inner, None)

        if "=" in line:
            lhs_text, rhs_text = _split_assignment(line, lineno)
            target = self._expr(lhs_text, lineno, unit)
            if not isinstance(target, (A.Ident, A.Index)):
                raise FortranError(
                    f"line {lineno}: invalid assignment target {lhs_text!r}"
                )
            value = self._expr(rhs_text, lineno, unit)
            return A.ExprStmt(
                lineno, 0, A.Assign(lineno, 0, "=", target, value)
            )

        raise FortranError(f"line {lineno}: unsupported statement {line!r}")

    def parse_if_block(self, lineno: int, cond_text: str,
                       unit: "_UnitBuilder") -> A.If:
        cond = self._expr(cond_text, lineno, unit)
        then_stmts = self.parse_block(unit, ("else", "end if", "endif"))
        _l, terminator = self.next()
        other: Optional[A.Stmt] = None
        if terminator.lower().startswith("else"):
            else_stmts = self.parse_block(unit, ("end if", "endif"))
            self.next()
            other = A.Block(lineno, 0, else_stmts)
        return A.If(lineno, 0, cond, A.Block(lineno, 0, then_stmts), other)

    def parse_do(self, lineno: int, match: re.Match,
                 unit: "_UnitBuilder") -> A.For:
        var = match.group(1).lower()
        bounds = _split_args(match.group(2), lineno)
        if len(bounds) not in (2, 3):
            raise FortranError(f"line {lineno}: do needs lo, hi[, step]")
        lo = self._expr(bounds[0], lineno, unit)
        hi = self._expr(bounds[1], lineno, unit)
        step = self._expr(bounds[2], lineno, unit) if len(bounds) == 3 \
            else A.IntLit(lineno, 0, 1)
        body_stmts = self.parse_block(unit, ("end do", "enddo"))
        self.next()
        ident = A.Ident(lineno, 0, var)
        init = A.ExprStmt(lineno, 0, A.Assign(lineno, 0, "=", ident, lo))
        descending = isinstance(step, A.IntLit) and step.value < 0
        cond_op = ">=" if descending else "<="
        cond = A.BinOp(lineno, 0, cond_op, A.Ident(lineno, 0, var), hi)
        incr = A.Assign(lineno, 0, "+=", A.Ident(lineno, 0, var), step)
        return A.For(lineno, 0, init, cond, incr,
                     A.Block(lineno, 0, body_stmts))

    def _return_stmt(self, lineno: int, unit: "_UnitBuilder") -> A.Return:
        if unit.result_var is not None:
            return A.Return(lineno, 0, A.Ident(lineno, 0, unit.result_var))
        return A.Return(lineno, 0, None)

    def _expr(self, text: str, lineno: int, unit: "_UnitBuilder") -> A.Expr:
        return _ExprParser(
            _tokenize_expr(text, lineno), lineno, unit.arrays
        ).parse()


def _split_args(text: str, lineno: int) -> List[str]:
    """Split on top-level commas."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise FortranError(f"line {lineno}: unbalanced parentheses")
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _split_assignment(line: str, lineno: int) -> Tuple[str, str]:
    depth = 0
    for i, ch in enumerate(line):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "=" and depth == 0:
            before = line[i - 1] if i else ""
            after = line[i + 1] if i + 1 < len(line) else ""
            if before in "<>=!" or after == "=":
                continue  # comparison, not assignment
            return line[:i].strip(), line[i + 1:].strip()
    raise FortranError(f"line {lineno}: expected assignment in {line!r}")


class _UnitBuilder:
    """Collects declarations while a unit's body is parsed."""

    def __init__(self, name: str, arg_names: List[str],
                 result_var: Optional[str]) -> None:
        self.name = name
        self.arg_names = arg_names
        self.result_var = result_var
        self.types: Dict[str, str] = {}
        self.dims: Dict[str, List[A.Expr]] = {}
        self.arrays: Dict[str, int] = {}
        self.order: List[str] = []

    def add_declarations(self, match: re.Match, lineno: int) -> None:
        ctype = _TYPE_MAP[re.sub(r"\s+", "", match.group(1).lower())]
        for declarator in _split_args(match.group(3), lineno):
            dmatch = re.match(r"^([a-zA-Z_][\w]*)\s*(?:\((.*)\))?$", declarator)
            if dmatch is None:
                raise FortranError(
                    f"line {lineno}: bad declarator {declarator!r}"
                )
            var = dmatch.group(1).lower()
            self.types[var] = ctype
            self.order.append(var)
            if dmatch.group(2):
                dim_texts = _split_args(dmatch.group(2), lineno)
                self.arrays[var] = len(dim_texts)
                # dims reference scalars declared earlier; parse lazily
                self.dims[var] = [
                    _ExprParser(_tokenize_expr(d, lineno), lineno,
                                self.arrays).parse()
                    for d in dim_texts
                ]

    def build(self, body: List[A.Stmt], lineno: int,
              is_function: bool) -> A.FuncDef:
        params: List[A.Param] = []
        for arg in self.arg_names:
            ctype = A.CType(lineno, 0, self.types.get(arg, "double"))
            dims: List[Optional[A.Expr]] = []
            if arg in self.arrays:
                dims = [None] * self.arrays[arg]
            params.append(A.Param(lineno, 0, arg, ctype, dims))
        prologue: List[A.Stmt] = []
        for var in self.order:
            if var in self.arg_names:
                continue
            ctype = A.CType(lineno, 0, self.types[var])
            decl = A.VarDecl(lineno, 0, var, ctype,
                             self.dims.get(var, []), None)
            prologue.append(A.DeclStmt(lineno, 0, [decl]))
        if is_function and self.result_var is not None \
                and self.result_var not in self.arg_names \
                and self.result_var not in self.types:
            # implicit result variable defaults to double
            decl = A.VarDecl(lineno, 0, self.result_var,
                             A.CType(lineno, 0, "double"), [], None)
            prologue.append(A.DeclStmt(lineno, 0, [decl]))
        stmts = prologue + body
        if is_function:
            stmts = stmts + [A.Return(lineno, 0,
                                      A.Ident(lineno, 0, self.result_var))]
        return_type = "double" if is_function else "void"
        if is_function and self.result_var in self.types:
            return_type = self.types[self.result_var]
        return A.FuncDef(
            lineno, 0, self.name, A.CType(lineno, 0, return_type),
            params, A.Block(lineno, 0, stmts),
        )


def parse_fortran(source: str) -> A.Program:
    """Parse Fortran source into the shared AST."""
    return _FortranParser(source).parse_program()
