"""Static analyses over the mini-C AST and CFG.

These mirror the information dPerf extracts via Rose (paper §III-D):
communication-call discovery inside basic blocks, loop nesting,
block-level def/use (the data-dependence view), the call graph, and
symbolic trip-count estimation used when scaling block benchmarks up
to large instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from . import cast as A
from .cfg import Cfg, build_cfg
from .semantics import COMM_APIS


@dataclass(frozen=True)
class CommCallSite:
    func: str          # enclosing function
    api: str           # e.g. p2psap_send
    line: int
    loop_depth: int

    @property
    def is_send(self) -> bool:
        return "send" in self.api.lower()

    @property
    def is_recv(self) -> bool:
        return "recv" in self.api.lower()


def find_comm_calls(program: A.Program) -> List[CommCallSite]:
    """All communication API call sites, with their loop depth."""
    sites: List[CommCallSite] = []
    for func in program.funcs:
        depths = loop_depth_map(func)
        for stmt, depth in depths.items():
            # Container statements contribute only their control
            # expressions; their bodies appear as separate map entries.
            if isinstance(stmt, A.If):
                roots: List[A.Node] = [stmt.cond]
            elif isinstance(stmt, A.While):
                roots = [stmt.cond]
            elif isinstance(stmt, A.For):
                roots = [e for e in (stmt.cond, stmt.step) if e is not None]
            else:
                roots = [stmt]
            for root in roots:
                for node in A.walk(root):
                    if isinstance(node, A.Call) and node.name in COMM_APIS:
                        sites.append(
                            CommCallSite(func.name, node.name, node.line, depth)
                        )
    # deterministic order
    sites.sort(key=lambda s: (s.func, s.line, s.api))
    return sites


def loop_depth_map(func: A.FuncDef) -> Dict[A.Stmt, int]:
    """Map every *simple* statement to its loop nesting depth."""
    out: Dict[A.Stmt, int] = {}

    def visit(stmt: A.Stmt, depth: int) -> None:
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                visit(s, depth)
        elif isinstance(stmt, A.If):
            out[stmt] = depth
            visit(stmt.then, depth)
            if stmt.other is not None:
                visit(stmt.other, depth)
        elif isinstance(stmt, A.While):
            out[stmt] = depth
            visit(stmt.body, depth + 1)
        elif isinstance(stmt, A.For):
            out[stmt] = depth
            if stmt.init is not None:
                visit(stmt.init, depth)
            visit(stmt.body, depth + 1)
        else:
            out[stmt] = depth

    visit(func.body, 0)
    return out


# -- def/use (block-level data dependence) -----------------------------------

@dataclass
class DefUse:
    defs: Dict[int, Set[str]] = field(default_factory=dict)
    uses: Dict[int, Set[str]] = field(default_factory=dict)

    def flows(self) -> Set[tuple]:
        """(def_block, use_block, var) pairs — block-level DDG edges."""
        edges = set()
        for db, dvars in self.defs.items():
            for ub, uvars in self.uses.items():
                if db == ub:
                    continue
                for v in dvars & uvars:
                    edges.add((db, ub, v))
        return edges


def _expr_defs_uses(expr: A.Expr, defs: Set[str], uses: Set[str]) -> None:
    if isinstance(expr, A.Assign):
        target = expr.target
        if isinstance(target, A.Ident):
            defs.add(target.name)
        elif isinstance(target, A.Index):
            defs.add(target.base.name)
            for i in target.indices:
                _expr_defs_uses(i, defs, uses)
        if expr.op != "=":  # compound assignment also reads the target
            if isinstance(target, A.Ident):
                uses.add(target.name)
            elif isinstance(target, A.Index):
                uses.add(target.base.name)
        _expr_defs_uses(expr.value, defs, uses)
    elif isinstance(expr, A.UnOp) and expr.op in ("++", "--"):
        operand = expr.operand
        if isinstance(operand, A.Ident):
            defs.add(operand.name)
            uses.add(operand.name)
        elif isinstance(operand, A.Index):
            defs.add(operand.base.name)
            uses.add(operand.base.name)
            for i in operand.indices:
                _expr_defs_uses(i, defs, uses)
    elif isinstance(expr, A.Ident):
        uses.add(expr.name)
    elif isinstance(expr, A.Index):
        uses.add(expr.base.name)
        for i in expr.indices:
            _expr_defs_uses(i, defs, uses)
    else:
        for child in A.children(expr):
            if isinstance(child, A.Expr):
                _expr_defs_uses(child, defs, uses)


def def_use(cfg: Cfg) -> DefUse:
    """Block-level def/use sets for a function's CFG."""
    du = DefUse()
    for block in cfg.blocks:
        defs: Set[str] = set()
        uses: Set[str] = set()
        for stmt in block.stmts:
            if isinstance(stmt, A.DeclStmt):
                for d in stmt.decls:
                    defs.add(d.name)
                    if d.init is not None:
                        _expr_defs_uses(d.init, defs, uses)
                    for dim in d.dims:
                        _expr_defs_uses(dim, defs, uses)
            elif isinstance(stmt, A.ExprStmt):
                _expr_defs_uses(stmt.expr, defs, uses)
            elif isinstance(stmt, A.Return) and stmt.value is not None:
                _expr_defs_uses(stmt.value, defs, uses)
        if block.cond is not None:
            _expr_defs_uses(block.cond, defs, uses)
        du.defs[block.bid] = defs
        du.uses[block.bid] = uses
    return du


# -- call graph ------------------------------------------------------------

def call_graph(program: A.Program) -> Dict[str, Set[str]]:
    """Caller → set of user-defined callees."""
    defined = set(program.func_names)
    graph: Dict[str, Set[str]] = {name: set() for name in defined}
    for func in program.funcs:
        for node in A.walk(func.body):
            if isinstance(node, A.Call) and node.name in defined:
                graph[func.name].add(node.name)
    return graph


# -- trip-count estimation --------------------------------------------------

def estimate_trip_count(
    loop: A.For, env: Mapping[str, float] | None = None
) -> Optional[int]:
    """Trip count of a canonical counted loop, if statically resolvable.

    Recognizes ``for (i = a; i < b; i++ / i += c)`` (also ``<=``, ``--``,
    ``-=``) where ``a``, ``b``, ``c`` are integer literals or names
    resolvable through ``env`` (the scale-up parameter bindings).
    Returns ``None`` for anything non-canonical.
    """
    env = env or {}

    def value(e: Optional[A.Expr]) -> Optional[float]:
        if e is None:
            return None
        if isinstance(e, A.IntLit):
            return float(e.value)
        if isinstance(e, A.FloatLit):
            return e.value
        if isinstance(e, A.Ident):
            return env.get(e.name)
        if isinstance(e, A.UnOp) and e.op == "-":
            v = value(e.operand)
            return -v if v is not None else None
        if isinstance(e, A.BinOp):
            l, r = value(e.left), value(e.right)
            if l is None or r is None:
                return None
            try:
                return {
                    "+": l + r, "-": l - r, "*": l * r,
                    "/": l / r if r else None, "%": l % r if r else None,
                }.get(e.op)
            except ZeroDivisionError:
                return None
        return None

    # induction variable + start
    var = None
    start = None
    if isinstance(loop.init, A.DeclStmt) and len(loop.init.decls) == 1:
        d = loop.init.decls[0]
        var, start = d.name, value(d.init)
    elif isinstance(loop.init, A.ExprStmt) and isinstance(loop.init.expr, A.Assign):
        a = loop.init.expr
        if a.op == "=" and isinstance(a.target, A.Ident):
            var, start = a.target.name, value(a.value)
    if var is None or start is None:
        return None

    # bound
    cond = loop.cond
    if not (isinstance(cond, A.BinOp) and cond.op in ("<", "<=", ">", ">=")):
        return None
    if isinstance(cond.left, A.Ident) and cond.left.name == var:
        bound = value(cond.right)
        op = cond.op
    elif isinstance(cond.right, A.Ident) and cond.right.name == var:
        bound = value(cond.left)
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[cond.op]
    else:
        return None
    if bound is None:
        return None

    # step
    step = None
    s = loop.step
    if isinstance(s, A.UnOp) and s.op in ("++", "--") \
            and isinstance(s.operand, A.Ident) and s.operand.name == var:
        step = 1.0 if s.op == "++" else -1.0
    elif isinstance(s, A.Assign) and isinstance(s.target, A.Ident) \
            and s.target.name == var:
        if s.op == "+=":
            step = value(s.value)
        elif s.op == "-=":
            v = value(s.value)
            step = -v if v is not None else None
        elif s.op == "=" and isinstance(s.value, A.BinOp):
            b = s.value
            if b.op == "+" and isinstance(b.left, A.Ident) and b.left.name == var:
                step = value(b.right)
            elif b.op == "-" and isinstance(b.left, A.Ident) and b.left.name == var:
                v = value(b.right)
                step = -v if v is not None else None
    if step is None or step == 0:
        return None

    span = bound - start
    if op in ("<=", ">="):
        span += 1 if step > 0 else -1
    trips = span / step
    if trips <= 0:
        return 0
    import math

    return int(math.ceil(trips))


def count_operations(node: A.Node) -> Dict[str, int]:
    """Static operation census of a subtree (feeds the GCC cost model).

    Categories: flops (float arithmetic candidates), int_ops, mem
    (array element accesses), calls, branches, assigns.
    """
    counts = {"flops": 0, "int_ops": 0, "mem": 0, "calls": 0,
              "branches": 0, "assigns": 0}
    for n in A.walk(node):
        if isinstance(n, A.BinOp):
            if n.op in ("+", "-", "*", "/", "%"):
                counts["flops"] += 1
            else:
                counts["int_ops"] += 1
        elif isinstance(n, A.UnOp):
            counts["int_ops"] += 1
        elif isinstance(n, A.Index):
            counts["mem"] += 1
        elif isinstance(n, A.Call):
            counts["calls"] += 1
        elif isinstance(n, A.Assign):
            counts["assigns"] += 1
        elif isinstance(n, (A.If, A.While, A.For, A.Cond)):
            counts["branches"] += 1
    return counts


def analyze_function(func: A.FuncDef) -> Dict[str, object]:
    """Bundle of per-function facts used in reports and tests."""
    cfg = build_cfg(func)
    du = def_use(cfg)
    return {
        "name": func.name,
        "n_blocks": cfg.n_blocks,
        "max_loop_depth": cfg.max_loop_depth(),
        "ops": count_operations(func.body),
        "ddg_edges": len(du.flows()),
    }
