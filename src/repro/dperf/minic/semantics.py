"""Light semantic checks over the mini-C AST.

dPerf only needs the program to be well-formed enough to instrument
and execute: every identifier resolves, calls hit known functions (or
builtins/comm APIs) with the right arity, and ``break``/``continue``
appear inside loops.  Full C type checking is out of scope — the
interpreter coerces numerics like C does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from . import cast as A

#: Builtin math/runtime functions and their arity.
BUILTINS: Dict[str, int] = {
    "fabs": 1,
    "sqrt": 1,
    "exp": 1,
    "log": 1,
    "pow": 2,
    "fmax": 2,
    "fmin": 2,
    "floor": 1,
    "ceil": 1,
    "abs": 1,
    "printf": -1,  # variadic
}

#: Communication APIs recognized by dPerf (§III-D: "customizable for
#: recognizing multiple communication methods such as MPI or P2PSAP").
COMM_APIS: Dict[str, int] = {
    # P2PSAP flavour
    "p2psap_init": 0,
    "p2psap_finalize": 0,
    "p2psap_rank": 0,
    "p2psap_size": 0,
    "p2psap_send": 3,      # (dst, buf, count)
    "p2psap_isend": 3,
    "p2psap_recv": 3,      # (src, buf, count)
    "p2psap_barrier": 0,
    "p2psap_allreduce_max": 1,
    # MPI flavour (aliases with the same shapes)
    "MPI_Send": 3,
    "MPI_Isend": 3,
    "MPI_Recv": 3,
    "MPI_Barrier": 0,
    "MPI_Allreduce_max": 1,
}

#: Instrumentation intrinsics inserted by repro.dperf.instrument.
PAPI_APIS: Dict[str, int] = {
    "papi_block_begin": 1,
    "papi_block_end": 1,
}

#: Iteration-structure hints an application may place around its time
#: loop; dPerf uses them to scale block benchmarks up to long runs.
DPERF_APIS: Dict[str, int] = {
    "dperf_region_begin": 1,
    "dperf_region_end": 1,
}

KNOWN_ARITY = {**BUILTINS, **COMM_APIS, **PAPI_APIS, **DPERF_APIS}


class SemanticError(Exception):
    def __init__(self, messages: List[str]):
        super().__init__("; ".join(messages))
        self.messages = messages


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Set[str] = set()

    def declare(self, name: str) -> bool:
        if name in self.names:
            return False
        self.names.add(name)
        return True

    def resolves(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.parent
        return False


class Checker:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.errors: List[str] = []
        self.func_arity: Dict[str, int] = {
            f.name: len(f.params) for f in program.funcs
        }

    def err(self, node: A.Node, msg: str) -> None:
        self.errors.append(f"line {node.line}: {msg}")

    def check(self) -> None:
        global_scope = _Scope()
        for decl_stmt in self.program.globals:
            for d in decl_stmt.decls:
                if not global_scope.declare(d.name):
                    self.err(d, f"redeclaration of global {d.name!r}")
        seen_funcs: Set[str] = set()
        for func in self.program.funcs:
            if func.name in seen_funcs:
                self.err(func, f"redefinition of function {func.name!r}")
            seen_funcs.add(func.name)
        for func in self.program.funcs:
            self._check_func(func, global_scope)
        if self.errors:
            raise SemanticError(self.errors)

    def _check_func(self, func: A.FuncDef, global_scope: _Scope) -> None:
        scope = _Scope(global_scope)
        for p in func.params:
            if not scope.declare(p.name):
                self.err(p, f"duplicate parameter {p.name!r}")
            for dim in p.dims:
                if dim is not None:
                    self._check_expr(dim, scope)
        self._check_block(func.body, _Scope(scope), loop_depth=0)

    def _check_block(self, block: A.Block, scope: _Scope, loop_depth: int) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope, loop_depth)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope, loop_depth: int) -> None:
        if isinstance(stmt, A.DeclStmt):
            for d in stmt.decls:
                for dim in d.dims:
                    self._check_expr(dim, scope)
                if d.init is not None:
                    self._check_expr(d.init, scope)
                if not scope.declare(d.name):
                    self.err(d, f"redeclaration of {d.name!r} in the same scope")
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, A.Block):
            self._check_block(stmt, _Scope(scope), loop_depth)
        elif isinstance(stmt, A.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, _Scope(scope), loop_depth)
            if stmt.other is not None:
                self._check_stmt(stmt.other, _Scope(scope), loop_depth)
        elif isinstance(stmt, A.While):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.body, _Scope(scope), loop_depth + 1)
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, loop_depth)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._check_stmt(stmt.body, _Scope(inner), loop_depth + 1)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if loop_depth == 0:
                kind = "break" if isinstance(stmt, A.Break) else "continue"
                self.err(stmt, f"{kind!r} outside of a loop")
        elif isinstance(stmt, A.Empty):
            pass
        else:  # pragma: no cover - defensive
            self.err(stmt, f"unknown statement {type(stmt).__name__}")

    def _check_expr(self, expr: A.Expr, scope: _Scope) -> None:
        if isinstance(expr, A.Ident):
            if not scope.resolves(expr.name):
                self.err(expr, f"use of undeclared identifier {expr.name!r}")
        elif isinstance(expr, A.Call):
            arity = self.func_arity.get(expr.name, KNOWN_ARITY.get(expr.name))
            if arity is None:
                self.err(expr, f"call to unknown function {expr.name!r}")
            elif arity >= 0 and len(expr.args) != arity:
                self.err(
                    expr,
                    f"{expr.name}() expects {arity} args, got {len(expr.args)}",
                )
            for a in expr.args:
                self._check_expr(a, scope)
        elif isinstance(expr, A.Index):
            self._check_expr(expr.base, scope)
            for i in expr.indices:
                self._check_expr(i, scope)
        elif isinstance(expr, A.BinOp):
            self._check_expr(expr.left, scope)
            self._check_expr(expr.right, scope)
        elif isinstance(expr, A.UnOp):
            self._check_expr(expr.operand, scope)
        elif isinstance(expr, A.Assign):
            self._check_expr(expr.target, scope)
            self._check_expr(expr.value, scope)
        elif isinstance(expr, A.Cond):
            self._check_expr(expr.cond, scope)
            self._check_expr(expr.then, scope)
            self._check_expr(expr.other, scope)
        elif isinstance(expr, A.Cast):
            self._check_expr(expr.expr, scope)
        elif isinstance(expr, (A.IntLit, A.FloatLit, A.StringLit)):
            pass
        else:  # pragma: no cover - defensive
            self.err(expr, f"unknown expression {type(expr).__name__}")


def check(program: A.Program) -> None:
    """Raise :class:`SemanticError` when the program is ill-formed."""
    Checker(program).check()
