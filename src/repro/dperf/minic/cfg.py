"""Control-flow graph and basic-block decomposition.

This is the analysis dPerf performs on the Rose AST (paper Fig. 7):
function bodies are decomposed into *basic blocks* — maximal
straight-line statement runs — which are the unit of both block
benchmarking and instrumentation.  Loop headers/bodies are separate
blocks, and each block records its loop depth (needed by the GCC
optimization model and the scale-up analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import cast as A

#: Statement types that live inside a basic block.
SIMPLE_STMTS = (A.DeclStmt, A.ExprStmt, A.Empty)


@dataclass
class BasicBlock:
    bid: int
    label: str
    stmts: List[A.Stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    loop_depth: int = 0
    cond: Optional[A.Expr] = None  # branch condition terminating the block

    @property
    def is_empty(self) -> bool:
        return not self.stmts and self.cond is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BB{self.bid} {self.label} stmts={len(self.stmts)}"
            f" depth={self.loop_depth} succs={self.succs}>"
        )


@dataclass
class Cfg:
    func_name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    entry: int = 0
    exit: int = 1

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def max_loop_depth(self) -> int:
        return max((b.loop_depth for b in self.blocks), default=0)

    def reachable(self) -> List[int]:
        """Block ids reachable from entry (DFS order)."""
        seen: List[int] = []
        seen_set = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen_set:
                continue
            seen_set.add(bid)
            seen.append(bid)
            stack.extend(reversed(self.blocks[bid].succs))
        return seen


class _CfgBuilder:
    def __init__(self, func: A.FuncDef) -> None:
        self.func = func
        self.cfg = Cfg(func.name)
        self._entry = self._new_block("entry", 0)
        self._exit = self._new_block("exit", 0)
        self.cfg.entry = self._entry.bid
        self.cfg.exit = self._exit.bid
        # stack of (continue_target_bid, break_target_bid)
        self._loop_stack: List[tuple[int, int]] = []

    def _new_block(self, label: str, depth: int) -> BasicBlock:
        block = BasicBlock(len(self.cfg.blocks), label, loop_depth=depth)
        self.cfg.blocks.append(block)
        return block

    def _edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        if dst.bid not in src.succs:
            src.succs.append(dst.bid)
            dst.preds.append(src.bid)

    def build(self) -> Cfg:
        last = self._stmts(self.func.body.stmts, self._entry, 0)
        if last is not None:
            self._edge(last, self._exit)
        return self.cfg

    def _stmts(
        self, stmts: List[A.Stmt], current: Optional[BasicBlock], depth: int
    ) -> Optional[BasicBlock]:
        """Thread statements through the CFG; returns the live tail block
        (``None`` when control cannot fall through)."""
        for stmt in stmts:
            if current is None:
                # unreachable code after return/break; still build blocks
                current = self._new_block("unreachable", depth)
            current = self._stmt(stmt, current, depth)
        return current

    def _stmt(
        self, stmt: A.Stmt, current: BasicBlock, depth: int
    ) -> Optional[BasicBlock]:
        if isinstance(stmt, SIMPLE_STMTS):
            current.stmts.append(stmt)
            return current
        if isinstance(stmt, A.Block):
            return self._stmts(stmt.stmts, current, depth)
        if isinstance(stmt, A.Return):
            current.stmts.append(stmt)
            self._edge(current, self.cfg.blocks[self.cfg.exit])
            return None
        if isinstance(stmt, A.Break):
            current.stmts.append(stmt)
            if self._loop_stack:
                _cont, brk = self._loop_stack[-1]
                self._edge(current, self.cfg.blocks[brk])
            return None
        if isinstance(stmt, A.Continue):
            current.stmts.append(stmt)
            if self._loop_stack:
                cont, _brk = self._loop_stack[-1]
                self._edge(current, self.cfg.blocks[cont])
            return None
        if isinstance(stmt, A.If):
            current.cond = stmt.cond
            then_entry = self._new_block("then", depth)
            self._edge(current, then_entry)
            then_tail = self._stmt(stmt.then, then_entry, depth)
            join = self._new_block("join", depth)
            if stmt.other is not None:
                else_entry = self._new_block("else", depth)
                self._edge(current, else_entry)
                else_tail = self._stmt(stmt.other, else_entry, depth)
                if else_tail is not None:
                    self._edge(else_tail, join)
            else:
                self._edge(current, join)
            if then_tail is not None:
                self._edge(then_tail, join)
            return join
        if isinstance(stmt, A.While):
            header = self._new_block("while-header", depth + 1)
            header.cond = stmt.cond
            self._edge(current, header)
            exit_block = self._new_block("while-exit", depth)
            body_entry = self._new_block("while-body", depth + 1)
            self._edge(header, body_entry)
            self._edge(header, exit_block)
            self._loop_stack.append((header.bid, exit_block.bid))
            body_tail = self._stmt(stmt.body, body_entry, depth + 1)
            self._loop_stack.pop()
            if body_tail is not None:
                self._edge(body_tail, header)
            return exit_block
        if isinstance(stmt, A.For):
            if stmt.init is not None:
                current = self._stmt(stmt.init, current, depth) or current
            header = self._new_block("for-header", depth + 1)
            header.cond = stmt.cond
            self._edge(current, header)
            exit_block = self._new_block("for-exit", depth)
            body_entry = self._new_block("for-body", depth + 1)
            self._edge(header, body_entry)
            self._edge(header, exit_block)
            # continue jumps to the step block
            step_block = self._new_block("for-step", depth + 1)
            if stmt.step is not None:
                step_block.stmts.append(A.ExprStmt(stmt.line, stmt.col, stmt.step))
            self._loop_stack.append((step_block.bid, exit_block.bid))
            body_tail = self._stmt(stmt.body, body_entry, depth + 1)
            self._loop_stack.pop()
            if body_tail is not None:
                self._edge(body_tail, step_block)
            self._edge(step_block, header)
            return exit_block
        raise TypeError(f"unsupported statement {type(stmt).__name__}")


def build_cfg(func: A.FuncDef) -> Cfg:
    """Construct the control-flow graph of one function."""
    return _CfgBuilder(func).build()
