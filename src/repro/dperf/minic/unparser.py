"""Unparse the AST back to C text (Rose's "unparser" stage).

dPerf unparses the instrumented AST into compilable source; we keep
the same artifact so tests can round-trip ``parse(unparse(ast))`` and
users can inspect the instrumented program.
"""

from __future__ import annotations

from . import cast as A

_INDENT = "    "


def unparse(node: A.Node, indent: int = 0) -> str:
    """Render an AST subtree back to C source text."""
    if isinstance(node, A.Program):
        parts = [unparse(g, indent) for g in node.globals]
        parts += [unparse(f, indent) for f in node.funcs]
        return "\n".join(parts) + "\n"
    if isinstance(node, A.FuncDef):
        params = ", ".join(_param(p) for p in node.params)
        head = f"{node.return_type.name} {node.name}({params or 'void'})"
        return f"{head}\n{unparse(node.body, indent)}"
    if isinstance(node, A.Block):
        pad = _INDENT * indent
        inner = "\n".join(unparse(s, indent + 1) for s in node.stmts)
        return f"{pad}{{\n{inner}\n{pad}}}" if inner else f"{pad}{{\n{pad}}}"
    if isinstance(node, A.DeclStmt):
        pad = _INDENT * indent
        decls = ", ".join(_declarator(d) for d in node.decls)
        return f"{pad}{node.decls[0].type.name} {decls};"
    if isinstance(node, A.ExprStmt):
        return f"{_INDENT * indent}{expr_text(node.expr)};"
    if isinstance(node, A.If):
        pad = _INDENT * indent
        out = f"{pad}if ({expr_text(node.cond)})\n{_stmt_body(node.then, indent)}"
        if node.other is not None:
            out += f"\n{pad}else\n{_stmt_body(node.other, indent)}"
        return out
    if isinstance(node, A.While):
        pad = _INDENT * indent
        return f"{pad}while ({expr_text(node.cond)})\n{_stmt_body(node.body, indent)}"
    if isinstance(node, A.For):
        pad = _INDENT * indent
        init = ""
        if isinstance(node.init, A.DeclStmt):
            decls = ", ".join(_declarator(d) for d in node.init.decls)
            init = f"{node.init.decls[0].type.name} {decls}"
        elif isinstance(node.init, A.ExprStmt):
            init = expr_text(node.init.expr)
        cond = expr_text(node.cond) if node.cond else ""
        step = expr_text(node.step) if node.step else ""
        return (
            f"{pad}for ({init}; {cond}; {step})\n{_stmt_body(node.body, indent)}"
        )
    if isinstance(node, A.Return):
        pad = _INDENT * indent
        if node.value is None:
            return f"{pad}return;"
        return f"{pad}return {expr_text(node.value)};"
    if isinstance(node, A.Break):
        return f"{_INDENT * indent}break;"
    if isinstance(node, A.Continue):
        return f"{_INDENT * indent}continue;"
    if isinstance(node, A.Empty):
        return f"{_INDENT * indent};"
    raise TypeError(f"cannot unparse {type(node).__name__}")


def _stmt_body(stmt: A.Stmt, indent: int) -> str:
    if isinstance(stmt, A.Block):
        return unparse(stmt, indent)
    return unparse(stmt, indent + 1)


def _param(p: A.Param) -> str:
    dims = "".join("[]" if d is None else f"[{expr_text(d)}]" for d in p.dims)
    return f"{p.type.name} {p.name}{dims}"


def _declarator(d: A.VarDecl) -> str:
    dims = "".join(f"[{expr_text(e)}]" for e in d.dims)
    out = f"{d.name}{dims}"
    if d.init is not None:
        out += f" = {expr_text(d.init)}"
    return out


def expr_text(expr: A.Expr) -> str:
    """Render an expression (fully parenthesized where precedence matters)."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        text = repr(expr.value)
        return text
    if isinstance(expr, A.StringLit):
        escaped = (
            expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        return f'"{escaped}"'
    if isinstance(expr, A.Ident):
        return expr.name
    if isinstance(expr, A.BinOp):
        return f"({expr_text(expr.left)} {expr.op} {expr_text(expr.right)})"
    if isinstance(expr, A.UnOp):
        if expr.postfix:
            return f"({expr_text(expr.operand)}{expr.op})"
        return f"({expr.op}{expr_text(expr.operand)})"
    if isinstance(expr, A.Assign):
        return f"{expr_text(expr.target)} {expr.op} {expr_text(expr.value)}"
    if isinstance(expr, A.Cond):
        return (
            f"({expr_text(expr.cond)} ? {expr_text(expr.then)}"
            f" : {expr_text(expr.other)})"
        )
    if isinstance(expr, A.Call):
        args = ", ".join(expr_text(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, A.Index):
        idx = "".join(f"[{expr_text(i)}]" for i in expr.indices)
        return f"{expr.base.name}{idx}"
    if isinstance(expr, A.Cast):
        return f"(({expr.type.name}){expr_text(expr.expr)})"
    raise TypeError(f"cannot unparse expression {type(expr).__name__}")
