"""AST node classes for the mini-C dialect (the "cast" = C AST).

Every node records its source position so diagnostics, block ids and
instrumentation can point back at lines — mirroring how dPerf's
Rose-based translator works on the real AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(eq=False)
class Node:
    line: int = field(default=0, compare=False)
    col: int = field(default=0, compare=False)


# --------------------------------------------------------------------------
# Types
# --------------------------------------------------------------------------

@dataclass(eq=False)
class CType(Node):
    """A scalar C type name (arrays are carried by declarators)."""

    name: str = "int"  # void|int|long|float|double|char

    @property
    def is_float(self) -> bool:
        return self.name in ("float", "double")

    @property
    def is_void(self) -> bool:
        return self.name == "void"


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(eq=False)
class Expr(Node):
    pass


@dataclass(eq=False)
class IntLit(Expr):
    value: int = 0


@dataclass(eq=False)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(eq=False)
class StringLit(Expr):
    value: str = ""


@dataclass(eq=False)
class Ident(Expr):
    name: str = ""


@dataclass(eq=False)
class BinOp(Expr):
    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class UnOp(Expr):
    op: str = "-"  # - ! ~ ++ --
    operand: Expr = None  # type: ignore[assignment]
    postfix: bool = False


@dataclass(eq=False)
class Assign(Expr):
    op: str = "="  # = += -= *= /= %=
    target: Expr = None  # type: ignore[assignment]  (Ident or Index)
    value: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Cond(Expr):
    """Ternary ``c ? a : b``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass(eq=False)
class Index(Expr):
    """``base[i]`` or ``base[i][j]`` (indices in order)."""

    base: Ident = None  # type: ignore[assignment]
    indices: List[Expr] = field(default_factory=list)


@dataclass(eq=False)
class Cast(Expr):
    type: CType = None  # type: ignore[assignment]
    expr: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass(eq=False)
class Stmt(Node):
    pass


@dataclass(eq=False)
class VarDecl(Node):
    """One declarator: ``double u[n][m] = init``."""

    name: str = ""
    type: CType = None  # type: ignore[assignment]
    dims: List[Expr] = field(default_factory=list)  # empty → scalar
    init: Optional[Expr] = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass(eq=False)
class DeclStmt(Stmt):
    decls: List[VarDecl] = field(default_factory=list)


@dataclass(eq=False)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    other: Optional[Stmt] = None


@dataclass(eq=False)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass(eq=False)
class For(Stmt):
    init: Optional[Stmt] = None  # DeclStmt or ExprStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass(eq=False)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(eq=False)
class Break(Stmt):
    pass


@dataclass(eq=False)
class Continue(Stmt):
    pass


@dataclass(eq=False)
class Empty(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass(eq=False)
class Param(Node):
    name: str = ""
    type: CType = None  # type: ignore[assignment]
    # array params: list of dim exprs; first may be None (``double u[]``)
    dims: List[Optional[Expr]] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass(eq=False)
class FuncDef(Node):
    name: str = ""
    return_type: CType = None  # type: ignore[assignment]
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class Program(Node):
    funcs: List[FuncDef] = field(default_factory=list)
    globals: List[DeclStmt] = field(default_factory=list)
    preprocessor: List[str] = field(default_factory=list)

    def func(self, name: str) -> FuncDef:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r}")

    @property
    def func_names(self) -> List[str]:
        return [f.name for f in self.funcs]


# --------------------------------------------------------------------------
# Generic traversal
# --------------------------------------------------------------------------

def children(node: Node) -> List[Node]:
    """Direct child nodes, in source order (used by walkers)."""
    out: List[Node] = []

    def add(x):
        if isinstance(x, Node):
            out.append(x)

    if isinstance(node, Program):
        for g in node.globals:
            add(g)
        for f in node.funcs:
            add(f)
    elif isinstance(node, FuncDef):
        add(node.return_type)
        for p in node.params:
            add(p)
        add(node.body)
    elif isinstance(node, Param):
        add(node.type)
        for d in node.dims:
            add(d)
    elif isinstance(node, DeclStmt):
        for d in node.decls:
            add(d)
    elif isinstance(node, VarDecl):
        add(node.type)
        for d in node.dims:
            add(d)
        add(node.init)
    elif isinstance(node, ExprStmt):
        add(node.expr)
    elif isinstance(node, Block):
        for s in node.stmts:
            add(s)
    elif isinstance(node, If):
        add(node.cond)
        add(node.then)
        add(node.other)
    elif isinstance(node, While):
        add(node.cond)
        add(node.body)
    elif isinstance(node, For):
        add(node.init)
        add(node.cond)
        add(node.step)
        add(node.body)
    elif isinstance(node, Return):
        add(node.value)
    elif isinstance(node, BinOp):
        add(node.left)
        add(node.right)
    elif isinstance(node, UnOp):
        add(node.operand)
    elif isinstance(node, Assign):
        add(node.target)
        add(node.value)
    elif isinstance(node, Cond):
        add(node.cond)
        add(node.then)
        add(node.other)
    elif isinstance(node, Call):
        for a in node.args:
            add(a)
    elif isinstance(node, Index):
        add(node.base)
        for i in node.indices:
            add(i)
    elif isinstance(node, Cast):
        add(node.type)
        add(node.expr)
    return out


def walk(node: Node):
    """Yield ``node`` and all descendants, pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(children(current)))
