"""Tokenizer for the mini-C dialect dPerf analyzes.

The dialect covers the subset of C99 the obstacle-problem code uses:
scalar types, (variable-length) arrays, the usual operators and
control flow, function definitions, and calls into the P2PSAP / MPI /
PAPI APIs.  Preprocessor lines are skipped (recorded for fidelity, not
interpreted — the analyzed sources are single-file).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "void", "int", "long", "float", "double", "char",
    "if", "else", "while", "for", "return", "break", "continue",
    "const",
}

# Longest first so the scanner is greedy.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=",
    "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'string' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


class LexError(SyntaxError):
    pass


class Lexer:
    def __init__(self, source: str, filename: str = "<source>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self.preprocessor_lines: List[str] = []

    def error(self, msg: str) -> LexError:
        return LexError(f"{self.filename}:{self.line}:{self.col}: {msg}")

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def tokens(self) -> Iterator[Token]:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            # whitespace
            if ch in " \t\r\n":
                self._advance()
                continue
            # preprocessor line: record and skip to EOL
            if ch == "#" and self.col == 1:
                start = self.pos
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
                self.preprocessor_lines.append(src[start:self.pos])
                continue
            # comments
            if ch == "/" and self._peek(1) == "/":
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(src) and not (
                    src[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(src):
                    raise self.error("unterminated block comment")
                self._advance(2)
                continue
            line, col = self.line, self.col
            # identifiers / keywords
            if ch.isalpha() or ch == "_":
                start = self.pos
                while self.pos < len(src) and (
                    src[self.pos].isalnum() or src[self.pos] == "_"
                ):
                    self._advance()
                text = src[start:self.pos]
                kind = "keyword" if text in KEYWORDS else "ident"
                yield Token(kind, text, line, col)
                continue
            # numbers
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._number(line, col)
                continue
            # strings
            if ch == '"':
                yield self._string(line, col)
                continue
            if ch == "'":
                yield self._char(line, col)
                continue
            # operators / punctuation
            for op in OPERATORS:
                if src.startswith(op, self.pos):
                    self._advance(len(op))
                    yield Token("op", op, line, col)
                    break
            else:
                raise self.error(f"unexpected character {ch!r}")
        yield Token("eof", "", self.line, self.col)

    def _number(self, line: int, col: int) -> Token:
        src = self.source
        start = self.pos
        is_float = False
        while self.pos < len(src) and src[self.pos].isdigit():
            self._advance()
        if self._peek() == "." :
            is_float = True
            self._advance()
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance()
        if self._peek() in ("e", "E"):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if not self._peek().isdigit():
                raise self.error("malformed exponent")
            while self.pos < len(src) and src[self.pos].isdigit():
                self._advance()
        text = src[start:self.pos]
        # suffixes (f, L, u) tolerated and dropped
        while self._peek() in ("f", "F", "l", "L", "u", "U"):
            if self._peek() in ("f", "F"):
                is_float = True
            self._advance()
        return Token("float" if is_float else "int", text, line, col)

    def _string(self, line: int, col: int) -> Token:
        src = self.source
        self._advance()  # opening quote
        out = []
        while True:
            if self.pos >= len(src):
                raise self.error("unterminated string literal")
            ch = src[self.pos]
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                mapping = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "0": "\0"}
                out.append(mapping.get(esc, esc))
                self._advance()
                continue
            out.append(ch)
            self._advance()
        return Token("string", "".join(out), line, col)

    def _char(self, line: int, col: int) -> Token:
        src = self.source
        self._advance()
        if self.pos >= len(src):
            raise self.error("unterminated char literal")
        ch = src[self.pos]
        if ch == "\\":
            self._advance()
            esc = self._peek()
            mapping = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", "0": "\0"}
            ch = mapping.get(esc, esc)
        self._advance()
        if self._peek() != "'":
            raise self.error("unterminated char literal")
        self._advance()
        return Token("int", str(ord(ch)), line, col)


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Tokenize the full source; raises :class:`LexError` on bad input."""
    return list(Lexer(source, filename).tokens())
