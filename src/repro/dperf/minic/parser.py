"""Recursive-descent parser for the mini-C dialect.

Produces the AST defined in :mod:`repro.dperf.minic.cast`.  Operator
precedence follows C.  Function prototypes are accepted and recorded
but produce no definition node.
"""

from __future__ import annotations

from typing import List, Optional

from . import cast as A
from .lexer import Lexer, Token

TYPE_NAMES = {"void", "int", "long", "float", "double", "char"}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}

# binary precedence, higher binds tighter
_BIN_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class ParseError(SyntaxError):
    pass


class Parser:
    def __init__(self, source: str, filename: str = "<source>") -> None:
        lexer = Lexer(source, filename)
        self.tokens: List[Token] = list(lexer.tokens())
        self.preprocessor = lexer.preprocessor_lines
        self.filename = filename
        self.pos = 0
        self.prototypes: List[str] = []

    # -- token helpers ------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def at_op(self, *texts: str) -> bool:
        tok = self.peek()
        return tok.kind == "op" and tok.text in texts

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise self.error(f"expected {want!r}, found {tok.text or tok.kind!r}")
        return self.next()

    def error(self, msg: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{self.filename}:{tok.line}:{tok.col}: {msg}")

    def _at_type(self) -> bool:
        tok = self.peek()
        if tok.kind == "keyword" and tok.text == "const":
            tok = self.peek(1)
        return tok.kind == "keyword" and tok.text in TYPE_NAMES

    # -- top level ------------------------------------------------------------
    def parse_program(self) -> A.Program:
        prog = A.Program(preprocessor=self.preprocessor)
        while not self.at("eof"):
            if not self._at_type():
                raise self.error("expected a declaration or function definition")
            ctype = self._parse_type()
            name_tok = self.expect("ident")
            if self.at_op("("):
                item = self._parse_func_rest(ctype, name_tok)
                if item is not None:
                    prog.funcs.append(item)
            else:
                prog.globals.append(self._parse_decl_rest(ctype, name_tok))
        return prog

    def _parse_type(self) -> A.CType:
        if self.at("keyword", "const"):
            self.next()  # const is accepted and ignored (no mutation check)
        tok = self.expect("keyword")
        if tok.text not in TYPE_NAMES:
            raise self.error(f"unknown type {tok.text!r}")
        return A.CType(tok.line, tok.col, tok.text)

    def _parse_func_rest(self, ctype: A.CType, name_tok: Token) -> Optional[A.FuncDef]:
        self.expect("op", "(")
        params: List[A.Param] = []
        if not self.at_op(")"):
            if self.at("keyword", "void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    params.append(self._parse_param())
                    if self.at_op(","):
                        self.next()
                        continue
                    break
        self.expect("op", ")")
        if self.at_op(";"):  # prototype
            self.next()
            self.prototypes.append(name_tok.text)
            return None
        body = self._parse_block()
        return A.FuncDef(
            name_tok.line, name_tok.col, name_tok.text, ctype, params, body
        )

    def _parse_param(self) -> A.Param:
        ctype = self._parse_type()
        pointer = False
        if self.at_op("*"):  # ``double *u`` treated as 1-D array param
            self.next()
            pointer = True
        tok = self.expect("ident")
        dims: List[Optional[A.Expr]] = [None] if pointer else []
        while self.at_op("["):
            self.next()
            if self.at_op("]"):
                dims.append(None)
            else:
                dims.append(self._parse_expr())
            self.expect("op", "]")
        return A.Param(tok.line, tok.col, tok.text, ctype, dims)

    def _parse_decl_rest(self, ctype: A.CType, name_tok: Token) -> A.DeclStmt:
        """Parse declarators after ``type name`` (name already consumed)."""
        decls = [self._parse_declarator(ctype, name_tok)]
        while self.at_op(","):
            self.next()
            tok = self.expect("ident")
            decls.append(self._parse_declarator(ctype, tok))
        self.expect("op", ";")
        return A.DeclStmt(name_tok.line, name_tok.col, decls)

    def _parse_declarator(self, ctype: A.CType, name_tok: Token) -> A.VarDecl:
        dims: List[A.Expr] = []
        while self.at_op("["):
            self.next()
            dims.append(self._parse_expr())
            self.expect("op", "]")
        init = None
        if self.at_op("="):
            self.next()
            init = self._parse_assignment()
        return A.VarDecl(name_tok.line, name_tok.col, name_tok.text, ctype, dims, init)

    # -- statements --------------------------------------------------------------
    def _parse_block(self) -> A.Block:
        open_tok = self.expect("op", "{")
        stmts: List[A.Stmt] = []
        while not self.at_op("}"):
            if self.at("eof"):
                raise self.error("unterminated block")
            stmts.append(self._parse_stmt())
        self.expect("op", "}")
        return A.Block(open_tok.line, open_tok.col, stmts)

    def _parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if self.at_op("{"):
            return self._parse_block()
        if self.at_op(";"):
            self.next()
            return A.Empty(tok.line, tok.col)
        if self._at_type():
            ctype = self._parse_type()
            name_tok = self.expect("ident")
            return self._parse_decl_rest(ctype, name_tok)
        if self.at("keyword", "if"):
            return self._parse_if()
        if self.at("keyword", "while"):
            return self._parse_while()
        if self.at("keyword", "for"):
            return self._parse_for()
        if self.at("keyword", "return"):
            self.next()
            value = None if self.at_op(";") else self._parse_expr()
            self.expect("op", ";")
            return A.Return(tok.line, tok.col, value)
        if self.at("keyword", "break"):
            self.next()
            self.expect("op", ";")
            return A.Break(tok.line, tok.col)
        if self.at("keyword", "continue"):
            self.next()
            self.expect("op", ";")
            return A.Continue(tok.line, tok.col)
        expr = self._parse_expr()
        self.expect("op", ";")
        return A.ExprStmt(tok.line, tok.col, expr)

    def _parse_if(self) -> A.If:
        tok = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        then = self._parse_stmt()
        other = None
        if self.at("keyword", "else"):
            self.next()
            other = self._parse_stmt()
        return A.If(tok.line, tok.col, cond, then, other)

    def _parse_while(self) -> A.While:
        tok = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        body = self._parse_stmt()
        return A.While(tok.line, tok.col, cond, body)

    def _parse_for(self) -> A.For:
        tok = self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[A.Stmt] = None
        if not self.at_op(";"):
            if self._at_type():
                ctype = self._parse_type()
                name_tok = self.expect("ident")
                init = self._parse_decl_rest(ctype, name_tok)  # consumes ';'
            else:
                expr = self._parse_expr()
                self.expect("op", ";")
                init = A.ExprStmt(expr.line, expr.col, expr)
        else:
            self.next()
        cond = None
        if not self.at_op(";"):
            cond = self._parse_expr()
        self.expect("op", ";")
        step = None
        if not self.at_op(")"):
            step = self._parse_expr()
        self.expect("op", ")")
        body = self._parse_stmt()
        return A.For(tok.line, tok.col, init, cond, step, body)

    # -- expressions -----------------------------------------------------------
    def _parse_expr(self) -> A.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_ternary()
        if self.at("op") and self.peek().text in ASSIGN_OPS:
            op_tok = self.next()
            if not isinstance(left, (A.Ident, A.Index)):
                raise self.error("assignment target must be a variable or element")
            value = self._parse_assignment()  # right-associative
            return A.Assign(op_tok.line, op_tok.col, op_tok.text, left, value)
        return left

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(1)
        if self.at_op("?"):
            tok = self.next()
            then = self._parse_assignment()
            self.expect("op", ":")
            other = self._parse_assignment()
            return A.Cond(tok.line, tok.col, cond, then, other)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            prec = _BIN_PREC.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self._parse_binary(prec + 1)
            left = A.BinOp(tok.line, tok.col, tok.text, left, right)

    def _parse_unary(self) -> A.Expr:
        tok = self.peek()
        if self.at_op("-", "!", "~", "+"):
            self.next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return A.UnOp(tok.line, tok.col, tok.text, operand)
        if self.at_op("++", "--"):
            self.next()
            operand = self._parse_unary()
            return A.UnOp(tok.line, tok.col, tok.text, operand, postfix=False)
        # cast: '(' type ')' unary
        if self.at_op("(") and self.peek(1).kind == "keyword" \
                and self.peek(1).text in TYPE_NAMES and self.peek(2).text == ")":
            self.next()
            ctype = self._parse_type()
            self.expect("op", ")")
            expr = self._parse_unary()
            return A.Cast(tok.line, tok.col, ctype, expr)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.peek()
            if self.at_op("("):
                if not isinstance(expr, A.Ident):
                    raise self.error("only direct calls are supported")
                self.next()
                args: List[A.Expr] = []
                if not self.at_op(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if self.at_op(","):
                            self.next()
                            continue
                        break
                self.expect("op", ")")
                expr = A.Call(expr.line, expr.col, expr.name, args)
            elif self.at_op("["):
                if isinstance(expr, A.Index):
                    self.next()
                    expr.indices.append(self._parse_expr())
                    self.expect("op", "]")
                elif isinstance(expr, A.Ident):
                    self.next()
                    idx = self._parse_expr()
                    self.expect("op", "]")
                    expr = A.Index(expr.line, expr.col, expr, [idx])
                else:
                    raise self.error("cannot index this expression")
            elif self.at_op("++", "--"):
                self.next()
                expr = A.UnOp(tok.line, tok.col, tok.text, expr, postfix=True)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return A.IntLit(tok.line, tok.col, int(tok.text, 0))
        if tok.kind == "float":
            self.next()
            return A.FloatLit(tok.line, tok.col, float(tok.text))
        if tok.kind == "string":
            self.next()
            return A.StringLit(tok.line, tok.col, tok.text)
        if tok.kind == "ident":
            self.next()
            return A.Ident(tok.line, tok.col, tok.text)
        if self.at_op("("):
            self.next()
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text or tok.kind!r}")


def parse(source: str, filename: str = "<source>") -> A.Program:
    """Parse mini-C source text into a :class:`~cast.Program`."""
    return Parser(source, filename).parse_program()


def parse_expr(source: str) -> A.Expr:
    """Parse a single expression (testing convenience)."""
    parser = Parser(source)
    expr = parser._parse_expr()
    parser.expect("eof")
    return expr
