"""Mini-C frontend: lexer, parser, AST, CFG, and static analyses.

This subpackage plays the role of the Rose compiler infrastructure in
dPerf (paper Fig. 7): it turns C source text into an AST, decomposes
it into basic blocks, discovers communication calls, and unparses
transformed ASTs back to source.
"""

from . import cast
from .analysis import (
    CommCallSite,
    analyze_function,
    call_graph,
    count_operations,
    def_use,
    estimate_trip_count,
    find_comm_calls,
    loop_depth_map,
)
from .cfg import BasicBlock, Cfg, build_cfg
from .fortran import FortranError, parse_fortran
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse, parse_expr
from .semantics import BUILTINS, COMM_APIS, PAPI_APIS, SemanticError, check
from .unparser import expr_text, unparse

__all__ = [
    "BUILTINS",
    "BasicBlock",
    "COMM_APIS",
    "Cfg",
    "CommCallSite",
    "FortranError",
    "LexError",
    "PAPI_APIS",
    "ParseError",
    "SemanticError",
    "Token",
    "analyze_function",
    "build_cfg",
    "call_graph",
    "cast",
    "check",
    "count_operations",
    "def_use",
    "estimate_trip_count",
    "expr_text",
    "find_comm_calls",
    "loop_depth_map",
    "parse",
    "parse_expr",
    "parse_fortran",
    "tokenize",
    "unparse",
]
