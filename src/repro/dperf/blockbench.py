"""Block benchmarking: from execution skeletons to scaled traces.

dPerf's block-benchmarking technique (paper §III-D2 and [6]) measures
each basic block once on a small *calibration* run and scales the
measurements up to the full problem "while maintaining accuracy".  We
implement the scale-up in two orthogonal steps:

1. **Census scaling** — each block's operation counts are multiplied
   by the ratio of its enclosing compute-loop trip counts evaluated
   under target vs calibration parameters (``n``-scaling).  Message
   sizes are re-evaluated from their recorded count *expressions*.

2. **Iteration tiling** — the application marks its time loop with
   ``dperf_region_begin/end("iter")``; the steady-state cycle of
   iterations from the calibration run is tiled out to the target
   iteration count (``nit``-scaling), preserving the periodic pattern
   (e.g. a convergence allreduce every k-th iteration).

Finally :func:`materialize` prices each census with the machine model
at a chosen GCC optimization level, producing `repro.simx` traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..simx.traces import AllReduce, Barrier, Compute, Recv, Send, Trace, TraceEvent
from .costmodel import MachineModel
from .gcc import GccModel
from .instrument import BlockTable
from .minic import cast as A
from .minic.analysis import estimate_trip_count
from .papi import UNATTRIBUTED, Census, CommRecord, ComputeGap, RegionMark


class ScaleError(ValueError):
    pass


def eval_affine(expr: Optional[A.Expr], env: Mapping[str, float]) -> Optional[float]:
    """Evaluate an affine-ish expression under parameter bindings."""
    if expr is None:
        return None
    if isinstance(expr, A.IntLit):
        return float(expr.value)
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.Ident):
        return env.get(expr.name)
    if isinstance(expr, A.UnOp) and expr.op == "-":
        v = eval_affine(expr.operand, env)
        return -v if v is not None else None
    if isinstance(expr, A.Cast):
        return eval_affine(expr.expr, env)
    if isinstance(expr, A.BinOp):
        l = eval_affine(expr.left, env)
        r = eval_affine(expr.right, env)
        if l is None or r is None:
            return None
        if expr.op == "+":
            return l + r
        if expr.op == "-":
            return l - r
        if expr.op == "*":
            return l * r
        if expr.op == "/":
            return l / r if r else None
    return None


def block_scale_factor(
    info, env_cal: Mapping[str, float], env_target: Mapping[str, float]
) -> float:
    """Work multiplier for one block: product of enclosing compute-loop
    trip-count ratios.  Loops we cannot resolve contribute factor 1
    (their trip count is assumed instance-independent)."""
    factor = 1.0
    for loop in info.enclosing_loops:
        trips_cal = estimate_trip_count(loop, env_cal)
        trips_target = estimate_trip_count(loop, env_target)
        if trips_cal and trips_target and trips_cal > 0:
            factor *= trips_target / trips_cal
    return factor


def scale_entries(
    entries: Sequence[object],
    table: BlockTable,
    env_cal: Mapping[str, float],
    env_target: Mapping[str, float],
) -> List[object]:
    """Apply census scaling + message-size re-evaluation to a skeleton."""
    factors: Dict[int, float] = {}
    out: List[object] = []
    for entry in entries:
        if isinstance(entry, ComputeGap):
            gap = ComputeGap()
            for bid, census in entry.by_block.items():
                f = factors.get(bid)
                if f is None:
                    f = (
                        1.0
                        if bid == UNATTRIBUTED
                        else block_scale_factor(table.info(bid), env_cal, env_target)
                    )
                    factors[bid] = f
                gap.by_block[bid] = census.scaled(f)
            out.append(gap)
        elif isinstance(entry, CommRecord):
            count = entry.count
            if entry.count_expr is not None:
                new_count = eval_affine(entry.count_expr, env_target)
                if new_count is not None:
                    count = int(round(new_count))
            out.append(
                CommRecord(
                    api=entry.api, kind=entry.kind, peer=entry.peer,
                    count=count, count_expr=entry.count_expr,
                    elem_bytes=entry.elem_bytes, tag=entry.tag,
                )
            )
        else:
            out.append(entry)
    return out


@dataclass
class _Split:
    prologue: List[object]
    iterations: List[List[object]]
    epilogue: List[object]


def split_by_region(entries: Sequence[object], region: str) -> _Split:
    """Split a skeleton into prologue / marked iterations / epilogue."""
    prologue: List[object] = []
    iterations: List[List[object]] = []
    epilogue: List[object] = []
    current: Optional[List[object]] = None
    seen_any = False
    for entry in entries:
        if isinstance(entry, RegionMark) and entry.name == region:
            if entry.which == "begin":
                if current is not None:
                    raise ScaleError(f"nested region {region!r} markers")
                current = []
                seen_any = True
            else:
                if current is None:
                    raise ScaleError(f"region {region!r} end without begin")
                iterations.append(current)
                current = None
            continue
        if current is not None:
            current.append(entry)
        elif not seen_any:
            prologue.append(entry)
        else:
            epilogue.append(entry)
    if current is not None:
        raise ScaleError(f"region {region!r} begin without end")
    return _Split(prologue, iterations, epilogue)


def tile_iterations(
    entries: Sequence[object],
    region: str,
    nit_target: int,
    cycle_len: int = 1,
    warmup_cycles: int = 1,
) -> List[object]:
    """Tile the steady-state iteration cycle out to ``nit_target``.

    The calibration run must contain at least ``(warmup_cycles + 1) *
    cycle_len`` marked iterations; the cycle starting right after the
    warm-up (phase-aligned to iteration index 0 modulo ``cycle_len``)
    becomes the template.
    """
    if nit_target < 0:
        raise ScaleError("negative target iteration count")
    split = split_by_region(entries, region)
    n_cal = len(split.iterations)
    needed = (warmup_cycles + 1) * cycle_len
    if n_cal < needed:
        raise ScaleError(
            f"calibration run has {n_cal} iterations of region {region!r};"
            f" scale-up needs at least {needed}"
            f" ({warmup_cycles} warm-up cycles + 1 template cycle of"
            f" {cycle_len})"
        )
    start = warmup_cycles * cycle_len
    template = split.iterations[start:start + cycle_len]
    out: List[object] = list(split.prologue)
    for it in range(nit_target):
        out.extend(template[it % cycle_len])
    out.extend(split.epilogue)
    return out


# --------------------------------------------------------------------------
# Materialization: skeleton → simx trace events
# --------------------------------------------------------------------------

def gap_ns(
    gap: ComputeGap,
    table: BlockTable,
    machine: MachineModel,
    gcc: GccModel,
) -> float:
    total = 0.0
    for bid, census in gap.by_block.items():
        info = table.info(bid)
        total += machine.census_ns(census, gcc.factors(info.vectorizable))
    return total


def materialize(
    entries: Sequence[object],
    table: BlockTable,
    machine: MachineModel,
    gcc: GccModel,
) -> List[TraceEvent]:
    """Price a skeleton at one optimization level → trace events."""
    events: List[TraceEvent] = []
    pending_ns = 0.0

    def flush() -> None:
        nonlocal pending_ns
        if pending_ns > 0.0:
            events.append(Compute(pending_ns))
            pending_ns = 0.0

    for entry in entries:
        if isinstance(entry, ComputeGap):
            pending_ns += gap_ns(entry, table, machine, gcc)
        elif isinstance(entry, CommRecord):
            flush()
            if entry.kind == "send":
                events.append(Send(entry.peer, entry.size_bytes, entry.tag))
            elif entry.kind == "isend":
                events.append(
                    Send(entry.peer, entry.size_bytes, entry.tag, blocking=False)
                )
            elif entry.kind == "recv":
                events.append(Recv(entry.peer, entry.tag))
            elif entry.kind == "barrier":
                events.append(Barrier())
            elif entry.kind == "allreduce":
                events.append(AllReduce(entry.size_bytes))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown comm kind {entry.kind!r}")
        elif isinstance(entry, RegionMark):
            continue
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown skeleton entry {entry!r}")
    flush()
    return events


@dataclass(frozen=True)
class ScalePlan:
    """How to scale a calibration skeleton to the target instance."""

    env_cal: Mapping[str, float]
    env_target: Mapping[str, float]
    nit_target: int
    region: str = "iter"
    cycle_len: int = 1
    warmup_cycles: int = 1


def scale_skeleton(
    entries: Sequence[object], table: BlockTable, plan: ScalePlan
) -> List[object]:
    """Full scale-up: iteration tiling then census/message scaling."""
    tiled = tile_iterations(
        entries, plan.region, plan.nit_target, plan.cycle_len, plan.warmup_cycles
    )
    return scale_entries(tiled, table, plan.env_cal, plan.env_target)
