"""The end-to-end dPerf pipeline (paper Fig. 6).

``source → static analysis → instrumentation → execution of the
instrumented code → (scaled) trace files → trace-based network
simulation → t_predicted``

:class:`DPerfPredictor` wires the stages together; every intermediate
artifact (instrumented source, traces) is exposed so experiments can
inspect or persist them, exactly like dPerf's on-disk workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..net import Host, TcpModel
from ..platforms import PlatformSpec
from ..simx import ReplayResult, Trace, replay_traces
from .blockbench import ScalePlan, materialize, scale_skeleton
from .costmodel import REFERENCE_MACHINE, MachineModel
from .gcc import GccModel, parse_level
from .instrument import BlockTable, instrument
from .interp import RankRun, run_distributed, run_single
from .minic import cast as A
from .minic.parser import parse
from .minic.semantics import check
from .minic.unparser import unparse


@dataclass
class PredictionResult:
    """Outcome of one dPerf prediction."""

    t_predicted: float
    opt_level: str
    platform: str
    nprocs: int
    replay: ReplayResult
    traces: List[Trace] = field(repr=False, default_factory=list)


class DPerfPredictor:
    """Performance prediction for one application source.

    Parameters
    ----------
    source:
        mini-C source text (C with P2PSAP/MPI communication calls).
    entry:
        name of the per-rank entry function.
    machine:
        reference machine model (defaults to the paper's 3 GHz Xeon).
    """

    def __init__(
        self,
        source: str,
        entry: str,
        machine: MachineModel = REFERENCE_MACHINE,
        language: str = "c",
    ) -> None:
        self.source = source
        self.entry = entry
        self.machine = machine
        self.language = language
        # Stage 1: static analysis (parse + checks).
        if language == "c":
            self.program: A.Program = parse(source)
        elif language == "fortran":
            from .minic.fortran import parse_fortran

            self.program = parse_fortran(source)
        else:
            raise ValueError(
                f"unsupported language {language!r} (use 'c' or 'fortran')"
            )
        check(self.program)
        if entry not in self.program.func_names:
            raise ValueError(f"entry function {entry!r} not found in source")
        # Stage 2: automatic instrumentation.
        self.instrumented, self.block_table = instrument(self.program)
        check(self.instrumented)

    # -- artifacts -----------------------------------------------------------
    @property
    def instrumented_source(self) -> str:
        """The unparsed instrumented program (dPerf's transformed code)."""
        return unparse(self.instrumented)

    # -- stage 3: execution ---------------------------------------------------
    def execute(
        self,
        nprocs: int,
        args: Sequence | Callable[[int], Sequence] = (),
        max_steps: Optional[int] = None,
        timeout: float = 300.0,
    ) -> List[RankRun]:
        """Run the instrumented code on ``nprocs`` ranks (calibration)."""
        if nprocs == 1:
            run_args = args(0) if callable(args) else list(args)
            return [
                run_single(
                    self.instrumented, self.entry, run_args,
                    self.block_table, max_steps,
                )
            ]
        return run_distributed(
            self.instrumented, self.entry, nprocs, args,
            self.block_table, max_steps, timeout,
        )

    # -- stage 4: trace generation ------------------------------------------------
    def traces_for(
        self,
        runs: Sequence[RankRun],
        opt_level: str | int,
        scale: Optional[ScalePlan] = None,
        app: str = "app",
        extra_meta: Optional[Mapping[str, str]] = None,
    ) -> List[Trace]:
        """Price skeletons at one GCC level, optionally scaled up."""
        level = parse_level(opt_level)
        gcc = GccModel(level)
        traces = []
        for run in runs:
            entries = run.entries
            if scale is not None:
                entries = scale_skeleton(entries, self.block_table, scale)
            events = materialize(entries, self.block_table, self.machine, gcc)
            meta = {"opt_level": level, "entry": self.entry}
            if extra_meta:
                meta.update(extra_meta)
            traces.append(
                Trace(
                    rank=run.rank, nprocs=len(runs), events=events,
                    app=app, meta=meta,
                )
            )
        return traces

    # -- stage 5: trace-based simulation ---------------------------------------------
    def predict(
        self,
        traces: Sequence[Trace],
        platform: PlatformSpec,
        hosts: Optional[Sequence[Host]] = None,
        tcp: TcpModel = TcpModel(),
    ) -> PredictionResult:
        """Replay traces on a platform → ``t_predicted``."""
        replay = replay_traces(
            traces, platform, hosts=hosts, tcp=tcp,
            reference_speed=self.machine.clock_hz,
        )
        return PredictionResult(
            t_predicted=replay.t_predicted,
            opt_level=traces[0].meta.get("opt_level", "?") if traces else "?",
            platform=platform.name,
            nprocs=len(traces),
            replay=replay,
            traces=list(traces),
        )

    # -- convenience: full pipeline ---------------------------------------------------
    def predict_end_to_end(
        self,
        nprocs: int,
        platform: PlatformSpec,
        opt_level: str | int = "O0",
        args: Sequence | Callable[[int], Sequence] = (),
        scale: Optional[ScalePlan] = None,
        hosts: Optional[Sequence[Host]] = None,
        tcp: TcpModel = TcpModel(),
        app: str = "app",
        max_steps: Optional[int] = None,
    ) -> PredictionResult:
        runs = self.execute(nprocs, args, max_steps=max_steps)
        traces = self.traces_for(runs, opt_level, scale=scale, app=app)
        return self.predict(traces, platform, hosts=hosts, tcp=tcp)


def predict_many_levels(
    predictor: DPerfPredictor,
    runs: Sequence[RankRun],
    platform: PlatformSpec,
    levels: Sequence[str | int] = ("O0", "O1", "O2", "O3", "Os"),
    scale: Optional[ScalePlan] = None,
    hosts: Optional[Sequence[Host]] = None,
    tcp: TcpModel = TcpModel(),
    app: str = "app",
) -> Dict[str, PredictionResult]:
    """One calibration execution, predictions at every GCC level —
    the cheap sweep the census representation makes possible."""
    out: Dict[str, PredictionResult] = {}
    for level in levels:
        traces = predictor.traces_for(runs, level, scale=scale, app=app)
        out[parse_level(level)] = predictor.predict(
            traces, platform, hosts=hosts, tcp=tcp
        )
    return out
