"""Emulated PAPI hardware counters and execution-skeleton recording.

The real dPerf reads nanosecond timings from hardware counters via
PAPI while the instrumented code runs.  Our interpreter instead counts
*operations per basic block* (the census); nanoseconds are derived
later by the cost model at each GCC optimization level.  This module
holds the recording structures:

* :class:`Census` — operation counts by category;
* :class:`ComputeGap` — census accumulated between two communication
  events, attributed per instrumented block;
* :class:`CommRecord` / :class:`RegionMark` — communication calls and
  iteration-region markers in program order;
* :class:`SkeletonRecorder` — the per-rank recorder the interpreter
  writes into (the "virtual PAPI" of one process).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

#: Operation categories charged by the interpreter.
CATEGORIES = (
    "scalar_load",   # read of a named scalar variable
    "scalar_store",  # write of a named scalar variable
    "mem_load",      # array element read
    "mem_store",     # array element write
    "addr",          # address arithmetic per index expression
    "fp_add",        # float add/sub
    "fp_mul",
    "fp_div",
    "int_op",        # integer ALU / logical
    "branch",        # conditional evaluated
    "call",          # user-function call overhead
)

#: Block id for work executed outside any instrumented block
#: (loop-control expressions, function prologues).
UNATTRIBUTED = -1


class Census(Dict[str, float]):
    """Operation counts by category (``builtin:<name>`` also allowed)."""

    def add(self, category: str, n: float = 1.0) -> None:
        self[category] = self.get(category, 0.0) + n

    def merge(self, other: "Census", factor: float = 1.0) -> None:
        for cat, cnt in other.items():
            self[cat] = self.get(cat, 0.0) + cnt * factor

    def scaled(self, factor: float) -> "Census":
        out = Census()
        for cat, cnt in self.items():
            out[cat] = cnt * factor
        return out

    @property
    def total_ops(self) -> float:
        return sum(self.values())


@dataclass
class ComputeGap:
    """Computation between comm events: census per instrumented block."""

    by_block: Dict[int, Census] = field(default_factory=dict)

    def census_for(self, block_id: int) -> Census:
        census = self.by_block.get(block_id)
        if census is None:
            census = Census()
            self.by_block[block_id] = census
        return census

    @property
    def is_empty(self) -> bool:
        return all(not c for c in self.by_block.values())

    @property
    def total_ops(self) -> float:
        return sum(c.total_ops for c in self.by_block.values())


@dataclass
class CommRecord:
    """One communication call with its runtime parameters.

    ``count_expr`` keeps the *source expression* of the element count
    so the scale-up stage can re-evaluate it under target parameters
    (dPerf records "relevant parameters for communication calls").
    """

    api: str                       # p2psap_send / MPI_Recv / ...
    kind: str                      # send|isend|recv|barrier|allreduce
    peer: Optional[int] = None     # absolute rank, resolved at runtime
    count: int = 0                 # elements, as executed
    count_expr: Optional[object] = None  # minic AST of the count argument
    elem_bytes: int = 8
    tag: str = "msg"

    @property
    def size_bytes(self) -> int:
        return self.count * self.elem_bytes


@dataclass
class RegionMark:
    """``dperf_region_begin/end`` marker (iteration-structure hints)."""

    name: str
    which: str  # "begin" | "end"


SkeletonEntry = Union[ComputeGap, CommRecord, RegionMark]


class SkeletonRecorder:
    """Per-rank recorder: ops go into the open gap; comm closes it."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.entries: List[SkeletonEntry] = []
        self._gap = ComputeGap()
        self._block_stack: List[int] = []
        self.block_exec_counts: Dict[int, int] = {}
        # hot path: the census dict ops are charged into right now
        # (invariant: _active is _gap.census_for(current_block))
        self._active: Census = self._gap.census_for(UNATTRIBUTED)

    # -- block attribution --------------------------------------------------
    @property
    def current_block(self) -> int:
        return self._block_stack[-1] if self._block_stack else UNATTRIBUTED

    def block_begin(self, block_id: int) -> None:
        self._block_stack.append(block_id)
        self.block_exec_counts[block_id] = (
            self.block_exec_counts.get(block_id, 0) + 1
        )
        self._active = self._gap.census_for(block_id)

    def block_end(self, block_id: int) -> None:
        if not self._block_stack or self._block_stack[-1] != block_id:
            raise RuntimeError(
                f"papi_block_end({block_id}) without matching begin "
                f"(stack {self._block_stack})"
            )
        self._block_stack.pop()
        self._active = self._gap.census_for(self.current_block)

    def attr_push(self, block_id: int) -> None:
        """Temporarily attribute ops to ``block_id`` (loop control);
        does not count as a block execution."""
        self._block_stack.append(block_id)
        self._active = self._gap.census_for(block_id)

    def attr_pop(self) -> None:
        self._block_stack.pop()
        self._active = self._gap.census_for(self.current_block)

    # -- op charging ----------------------------------------------------------
    def charge(self, category: str, n: float = 1.0) -> None:
        active = self._active
        active[category] = active.get(category, 0.0) + n

    # -- events ---------------------------------------------------------------
    def _flush_gap(self) -> None:
        if not self._gap.is_empty:
            self.entries.append(self._gap)
        self._gap = ComputeGap()
        self._active = self._gap.census_for(self.current_block)

    def comm(self, record: CommRecord) -> None:
        self._flush_gap()
        self.entries.append(record)

    def region(self, name: str, which: str) -> None:
        self._flush_gap()
        self.entries.append(RegionMark(name, which))

    def finish(self) -> List[SkeletonEntry]:
        self._flush_gap()
        if self._block_stack:
            raise RuntimeError(f"unclosed papi blocks: {self._block_stack}")
        return self.entries

    # -- aggregate view ---------------------------------------------------------
    def total_census(self) -> Census:
        total = Census()
        for entry in self.entries:
            if isinstance(entry, ComputeGap):
                for census in entry.by_block.values():
                    total.merge(census)
        for census in self._gap.by_block.values():
            total.merge(census)
        return total
