"""The one ``--set`` grammar shared by every CLI.

``python -m repro.scenarios sweep --set path=v1,v2`` and
``python -m repro.serve query --set path=value`` used to carry their
own parsers; this module is the single owner of both forms, so a
value spells the same typed thing everywhere — ``recovery.election=
true`` is the boolean ``True`` whether it shapes a sweep grid or an
SLO query (the cross-CLI parity contract of
``tests/test_cli_params.py``).

All helpers raise ``ValueError`` on malformed input; each CLI wraps
that into its own clean usage error.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple


def parse_value(text: str) -> Any:
    """One ``--set`` value: bool, int, float, or bare string.

    Booleans first (``true``/``false``, case-insensitive) — a bare
    string would be truthy either way and silently lie for boolean
    spec fields like ``recovery.election``.
    """
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_scalar_set(pair: str) -> Tuple[str, Any]:
    """``path=value`` → ``(path, typed value)`` (the query-CLI form)."""
    path, eq, value = pair.partition("=")
    if not eq or not path:
        raise ValueError(f"--set expects path=value, got {pair!r}")
    return path, parse_value(value)


def parse_grid_sets(pairs: Sequence[str]) -> Dict[str, Tuple[Any, ...]]:
    """``path=v1[,v2,...]`` pairs → an expand_grid-shaped mapping
    (the sweep-CLI form; later pairs for the same path win)."""
    grid: Dict[str, Tuple[Any, ...]] = {}
    for pair in pairs:
        path, eq, values = pair.partition("=")
        if not eq or not path or not values:
            raise ValueError(
                f"--set expects path=v1[,v2,...], got {pair!r}"
            )
        grid[path] = tuple(parse_value(v) for v in values.split(","))
    return grid
