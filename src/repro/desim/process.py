"""Generator-based simulation processes with interrupt support."""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import Signal, Waitable


class Interrupt(Exception):
    """Thrown inside a process when another actor interrupts it.

    ``cause`` carries an arbitrary payload (e.g. a failure record).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Waitable):
    """Drives a generator, resuming it whenever its awaited signal fires.

    A ``Process`` is itself waitable: it triggers when the generator
    returns (value = return value) or raises (failure).  Uncaught
    process exceptions propagate to whoever waits on the process; if
    nobody does, :meth:`check` re-raises on demand and the simulator's
    callback raises at the point of death, which makes bugs loud.
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_waiting_on", "_interrupt_pending")

    def __init__(self, sim, gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._done = Signal(f"process:{self.name}")
        self._waiting_on: Optional[Waitable] = None
        self._interrupt_pending: Optional[Interrupt] = None
        # First resume happens as a scheduled event at the current time
        # so process creation order, not call-stack depth, decides order.
        sim.call_later(0.0, self._resume, None, None)

    # -- Waitable ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._done.triggered

    @property
    def ok(self) -> bool:
        return self._done.ok

    @property
    def value(self) -> Any:
        return self._done.value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._done.exception

    @property
    def _value(self) -> Any:
        return self._done._value

    def _subscribe(self, callback) -> None:
        self._done._subscribe(lambda _s: callback(self))

    @property
    def alive(self) -> bool:
        return not self._done.triggered

    # -- driving ----------------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done.triggered:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._done.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self._done.fail(unhandled)
            return
        except Exception as err:
            self._done.fail(err)
            if self._done._callbacks is None and not _has_waiters(self._done):
                pass  # outcome recorded; check() surfaces it
            return
        if not isinstance(target, Waitable):
            self._done.fail(
                TypeError(f"process {self.name!r} yielded non-waitable {target!r}")
            )
            return
        self._waiting_on = target
        target._subscribe(self._on_wait_done)

    def _on_wait_done(self, waitable: Waitable) -> None:
        if self._done.triggered:
            return
        if self._waiting_on is not waitable:
            return  # stale wake-up after an interrupt re-targeted us
        if type(waitable) is Signal:  # the hot wait (mailbox, timeout)
            exc = waitable._exc
        else:
            exc = getattr(waitable, "exception", None)
        if exc is not None:
            self._resume(None, exc)
        else:
            self._resume(getattr(waitable, "_value", None), None)

    # -- interruption -------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting an already-finished process is a no-op (the usual
        race when a failure arrives as a computation completes).
        """
        if self._done.triggered:
            return
        self._waiting_on = None  # detach: any pending wake-up becomes stale
        self.sim.call_later(0.0, self._deliver_interrupt, Interrupt(cause))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self._done.triggered:
            return
        self._resume(None, exc)

    def check(self) -> None:
        """Re-raise the process's exception, if it failed."""
        if self._done.triggered and self._done.exception is not None:
            raise self._done.exception

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


def _has_waiters(sig: Signal) -> bool:
    cbs = sig._callbacks
    return bool(cbs)
