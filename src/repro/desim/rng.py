"""Deterministic, named random streams.

Every stochastic component draws from its own stream derived from a
master seed and a stable name, so adding a new random consumer never
perturbs the draws of existing ones — the classic substream discipline
for reproducible parallel-systems simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed from (master, name) via SHA-256."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Hands out one ``random.Random`` per stream name."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def reset(self) -> None:
        self._streams.clear()
