"""Discrete-event simulation kernel (simpy-like, from scratch).

Public surface::

    sim = Simulator()
    def proc():
        yield sim.timeout(1.0)
        ...
    p = sim.process(proc())
    sim.run()
"""

from .events import AllOf, AnyOf, Signal, Waitable
from .mailbox import Mailbox
from .process import Interrupt, Process
from .rng import RngRegistry, derive_seed
from .simulator import ScheduledCall, Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Mailbox",
    "Process",
    "RngRegistry",
    "ScheduledCall",
    "Signal",
    "Simulator",
    "Waitable",
    "derive_seed",
]
