"""FIFO mailboxes: the message-passing primitive for P2PDC actors."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .events import Signal


class Mailbox:
    """Unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks (peers never drop control messages in the
    model; link contention is simulated in the network layer, not
    here).  ``get`` returns a :class:`Signal` that succeeds with the
    oldest item as soon as one is available.

    Items are delivered in strict FIFO order even when multiple
    getters are queued (getters are served FIFO too).
    """

    __slots__ = ("name", "_items", "_getters", "_get_name")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        # one shared name for every get-signal: a get happens per
        # delivered message, so a per-get f-string is hot-path cost
        self._get_name = f"mailbox-get:{name}"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_getters(self) -> int:
        return len(self._getters)

    def put(self, item: Any) -> None:
        # Hand the item straight to the oldest live getter, else queue it.
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # may have been abandoned/timed out
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Signal:
        sig = Signal(self._get_name)
        if self._items:
            sig.succeed(self._items.popleft())
        else:
            self._getters.append(sig)
        return sig

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def clear(self) -> int:
        """Drop all queued items (e.g. when a node crashes); returns count."""
        n = len(self._items)
        self._items.clear()
        return n
