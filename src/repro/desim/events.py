"""One-shot events (signals) and combinators for the desim kernel.

The kernel follows the classic process-interaction style: a *process*
is a Python generator that yields :class:`Waitable` objects.  A
:class:`Signal` is the fundamental waitable — a one-shot event that is
either untriggered, succeeded with a value, or failed with an
exception.  :class:`AnyOf` / :class:`AllOf` compose signals.

Nothing in this module touches the simulation clock; scheduling lives
in :mod:`repro.desim.simulator`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional


class Waitable:
    """Base class for things a process may ``yield``.

    Subclasses implement ``_subscribe(callback)`` where ``callback`` is
    invoked exactly once with the waitable itself when it completes,
    and expose ``triggered``, ``ok``, ``value``.
    """

    def _subscribe(self, callback: Callable[["Waitable"], None]) -> None:
        raise NotImplementedError

    @property
    def triggered(self) -> bool:
        raise NotImplementedError


class Signal(Waitable):
    """A one-shot event.

    A signal starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` triggers it, wakes every subscriber, and freezes the
    outcome; triggering twice is a programming error and raises
    ``RuntimeError``.
    """

    __slots__ = ("name", "_callbacks", "_value", "_exc", "_state")

    _PENDING, _OK, _FAILED = 0, 1, 2

    def __init__(self, name: str = "") -> None:
        self.name = name
        # Lazy: most signals in a reference run get 0 or 1 subscribers,
        # so the list is only allocated on the second subscription.
        # None means "no subscribers yet" while pending (``_state``
        # owns the triggered/pending distinction).
        self._callbacks: Optional[List[Callable[[Signal], None]]] = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Signal._PENDING

    # -- outcome ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != Signal._PENDING

    @property
    def ok(self) -> bool:
        return self._state == Signal._OK

    @property
    def value(self) -> Any:
        if self._state == Signal._PENDING:
            raise RuntimeError(f"signal {self.name!r} not triggered yet")
        if self._state == Signal._FAILED:
            raise self._exc  # type: ignore[misc]
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Signal":
        # _settle inlined: succeed fires once per delivered message,
        # timeout and transfer — the hottest call in a reference run
        if self._state != Signal._PENDING:
            raise RuntimeError(f"signal {self.name!r} already triggered")
        self._state = Signal._OK
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)
        return self

    def fail(self, exc: BaseException) -> "Signal":
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._settle(Signal._FAILED, None, exc)
        return self

    def _settle(self, state: int, value: Any, exc: Optional[BaseException]) -> None:
        if self._state != Signal._PENDING:
            raise RuntimeError(f"signal {self.name!r} already triggered")
        self._state = state
        self._value = value
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def _subscribe(self, callback: Callable[["Signal"], None]) -> None:
        if self._state != Signal._PENDING:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {0: "pending", 1: "ok", 2: "failed"}[self._state]
        return f"<Signal {self.name!r} {state}>"


class AnyOf(Waitable):
    """Triggers when the *first* of its children triggers.

    ``value`` is ``(index, child_value)`` of the winning child.  A
    failing child propagates its exception.  Children that trigger
    later are ignored (their values are still retrievable from the
    child signals themselves).

    Holds its outcome directly (no inner signal, no per-child lambda
    for the subscription fan-in): a blocked halo receive builds one of
    these per wait, so construction weight is hot-path cost.
    """

    __slots__ = ("_children", "_winner", "_value_", "_exc", "_state",
                 "_callbacks")

    def __init__(self, children: Iterable[Waitable]) -> None:
        self._children = list(children)
        if not self._children:
            raise ValueError("AnyOf requires at least one child")
        self._winner: Optional[int] = None
        self._value_: Any = None
        self._exc: Optional[BaseException] = None
        self._state = Signal._PENDING
        self._callbacks: Optional[List[Callable[[Waitable], None]]] = None
        for i, child in enumerate(self._children):
            child._subscribe(lambda c, i=i: self._on_child(i, c))
            if self._state != Signal._PENDING:
                break  # an already-triggered child settled us inline

    def _on_child(self, index: int, child: Waitable) -> None:
        if self._state != Signal._PENDING:
            return
        self._winner = index
        exc = getattr(child, "exception", None)
        if exc is not None:
            self._state = Signal._FAILED
            self._exc = exc
        else:
            self._state = Signal._OK
            self._value_ = (index, getattr(child, "_value", None))
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    @property
    def winner(self) -> Optional[int]:
        return self._winner

    @property
    def _value(self) -> Any:
        # Uniform resume protocol: processes read `_value` off whatever
        # waitable woke them.
        return self._value_

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    @property
    def triggered(self) -> bool:
        return self._state != Signal._PENDING

    @property
    def value(self) -> Any:
        if self._state == Signal._PENDING:
            raise RuntimeError("AnyOf not triggered yet")
        if self._state == Signal._FAILED:
            raise self._exc  # type: ignore[misc]
        return self._value_

    def _subscribe(self, callback: Callable[[Waitable], None]) -> None:
        if self._state != Signal._PENDING:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AnyOf of {len(self._children)}>"


class AllOf(Waitable):
    """Triggers when *every* child has triggered.

    ``value`` is the list of child values in order.  The first failure
    fails the composite immediately.
    """

    __slots__ = ("_children", "_done", "_remaining")

    def __init__(self, children: Iterable[Waitable]) -> None:
        self._children = list(children)
        self._done = Signal("allof")
        self._remaining = len(self._children)
        if self._remaining == 0:
            self._done.succeed([])
        for child in self._children:
            child._subscribe(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self._done.triggered:
            return
        exc = getattr(child, "exception", None)
        if exc is not None:
            self._done.fail(exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self._done.succeed([getattr(c, "_value", None) for c in self._children])

    @property
    def triggered(self) -> bool:
        return self._done.triggered

    @property
    def value(self) -> Any:
        return self._done.value

    @property
    def _value(self) -> Any:
        return self._done._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._done.exception

    def _subscribe(self, callback: Callable[[Waitable], None]) -> None:
        self._done._subscribe(lambda _s: callback(self))
