"""The desim event loop: a monotonic clock plus a binary-heap agenda.

Time is a ``float`` in **seconds**.  Determinism: events scheduled for
the same instant fire in scheduling order (a monotone sequence number
breaks ties), so a seeded simulation replays identically.

Reference hot path (see DESIGN.md): the agenda stores plain
``(time, seq, call)`` tuples, so heap sift comparisons are C-level
tuple compares instead of ``__lt__`` calls that build tuples on every
comparison.  Cancellation is *lazy* — a cancelled or superseded entry
stays in the heap until it surfaces — with a dead-entry counter that
triggers a compacting rebuild when dead entries dominate, so
cancel-heavy workloads (fluid-flow rate changes, ping/timeout chains)
keep the heap bounded.  :meth:`Simulator.reschedule` re-arms a fired
or cancelled handle in place: the hot periodic chains reuse one
:class:`ScheduledCall` per chain instead of allocating one per fire.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Optional

from .events import Signal, Waitable

#: Compaction kicks in once at least this many dead entries have
#: accumulated *and* they outnumber the live ones (amortized O(1)).
_COMPACT_MIN = 64


class ScheduledCall:
    """Handle for a scheduled callback; supports cancel + reschedule.

    ``seq`` is the handle's *live* sequence number: a heap entry whose
    recorded seq no longer matches was superseded by a reschedule and
    is skipped when it surfaces.  ``pending`` is True while exactly one
    live entry for this handle sits in the agenda.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "pending", "_sim")

    def __init__(self, sim: "Simulator", time: float, seq: int,
                 fn: Callable, args: tuple) -> None:
        self._sim = sim
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.pending = True

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self.pending:
                self._sim._note_dead()


class Simulator:
    """Discrete-event simulator.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> p = sim.process(hello())
    >>> sim.run()
    3.0
    >>> p.value
    3.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: (time, seq, call) tuples — seq is unique, so heap compares
        #: never reach the call object.
        self._agenda: list = []
        self._seq: int = 0
        self._dead: int = 0  # cancelled/superseded entries still heaped
        self._running = False
        self.event_count: int = 0  # executed callbacks, for microbenches

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if not delay >= 0.0:  # one branch rejects negatives AND NaN
            raise ValueError(f"negative or NaN delay {delay!r}")
        self._seq += 1
        call = ScheduledCall(self, self.now + delay, self._seq, fn, args)
        heapq.heappush(self._agenda, (call.time, self._seq, call))
        return call

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated ``time`` (>= now)."""
        return self.schedule(time - self.now, fn, *args)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, so no
        cancellation — and no ``ScheduledCall`` allocation.

        The hot one-shot chains (timeouts, protocol-overhead hops,
        process resumes, batched reshares) never cancel, so they skip
        the handle entirely; the agenda entry's third slot is a plain
        ``(fn, args)`` tuple.  One sequence number is consumed, exactly
        like ``schedule``, so interleaving with handled events keeps
        the same deterministic order.
        """
        if not delay >= 0.0:
            raise ValueError(f"negative or NaN delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._agenda, (self.now + delay, self._seq, (fn, args)))

    def reschedule(self, call: ScheduledCall, delay: float,
                   *args: Any) -> ScheduledCall:
        """Re-arm ``call`` to run ``call.fn(*args)`` after ``delay``.

        Equivalent to ``call.cancel()`` + a fresh :meth:`schedule` of
        the same function — one sequence number is consumed either way,
        so event ordering is byte-identical — but the handle object is
        reused: the hot ping/expiry chains allocate nothing per fire.
        Works on fired, cancelled, *and* still-pending handles (a
        pending handle's old entry goes stale in place).
        """
        if not delay >= 0.0:
            raise ValueError(f"negative or NaN delay {delay!r}")
        if call.pending and not call.cancelled:
            self._note_dead()  # the old live entry is now stale
        call.cancelled = False
        call.pending = True
        call.time = self.now + delay
        self._seq += 1
        call.seq = self._seq
        call.args = args
        heapq.heappush(self._agenda, (call.time, self._seq, call))
        return call

    # -- dead-entry accounting ---------------------------------------------
    def _note_dead(self) -> None:
        self._dead += 1
        if (self._dead >= _COMPACT_MIN
                and self._dead * 2 >= len(self._agenda)):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify (bounds the agenda under
        cancel-heavy workloads; ordering of live entries is unchanged
        because it lives entirely in the (time, seq) keys)."""
        # in place: run loops hold a local alias to the agenda list
        # (tuple entries are call_later one-shots — always live)
        self._agenda[:] = [
            entry for entry in self._agenda
            if entry[2].__class__ is tuple
            or (entry[1] == entry[2].seq and not entry[2].cancelled)
        ]
        heapq.heapify(self._agenda)
        self._dead = 0

    # -- waitable factories ------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Signal:
        """A signal that succeeds ``delay`` seconds from now."""
        sig = Signal("timeout")
        self.call_later(delay, sig.succeed, value)
        return sig

    def event(self, name: str = "") -> Signal:
        """An untriggered signal for manual triggering."""
        return Signal(name)

    def process(self, gen: Generator, name: str = "") -> "Process":
        """Start a new process from a generator (begins at current time)."""
        from .process import Process  # local import to avoid cycle

        return Process(self, gen, name=name)

    # -- main loop ---------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``inf`` when agenda is empty."""
        agenda = self._agenda
        while agenda:
            _time, seq, call = agenda[0]
            if call.__class__ is tuple:
                return _time  # call_later one-shot: always live
            if seq == call.seq and not call.cancelled:
                return _time
            heapq.heappop(agenda)
            self._dead -= 1
            if seq == call.seq:
                call.pending = False  # its own (cancelled) entry left
        return math.inf

    def step(self) -> None:
        """Execute the single next event."""
        pop = heapq.heappop
        agenda = self._agenda
        while True:
            time, seq, call = pop(agenda)
            if call.__class__ is tuple:
                fn, args = call
                break
            if seq != call.seq:  # superseded by reschedule
                self._dead -= 1
                continue
            call.pending = False
            if call.cancelled:
                self._dead -= 1
                continue
            fn, args = call.fn, call.args
            break
        if time < self.now - 1e-12:
            raise RuntimeError("time went backwards")  # pragma: no cover
        if time > self.now:
            self.now = time
        self.event_count += 1
        fn(*args)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the agenda empties or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given the
        clock is advanced exactly to it even if no event fires there.
        """
        if self._running:
            raise RuntimeError("run() is not reentrant")
        self._running = True
        try:
            while self._agenda:
                nxt = self.peek()
                if nxt is math.inf:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_triggered(self, waitable: Waitable, limit: float = math.inf) -> Any:
        """Run until ``waitable`` triggers; returns its value.

        Raises ``RuntimeError`` if the agenda drains (deadlock) or the
        ``limit`` is passed first.

        This is the reference-execution driver, so the loop is fused:
        one heap pop per event (no separate peek + step validation)
        and a subscription flag instead of a ``triggered`` property
        chain per event.
        """
        if waitable.triggered:
            return waitable.value
        fired: list = []
        waitable._subscribe(fired.append)
        pop = heapq.heappop
        agenda = self._agenda
        while not fired:
            while True:
                if not agenda:
                    raise RuntimeError(
                        f"deadlock: agenda empty at t={self.now:g} while waiting"
                    )
                time, seq, call = agenda[0]
                if call.__class__ is tuple:
                    fn, args = call
                    break
                if seq != call.seq:  # superseded by reschedule
                    pop(agenda)
                    self._dead -= 1
                    continue
                if call.cancelled:
                    pop(agenda)
                    self._dead -= 1
                    call.pending = False
                    continue
                fn, args = call.fn, call.args
                break
            if time > limit:
                raise RuntimeError(f"time limit {limit:g}s exceeded")
            pop(agenda)
            if call.__class__ is not tuple:
                call.pending = False
            if time > self.now:
                self.now = time
            self.event_count += 1
            fn(*args)
        return waitable.value
