"""The desim event loop: a monotonic clock plus a binary-heap agenda.

Time is a ``float`` in **seconds**.  Determinism: events scheduled for
the same instant fire in scheduling order (a monotone sequence number
breaks ties), so a seeded simulation replays identically.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Optional

from .events import Signal, Waitable


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Discrete-event simulator.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> p = sim.process(hello())
    >>> sim.run()
    3.0
    >>> p.value
    3.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._agenda: list[ScheduledCall] = []
        self._seq: int = 0
        self._running = False
        self.event_count: int = 0  # executed callbacks, for microbenches

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        if math.isnan(delay):
            raise ValueError("NaN delay")
        self._seq += 1
        call = ScheduledCall(self.now + delay, self._seq, fn, args)
        heapq.heappush(self._agenda, call)
        return call

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated ``time`` (>= now)."""
        return self.schedule(time - self.now, fn, *args)

    # -- waitable factories ------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Signal:
        """A signal that succeeds ``delay`` seconds from now."""
        sig = Signal(f"timeout({delay:g})")
        self.schedule(delay, sig.succeed, value)
        return sig

    def event(self, name: str = "") -> Signal:
        """An untriggered signal for manual triggering."""
        return Signal(name)

    def process(self, gen: Generator, name: str = "") -> "Process":
        """Start a new process from a generator (begins at current time)."""
        from .process import Process  # local import to avoid cycle

        return Process(self, gen, name=name)

    # -- main loop ---------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``inf`` when agenda is empty."""
        while self._agenda and self._agenda[0].cancelled:
            heapq.heappop(self._agenda)
        return self._agenda[0].time if self._agenda else math.inf

    def step(self) -> None:
        """Execute the single next event."""
        while True:
            call = heapq.heappop(self._agenda)
            if not call.cancelled:
                break
        if call.time < self.now - 1e-12:
            raise RuntimeError("time went backwards")  # pragma: no cover
        self.now = max(self.now, call.time)
        self.event_count += 1
        call.fn(*call.args)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the agenda empties or the clock passes ``until``.

        Returns the final simulated time.  When ``until`` is given the
        clock is advanced exactly to it even if no event fires there.
        """
        if self._running:
            raise RuntimeError("run() is not reentrant")
        self._running = True
        try:
            while self._agenda:
                nxt = self.peek()
                if nxt is math.inf:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_triggered(self, waitable: Waitable, limit: float = math.inf) -> Any:
        """Run until ``waitable`` triggers; returns its value.

        Raises ``RuntimeError`` if the agenda drains (deadlock) or the
        ``limit`` is passed first.
        """
        while not waitable.triggered:
            nxt = self.peek()
            if nxt is math.inf:
                raise RuntimeError(
                    f"deadlock: agenda empty at t={self.now:g} while waiting"
                )
            if nxt > limit:
                raise RuntimeError(f"time limit {limit:g}s exceeded")
            self.step()
        return waitable.value
