"""The wire protocol: newline-delimited JSON requests and replies.

One request per line, one reply per line, UTF-8, over a Unix or TCP
stream socket.  Every request is an object carrying ``op`` plus
op-specific fields; every reply carries ``ok`` and either the result
payload or ``error``/``detail``.  The contract the adversarial tests
pin: *any* malformed input — garbage bytes, truncated JSON, unknown
ops or schema versions, oversized lines or batches — yields a clean
``ok: false`` reply (or, for unframeable input, a dropped connection)
and the daemon keeps serving everyone else.

Requests optionally carry ``protocol``; when present it must equal
:data:`PROTOCOL_VERSION` — a client from the future gets a clean
version error, not a misparse.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Wire protocol version; requests may pin it via a ``protocol`` field.
PROTOCOL_VERSION = 1

#: Hard cap on one request/reply line (framing sanity, not a quota).
MAX_LINE_BYTES = 1_000_000

#: Hard cap on queries in one ``batch`` request.
MAX_BATCH = 256

#: The ops a daemon understands.
OPS = ("ping", "query", "batch", "price", "stats", "shutdown")


class ProtocolError(Exception):
    """A malformed request (maps to a clean ``ok: false`` reply)."""

    def __init__(self, error: str, detail: str = "") -> None:
        super().__init__(detail or error)
        self.error = error
        self.detail = detail

    def reply(self) -> Dict[str, Any]:
        return error_reply(self.error, self.detail)


def error_reply(error: str, detail: str = "") -> Dict[str, Any]:
    """A clean failure reply."""
    reply: Dict[str, Any] = {"ok": False, "error": error}
    if detail:
        reply["detail"] = detail
    return reply


def encode(message: Dict[str, Any]) -> bytes:
    """One canonical reply/request line (sorted keys — byte identity)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def parse_request(line: bytes) -> Dict[str, Any]:
    """Decode and validate one request line's envelope.

    Raises :class:`ProtocolError` on anything malformed: non-UTF-8 or
    non-JSON bytes, a non-object payload, a ``protocol`` field that
    isn't this version, or an ``op`` outside :data:`OPS`.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "line-too-long",
            f"request line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad-json", str(exc)) from None
    if not isinstance(request, dict):
        raise ProtocolError(
            "bad-request",
            f"request must be an object, got {type(request).__name__}",
        )
    version = request.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-protocol-version",
            f"daemon speaks protocol {PROTOCOL_VERSION}, "
            f"request pinned {version!r}",
        )
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            "unknown-op",
            f"op must be one of {', '.join(OPS)}, got {op!r}",
        )
    return request


# -- addresses --------------------------------------------------------------
def parse_address(address: str) -> Tuple[int, Any]:
    """An ``--address`` string to a (family, sockaddr) pair.

    ``host:port`` (with a numeric port) is TCP; anything else is a
    Unix socket path.
    """
    host, sep, port = address.rpartition(":")
    if sep and host and port.isdigit():
        return socket.AF_INET, (host, int(port))
    return socket.AF_UNIX, address


# -- framing ----------------------------------------------------------------
def read_lines(sock: socket.socket) -> Iterator[bytes]:
    """Yield newline-terminated frames from a stream socket.

    Stops cleanly on EOF.  A frame growing past :data:`MAX_LINE_BYTES`
    without a newline is unframeable — no reply can be matched to it —
    so it raises :class:`ProtocolError` and the connection is dropped.
    """
    buf = b""
    while True:
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            if line:
                yield line
        if len(buf) > MAX_LINE_BYTES:
            raise ProtocolError(
                "line-too-long",
                f"unterminated frame exceeds {MAX_LINE_BYTES} bytes",
            )
        chunk = sock.recv(65536)
        if not chunk:
            return
        buf += chunk


class ServeClient:
    """A minimal blocking client (one request, one reply, in order)."""

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        family, sockaddr = parse_address(address)
        self.sock = socket.socket(family, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(sockaddr)
        self._lines = read_lines(self.sock)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, block for its reply."""
        self.sock.sendall(encode(message))
        try:
            line = next(self._lines)
        except StopIteration:
            raise ConnectionError("daemon closed the connection") from None
        return json.loads(line.decode("utf-8"))

    def request_raw(self, payload: bytes) -> Dict[str, Any]:
        """Send raw bytes (the adversarial tests' hook), block for a
        reply line."""
        self.sock.sendall(payload)
        try:
            line = next(self._lines)
        except StopIteration:
            raise ConnectionError("daemon closed the connection") from None
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
