"""The query daemon: sockets, worker threads, graceful drain.

:class:`ServeDaemon` wraps one :class:`~repro.serve.engine.QueryEngine`
behind a Unix or TCP stream socket speaking the NDJSON protocol of
:mod:`repro.serve.protocol`.  An acceptor thread hands connections to
a bounded worker pool; each connection runs a frame loop that answers
requests in order.  Request handling runs on a second bounded pool so
a wedged compute can be timed out with a clean ``timeout`` reply
instead of hanging the connection.

Shutdown is a **drain**: on ``stop()`` (or SIGTERM/SIGINT under
:meth:`serve_forever`) the listener closes first, every frame already
received is answered, then connections close and both pools join.  A
client that sent a request before the drain began always gets its
reply.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor, TimeoutError as FutureTimeout
from typing import Any, Dict, List, Optional

from ..scenarios.spec import PlatformPlan, WorkloadPlan
from .engine import ComputeAbandoned, QueryEngine
from .protocol import (
    MAX_BATCH,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode,
    error_reply,
    parse_address,
    parse_request,
)
from .query import QuerySpec

#: Default worker threads (connections and request handlers alike).
DEFAULT_WORKERS = 4

#: Default per-request compute timeout (seconds).
DEFAULT_REQUEST_TIMEOUT = 60.0

#: Socket poll interval — how often idle loops notice the drain flag.
_POLL_SECONDS = 0.2


class ServeDaemon:
    """One engine behind one listening socket (see module doc).

    ``address`` is ``host:port`` for TCP (port 0 picks a free port —
    read the bound address back from :attr:`address` after
    :meth:`start`) or a filesystem path for a Unix socket.
    """

    def __init__(
        self,
        engine: QueryEngine,
        address: str = "127.0.0.1:0",
        workers: int = DEFAULT_WORKERS,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0, got {request_timeout!r}"
            )
        self.engine = engine
        self.workers = workers
        self.request_timeout = request_timeout
        self._family, self._sockaddr = parse_address(address)
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._conn_pool: Optional[ThreadPoolExecutor] = None
        self._req_pool: Optional[ThreadPoolExecutor] = None
        self._stop = threading.Event()
        self._conns: Dict[int, socket.socket] = {}
        self._conns_lock = threading.Lock()
        self._unix_path: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound address (resolved port for TCP port 0)."""
        if self._listener is None:
            raise RuntimeError("daemon is not started")
        if self._family == socket.AF_UNIX:
            return str(self._sockaddr)
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def running(self) -> bool:
        return self._listener is not None and not self._stop.is_set()

    def start(self) -> "ServeDaemon":
        """Bind, listen, and start accepting (returns self)."""
        if self._listener is not None:
            raise RuntimeError("daemon already started")
        listener = socket.socket(self._family, socket.SOCK_STREAM)
        if self._family == socket.AF_INET:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        else:
            self._unix_path = str(self._sockaddr)
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        listener.bind(self._sockaddr)
        listener.listen(128)
        listener.settimeout(_POLL_SECONDS)
        self._listener = listener
        self._stop.clear()
        self._conn_pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-conn"
        )
        self._req_pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-req"
        )
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._acceptor.start()
        return self

    def stop(self) -> None:
        """Drain and shut down (idempotent, blocks until quiescent)."""
        if self._listener is None:
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._acceptor is not None:
            self._acceptor.join()
            self._acceptor = None
        # connection loops notice the drain flag after answering every
        # frame they already received, then exit; wait for all of them
        if self._conn_pool is not None:
            self._conn_pool.shutdown(wait=True)
            self._conn_pool = None
        if self._req_pool is not None:
            self._req_pool.shutdown(wait=True)
            self._req_pool = None
        with self._conns_lock:
            leftovers = list(self._conns.values())
            self._conns.clear()
        for conn in leftovers:
            try:
                conn.close()
            except OSError:
                pass
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        self._listener = None

    def serve_forever(self) -> None:
        """Block until SIGTERM/SIGINT, then drain (main thread only)."""
        stop_signal = threading.Event()

        def _on_signal(_signum: int, _frame: Any) -> None:
            stop_signal.set()

        previous = {
            sig: signal.signal(sig, _on_signal)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            stop_signal.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- accept / connection loops ------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: drain has begun
            self.engine.stats.bump("connections")
            with self._conns_lock:
                self._conns[conn.fileno()] = conn
            self._conn_pool.submit(self._serve_connection, conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        """Frame loop: answer complete frames in order, poll the drain
        flag between reads, never let one bad client take the daemon
        down."""
        key = conn.fileno()
        conn.settimeout(_POLL_SECONDS)
        buf = b""
        try:
            while True:
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if not line:
                        continue
                    reply = self._handle_line(line)
                    conn.sendall(encode(reply))
                if len(buf) > MAX_LINE_BYTES:
                    # unframeable: no newline in sight, nothing a reply
                    # could be matched to — drop the connection
                    self.engine.stats.bump("dropped_connections")
                    return
                if self._stop.is_set():
                    return  # drained: every received frame was answered
                try:
                    chunk = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    return  # client EOF
                buf += chunk
        except OSError:
            return  # client went away mid-reply: their loss only
        finally:
            with self._conns_lock:
                self._conns.pop(key, None)
            try:
                conn.close()
            except OSError:
                pass

    # -- request handling ----------------------------------------------------
    def _handle_line(self, line: bytes) -> Dict[str, Any]:
        """One frame to one reply — *never* raises.

        The request's deadline is stamped *here* and carried into the
        engine: when ``future.result`` times out below, the abandoned
        worker thread consults that same deadline inside the engine
        and bails (``ComputeAbandoned``) instead of simulating the
        rest of a pool nobody is waiting for — the compute lock frees
        within one scenario run, not one full pool.
        """
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.engine.stats.bump("protocol_errors")
            return exc.reply()
        deadline = time.monotonic() + self.request_timeout
        future = self._req_pool.submit(self._dispatch, request, deadline)
        try:
            return future.result(timeout=self.request_timeout)
        except FutureTimeout:
            self.engine.stats.bump("request_timeouts")
            return error_reply(
                "timeout",
                f"request exceeded {self.request_timeout}s",
            )
        except ComputeAbandoned:
            # the worker noticed the expired deadline before
            # future.result did (e.g. while queued behind another
            # compute): same outcome, same reply
            self.engine.stats.bump("request_timeouts")
            return error_reply(
                "timeout",
                f"request exceeded {self.request_timeout}s",
            )
        except Exception as exc:  # noqa: BLE001 — the keep-serving contract
            self.engine.stats.bump("internal_errors")
            return error_reply("internal-error", str(exc))

    def _dispatch(self, request: Dict[str, Any],
                  deadline: Optional[float] = None) -> Dict[str, Any]:
        op = request["op"]
        try:
            if op == "ping":
                return {"ok": True, "op": "ping",
                        "protocol": PROTOCOL_VERSION}
            if op == "query":
                return self._op_query(request, deadline)
            if op == "batch":
                return self._op_batch(request, deadline)
            if op == "price":
                return self._op_price(request)
            if op == "stats":
                return self._op_stats()
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return {"ok": True, "draining": True}
            raise ProtocolError("unknown-op", f"op {op!r}")
        except ProtocolError as exc:
            self.engine.stats.bump("protocol_errors")
            return exc.reply()
        except (KeyError, ValueError) as exc:
            self.engine.stats.bump("protocol_errors")
            return error_reply("bad-query", str(exc))

    def _op_query(self, request: Dict[str, Any],
                  deadline: Optional[float] = None) -> Dict[str, Any]:
        payload = request.get("query")
        if payload is None:
            raise ProtocolError("bad-request", "query op needs a 'query'")
        query = QuerySpec.from_dict(payload)
        answer = self.engine.answer(query, deadline)
        self.engine.stats.bump("served")
        return {"ok": True, "answer": answer.to_dict()}

    def _op_batch(self, request: Dict[str, Any],
                  deadline: Optional[float] = None) -> Dict[str, Any]:
        payloads = request.get("queries")
        if not isinstance(payloads, list):
            raise ProtocolError("bad-request", "batch op needs 'queries'")
        if len(payloads) > MAX_BATCH:
            raise ProtocolError(
                "batch-too-large",
                f"batch of {len(payloads)} exceeds {MAX_BATCH}",
            )
        # validate the whole batch before answering any of it: a batch
        # is atomic, so a typo in query 40 can't waste 39 computes
        try:
            queries = [QuerySpec.from_dict(p) for p in payloads]
        except ValueError as exc:
            raise ProtocolError("bad-query", str(exc)) from None
        answers = self.engine.batch(queries, deadline)
        self.engine.stats.bump("served", len(answers))
        return {"ok": True, "answers": [a.to_dict() for a in answers]}

    def _op_price(self, request: Dict[str, Any]) -> Dict[str, Any]:
        plans: List[WorkloadPlan] = []
        raw = request.get("workloads")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "bad-request", "price op needs a non-empty 'workloads' list"
            )
        if len(raw) > MAX_BATCH:
            raise ProtocolError(
                "batch-too-large",
                f"batch of {len(raw)} exceeds {MAX_BATCH}",
            )
        try:
            platform = PlatformPlan(**request.get("platform", {}))
            for payload in raw:
                if not isinstance(payload, dict):
                    raise ProtocolError(
                        "bad-request", "each workload must be an object"
                    )
                plans.append(WorkloadPlan(**payload))
        except TypeError as exc:
            raise ProtocolError("bad-request", str(exc)) from None
        n_peers = request.get("n_peers", 4)
        pool = request.get("pool", max(n_peers, 8))
        priced = self.engine.price_batch(platform, pool, n_peers, plans)
        return {"ok": True, "priced": priced}

    def _op_stats(self) -> Dict[str, Any]:
        with self._conns_lock:
            open_conns = len(self._conns)
        return {
            "ok": True,
            "stats": self.engine.snapshot(),
            "daemon": {
                "address": self.address,
                "workers": self.workers,
                "open_connections": open_conns,
                "protocol": PROTOCOL_VERSION,
            },
        }
