"""``python -m repro.serve`` — start and talk to the query daemon.

Subcommands:

- ``start``: bind the daemon, preload the on-disk answer memo, serve
  until SIGTERM/SIGINT, then drain;
- ``query``: one SLO question, either over the wire (``--address``)
  or priced in-process (``--local``, no daemon needed);
- ``batch``: NDJSON query objects (file or stdin) answered as one
  atomic batch;
- ``stats``: the daemon's counter snapshot.

Query shaping uses the sweep CLI's ``--set path=value`` grammar
(``--set workload.level=O3 --set n_peers=8``), so a grid point from a
sweep and a daemon query are written the same way.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..params import parse_scalar_set
from ..scenarios.cli import DEFAULT_CACHE_DIR
from .daemon import DEFAULT_REQUEST_TIMEOUT, DEFAULT_WORKERS, ServeDaemon
from .engine import QueryEngine
from .protocol import PROTOCOL_VERSION, ServeClient
from .query import QuerySpec


class _UsageError(Exception):
    """Bad invocation (exit code 2, message on stderr)."""


def _build_query(args: argparse.Namespace) -> QuerySpec:
    try:
        query = QuerySpec(
            deadline=args.deadline,
            percentile=args.percentile,
            pool=args.pool,
            seed_base=args.seed_base,
        )
        for pair in args.set or []:
            # repro.params owns the --set grammar for every CLI: a
            # value types identically here and in a sweep --set
            path, value = parse_scalar_set(pair)
            query = query.with_override(path, value)
    except (KeyError, ValueError) as exc:
        raise _UsageError(str(exc)) from None
    return query


def _print_answer(answer: Dict[str, Any]) -> None:
    print(json.dumps(answer, sort_keys=True, separators=(",", ":")))


def cmd_start(args: argparse.Namespace) -> int:
    engine = QueryEngine(
        cache_dir=None if args.no_cache else args.cache_dir
    )
    preloaded = engine.preload_answers()
    daemon = ServeDaemon(
        engine,
        address=args.address,
        workers=args.workers,
        request_timeout=args.request_timeout,
    ).start()
    print(f"# serving on {daemon.address} "
          f"(protocol {PROTOCOL_VERSION}, {args.workers} workers, "
          f"{preloaded} answers preloaded)", flush=True)
    daemon.serve_forever()
    print("# drained", flush=True)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    query = _build_query(args)
    if args.local:
        engine = QueryEngine(
            cache_dir=None if args.no_cache else args.cache_dir
        )
        _print_answer(engine.answer(query).to_dict())
        return 0
    with ServeClient(args.address, timeout=args.timeout) as client:
        reply = client.request({"op": "query", "query": query.to_dict()})
    if not reply.get("ok"):
        raise _UsageError(
            f"{reply.get('error')}: {reply.get('detail', '')}"
        )
    _print_answer(reply["answer"])
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    stream = sys.stdin if args.queries == "-" else open(args.queries)
    try:
        payloads = [
            json.loads(line) for line in stream if line.strip()
        ]
    except ValueError as exc:
        raise _UsageError(f"bad NDJSON input: {exc}") from None
    finally:
        if stream is not sys.stdin:
            stream.close()
    if not payloads:
        raise _UsageError("no queries in input")
    with ServeClient(args.address, timeout=args.timeout) as client:
        reply = client.request({"op": "batch", "queries": payloads})
    if not reply.get("ok"):
        raise _UsageError(
            f"{reply.get('error')}: {reply.get('detail', '')}"
        )
    for answer in reply["answers"]:
        _print_answer(answer)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with ServeClient(args.address, timeout=args.timeout) as client:
        reply = client.request({"op": "stats"})
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Prediction-as-a-service: percentile SLO answers "
                    "over a socket.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_client_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--address", default="127.0.0.1:7011",
                       help="daemon address: host:port or a Unix "
                            "socket path (default 127.0.0.1:7011)")
        p.add_argument("--timeout", type=float, default=30.0,
                       help="client-side reply timeout in seconds")

    start = sub.add_parser("start", help="run the daemon until SIGTERM")
    start.add_argument("--address", default="127.0.0.1:7011",
                       help="bind address: host:port (port 0 picks a "
                            "free one) or a Unix socket path")
    start.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"durable cache root, shared with sweeps "
                            f"(default {DEFAULT_CACHE_DIR})")
    start.add_argument("--no-cache", action="store_true",
                       help="memory-only: no disk tiers, no restart "
                            "recovery")
    start.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                       help="worker threads (connections and handlers)")
    start.add_argument("--request-timeout", type=float,
                       default=DEFAULT_REQUEST_TIMEOUT,
                       help="per-request compute timeout in seconds")

    query = sub.add_parser("query", help="ask one SLO question")
    add_client_options(query)
    query.add_argument("--deadline", type=float, required=True,
                       help="SLO deadline T in seconds")
    query.add_argument("--percentile", type=float, default=99.0,
                       help="SLO percentile p (default 99)")
    query.add_argument("--pool", type=int, default=5,
                       help="seed-pool size k (default 5)")
    query.add_argument("--seed-base", type=int, default=2011,
                       help="first pool seed (default 2011)")
    query.add_argument("--set", action="append", metavar="PATH=VALUE",
                       help="override a query field (repeatable; e.g. "
                            "--set workload.level=O3 --set n_peers=8)")
    query.add_argument("--local", action="store_true",
                       help="price in-process instead of over the wire")
    query.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help="durable cache root for --local")
    query.add_argument("--no-cache", action="store_true",
                       help="--local without disk tiers")

    batch = sub.add_parser(
        "batch", help="answer an NDJSON query stream as one batch"
    )
    add_client_options(batch)
    batch.add_argument("queries",
                       help="NDJSON file of query objects ('-' = stdin)")

    stats = sub.add_parser("stats", help="dump the daemon's counters")
    add_client_options(stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "start": cmd_start,
        "query": cmd_query,
        "batch": cmd_batch,
        "stats": cmd_stats,
    }[args.command]
    try:
        return handler(args)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return 2
