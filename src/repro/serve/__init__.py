"""Prediction-as-a-service: a long-lived SLO query daemon.

The sweeps answer *"what happened"*; this package answers *"will it
meet the deadline"* — as a service.  A daemon loads the warm
per-process deployment state and the persistent dPerf trace cache
once at startup, then answers queries of the form *(workload,
platform, deadline T, percentile p, seed-pool size k)* by pricing the
spec over a seeded scenario pool and reading empirical
P50/P90/P99/P99.9 makespans off the pool, with a meet/miss verdict
against the deadline.

Layers (each its own module):

- :mod:`~repro.serve.query` — :class:`QuerySpec` (frozen, hashed,
  wire-safe) and :class:`Answer` (deterministic, byte-identical);
- :mod:`~repro.serve.engine` — :class:`QueryEngine`: LRU answer memo
  → on-disk answer tier → seed-pool compute, every level counted;
- :mod:`~repro.serve.protocol` — newline-delimited JSON over
  Unix/TCP sockets, plus the :class:`ServeClient` used by the CLI and
  the test harness;
- :mod:`~repro.serve.daemon` — :class:`ServeDaemon`: acceptor thread,
  bounded worker pools, request timeout, graceful drain on SIGTERM;
- :mod:`~repro.serve.cli` — ``python -m repro.serve
  {start,query,batch,stats}``.

See ``docs/serving.md`` for the query schema, SLO semantics, cache
tiers, and drain behaviour.
"""

from .daemon import DEFAULT_REQUEST_TIMEOUT, DEFAULT_WORKERS, ServeDaemon
from .engine import (
    DEFAULT_MEMO_CAPACITY,
    AnswerCache,
    QueryEngine,
    ServeStats,
)
from .protocol import (
    MAX_BATCH,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeClient,
)
from .query import SERVE_SCHEMA_VERSION, Answer, QuerySpec, compute_answer

__all__ = [
    "Answer",
    "AnswerCache",
    "DEFAULT_MEMO_CAPACITY",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_WORKERS",
    "MAX_BATCH",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryEngine",
    "QuerySpec",
    "SERVE_SCHEMA_VERSION",
    "ServeClient",
    "ServeDaemon",
    "ServeStats",
    "compute_answer",
]
