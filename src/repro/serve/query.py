"""SLO query specifications and their answers.

A :class:`QuerySpec` is the serving tier's unit of work: *will this
workload on this platform meet deadline ``T`` at percentile ``p``?*
It is a frozen, hashable dataclass — the same discipline as
:class:`~repro.scenarios.spec.ScenarioSpec` — so a query can be
shipped over the wire as plain JSON, hashed into a memo key, and
re-answered years later byte-identically.

Answering a query prices the spec over a *seed pool*: ``pool``
reference scenarios differing only in seed (``seed_base + i``), whose
makespans form the empirical distribution the percentiles are read
from.  SLO semantics over the pool:

- a completed run contributes its makespan;
- a non-completed run (churn, timeout) contributes ``+inf`` — it
  missed every deadline, which is exactly what the tail must see;
- the verdict is ``meets = makespan@p <= deadline`` with an infinite
  estimate never meeting.

The percentile estimator is the shared
:func:`repro.analysis.percentiles.percentile`, so a daemon answer and
a ``compare --percentiles`` column over the same pool agree exactly.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import __version__ as _ENGINE_VERSION
from ..analysis.percentiles import (
    SLO_PERCENTILES,
    finite_or_none,
    pct_key,
    percentile,
)
from ..scenarios.runner import ScenarioResult
from ..scenarios.spec import (
    SCHEMA_VERSION,
    ChurnEventSpec,
    ChurnProfile,
    NetworkFaultPlan,
    PlatformPlan,
    PredictionErrorPlan,
    ProtocolPlan,
    RecoveryPlan,
    ScenarioSpec,
    TcpPlan,
    TimerPlan,
    WorkloadPlan,
)

#: Bump when query semantics or the answer payload change: it salts
#: the query hash (alongside the scenario SCHEMA_VERSION and the
#: package version), so stale on-disk answers invalidate exactly like
#: stale scenario results.
SERVE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class QuerySpec:
    """One SLO query: workload × platform × deadline × percentile ×
    seed pool.

    The scenario-shaping fields mirror
    :class:`~repro.scenarios.spec.ScenarioSpec` field-for-field
    (sub-plans reused verbatim), so any grid point a sweep can run,
    the daemon can answer — and a sweep over the same axes warms the
    same result cache a query resolves through.  The one fixed choice
    is ``kind``: pool members always run the full ``reference``
    protocol simulation (an SLO verdict should price what would
    actually happen, not a trace replay).  ``pool`` is the seed pool
    size ``k``; the ``i``-th pool member runs at seed
    ``seed_base + i``.
    """

    deadline: float
    percentile: float = 99.0
    pool: int = 5
    seed_base: int = 2011
    workload: WorkloadPlan = WorkloadPlan()
    platform: PlatformPlan = PlatformPlan()
    protocol: ProtocolPlan = ProtocolPlan()
    tcp: TcpPlan = TcpPlan()
    timers: TimerPlan = TimerPlan()
    churn: Tuple[ChurnEventSpec, ...] = ()
    churn_profile: ChurnProfile = ChurnProfile()
    recovery: RecoveryPlan = RecoveryPlan()
    n_peers: int = 4
    deploy_peers: int = 0
    n_zones: int = 0
    spares: int = 0
    host_policy: str = "pack"
    selection_policy: str = "proximity"
    prediction_error: PredictionErrorPlan = PredictionErrorPlan()
    fault_plan: NetworkFaultPlan = NetworkFaultPlan()
    failure_history: Tuple[Tuple[str, int], ...] = ()
    time_limit: float = 0.0

    def __post_init__(self) -> None:
        if not self.deadline > 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline!r}")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile must be in (0, 100], got {self.percentile!r}"
            )
        if self.pool < 1:
            raise ValueError(f"pool must be >= 1, got {self.pool!r}")
        if self.seed_base < 0:
            raise ValueError(f"seed_base must be >= 0, got {self.seed_base!r}")
        # canonical tuple forms (wire JSON arrives as lists), so
        # round-tripped queries hash and compare like native ones —
        # the same normalization ScenarioSpec applies
        object.__setattr__(self, "churn", tuple(self.churn))
        object.__setattr__(
            self,
            "failure_history",
            tuple((str(n), int(c)) for n, c in self.failure_history),
        )
        # delegate the cross-field guards (policy names, churn ranges,
        # election-requires-rejoin, prediction_error-requires-predicted)
        # to ScenarioSpec: building the pool base at construction time
        # surfaces a bad query immediately, as a ValueError the
        # protocol layer turns into a clean reply
        self._base_spec()

    # -- scenario derivation ------------------------------------------------
    def _base_spec(self, seed: Optional[int] = None) -> ScenarioSpec:
        return ScenarioSpec(
            name="serve",
            kind="reference",
            workload=self.workload,
            platform=self.platform,
            protocol=self.protocol,
            tcp=self.tcp,
            timers=self.timers,
            churn=self.churn,
            churn_profile=self.churn_profile,
            recovery=self.recovery,
            n_peers=self.n_peers,
            deploy_peers=self.deploy_peers,
            n_zones=self.n_zones,
            spares=self.spares,
            host_policy=self.host_policy,
            selection_policy=self.selection_policy,
            prediction_error=self.prediction_error,
            fault_plan=self.fault_plan,
            failure_history=self.failure_history,
            time_limit=self.time_limit,
            seed=self.seed_base if seed is None else seed,
        )

    def scenario_specs(self) -> Tuple[ScenarioSpec, ...]:
        """The seed pool: ``pool`` reference specs at consecutive seeds.

        Point names carry a ``[seed=...]`` grid label, so a manifest
        built from the same pool is ``compare``-able (the
        "query the grid you just swept" path works both directions).
        """
        qh = self.query_hash()
        return tuple(
            replace(
                self._base_spec(self.seed_base + i),
                name=f"serve:{qh}[seed={self.seed_base + i}]",
            )
            for i in range(self.pool)
        )

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe, round-trips via from_dict)."""
        d = asdict(self)
        d["churn"] = [asdict(e) for e in self.churn]
        d["failure_history"] = [
            [name, count] for name, count in self.failure_history
        ]
        # lists, not tuples: the dict must equal its own JSON round-trip
        d["fault_plan"]["partition_zones"] = [
            list(group) for group in self.fault_plan.partition_zones
        ]
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuerySpec":
        """Rebuild a query from its to_dict() form.

        Unknown keys are rejected (a typo'd field in a wire request
        must not silently price a different query), as are non-mapping
        sub-plan payloads.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"query must be an object, got {type(data).__name__}")
        d = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown query field(s): {', '.join(unknown)}"
            )
        plans = {
            "workload": WorkloadPlan, "platform": PlatformPlan,
            "protocol": ProtocolPlan, "tcp": TcpPlan, "timers": TimerPlan,
            "churn_profile": ChurnProfile, "recovery": RecoveryPlan,
            "prediction_error": PredictionErrorPlan,
            "fault_plan": NetworkFaultPlan,
        }
        for name, plan_cls in plans.items():
            if name in d:
                sub = d[name]
                if not isinstance(sub, Mapping):
                    raise ValueError(f"query field {name!r} must be an object")
                try:
                    d[name] = plan_cls(**sub)
                except TypeError as exc:
                    raise ValueError(f"bad {name!r} payload: {exc}") from None
        if "churn" in d:
            events = d["churn"]
            if not isinstance(events, Sequence) or isinstance(events, str):
                raise ValueError("query field 'churn' must be an array")
            try:
                d["churn"] = tuple(ChurnEventSpec(**e) for e in events)
            except TypeError as exc:
                raise ValueError(f"bad 'churn' payload: {exc}") from None
        try:
            return cls(**d)
        except TypeError as exc:
            raise ValueError(f"bad query payload: {exc}") from None

    # -- hashing ------------------------------------------------------------
    def hash_payload(self) -> Dict[str, Any]:
        """Everything that defines the answer."""
        d = self.to_dict()
        d["schema"] = SCHEMA_VERSION
        d["serve_schema"] = SERVE_SCHEMA_VERSION
        d["engine"] = _ENGINE_VERSION
        return d

    def query_hash(self) -> str:
        """Stable 16-hex-digit content hash (memoized per instance)."""
        cached = self.__dict__.get("_query_hash")
        if cached is None:
            blob = json.dumps(self.hash_payload(), sort_keys=True,
                              separators=(",", ":"))
            cached = hashlib.sha256(blob.encode()).hexdigest()[:16]
            object.__setattr__(self, "_query_hash", cached)
        return cached

    # -- grid-style overrides ----------------------------------------------
    def with_override(self, path: str, value: Any) -> "QuerySpec":
        """A copy with one (possibly dotted) field replaced — the same
        override grammar the scenarios CLI uses for ``--set``."""
        head, _, rest = path.partition(".")
        names = {f.name for f in fields(self)}
        if head not in names:
            raise KeyError(f"unknown query field {head!r}")
        if not rest:
            return replace(self, **{head: value})
        sub = getattr(self, head)
        sub_names = {f.name for f in fields(sub)}
        if rest not in sub_names:
            raise KeyError(f"unknown field {rest!r} in {head}")
        return replace(self, **{head: replace(sub, **{rest: value})})


@dataclass
class Answer:
    """The daemon's reply to one :class:`QuerySpec`.

    ``samples`` is the sorted makespan pool with ``None`` marking
    non-completed runs (they sort last — JSON has no ``inf``);
    ``percentiles`` is the fixed SLO summary (P50/P90/P99/P99.9);
    ``value`` is the makespan at the *requested* percentile and
    ``meets`` the verdict against the deadline.  Everything is plain
    deterministic data: :meth:`canonical_json` is the byte-identity
    contract the concurrency harness pins.
    """

    query_hash: str
    pool: int
    completed: int
    deadline: float
    percentile: float
    value: Optional[float]
    meets: bool
    percentiles: Dict[str, Optional[float]] = field(default_factory=dict)
    samples: List[Optional[float]] = field(default_factory=list)

    @property
    def completion_rate(self) -> float:
        """Fraction of the pool that completed."""
        return self.completed / self.pool if self.pool else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-safe)."""
        d = asdict(self)
        d["completion_rate"] = self.completion_rate
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Answer":
        """Rebuild an answer from its to_dict() form."""
        d = dict(data)
        d.pop("completion_rate", None)  # derived, not stored state
        return cls(**d)

    def canonical_json(self) -> str:
        """Deterministic serialization (the byte-identity contract)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


def compute_answer(
    query: QuerySpec, results: Sequence[ScenarioResult]
) -> Answer:
    """Fold a seed pool's results into one SLO answer.

    A run that did not complete — protocol-level non-completion under
    churn *or* a hard engine error — contributes ``+inf``: under SLO
    semantics it missed every deadline, and hiding it would bias the
    tail optimistic.
    """
    if len(results) != query.pool:
        raise ValueError(
            f"expected {query.pool} pool results, got {len(results)}"
        )
    makespans: List[float] = []
    for result in results:
        done = result.ok and result.metrics.get("completed") == 1.0
        makespans.append(result.metrics["makespan"] if done else math.inf)
    makespans.sort()
    value = finite_or_none(percentile(makespans, query.percentile))
    return Answer(
        query_hash=query.query_hash(),
        pool=query.pool,
        completed=sum(1 for m in makespans if math.isfinite(m)),
        deadline=query.deadline,
        percentile=query.percentile,
        value=value,
        meets=value is not None and value <= query.deadline,
        percentiles={
            pct_key(p): finite_or_none(percentile(makespans, p))
            for p in SLO_PERCENTILES
        },
        samples=[finite_or_none(m) for m in makespans],
    )
