"""The warm query engine behind the daemon.

:class:`QueryEngine` is the serving tier's in-process core: it opens
every durable store **once, at startup** — the scenario
:class:`~repro.scenarios.runner.ResultCache`, the on-disk
:class:`AnswerCache` tier, and the persistent dPerf trace cache — and
then answers queries through a three-level resolution:

1. **LRU answer memo** (in-memory, lock-guarded): the hot path.  A hit
   touches no file, opens nothing, runs nothing — pinned via the
   engine's counters, not asserted in prose.
2. **On-disk answer tier** (:class:`AnswerCache`, one JSON file per
   query hash): survives restarts, so a killed daemon re-answers its
   whole history without re-simulating anything.
3. **Compute**: the seed pool's reference scenarios, each resolved
   through the scenario memo → result cache → simulation, every level
   counted.

Cold computes are serialized behind one lock: the scenario runner's
shared per-process state (deployment templates, route-intern stores)
is written during a run, and two interleaved simulations must never
share it.  Hot hits never take that lock, which is where the
memoized-vs-cold throughput ratio comes from.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from pathlib import Path
from threading import Lock, RLock
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..p2pdc import GroupPricer
from ..scenarios import workloads
from ..scenarios.runner import (
    JsonCache,
    ResultCache,
    memo_get,
    memo_put,
    run_scenario,
)
from ..scenarios.spec import PlatformPlan, WorkloadPlan
from .query import Answer, QuerySpec, compute_answer

#: Default capacity of the in-memory answer memo.
DEFAULT_MEMO_CAPACITY = 4096


class ComputeAbandoned(RuntimeError):
    """A compute noticed its request's deadline had already expired.

    The cooperative-cancellation signal: the daemon replies
    ``timeout`` the moment ``future.result(timeout=...)`` expires, but
    the worker thread it abandoned used to keep simulating the whole
    seed pool *while holding the compute lock* — a stampede of
    timed-out queries could wedge every later request behind work
    nobody was waiting for.  The engine now consults the request's
    deadline at every cheap boundary (before taking the compute lock,
    after acquiring it, and between seed-pool members) and raises this
    instead of continuing, bounding the stale window to one scenario
    run.  Each abandonment bumps the ``stale_computes`` counter.
    """


class ServeStats:
    """Thread-safe monotonic counters (the daemon's observability).

    Every counter is bumped under one lock and read out via
    :meth:`snapshot`; the concurrency harness pins cache behaviour on
    these numbers (e.g. "repeats add ``memo_hits`` and nothing else").
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self._counters: Dict[str, int] = {}

    def bump(self, name: str, by: int = 1) -> None:
        """Increment ``name`` by ``by``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A sorted copy of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))


class AnswerCache(JsonCache):
    """On-disk answer tier: one ``<query-hash>.json`` per answer.

    The restart-recovery memo.  Each entry stores the full query hash
    payload alongside the answer, so a hash collision or a stale
    schema reads as a miss — the same contract as
    :class:`~repro.scenarios.runner.ResultCache`, inherited from the
    same :class:`~repro.scenarios.runner.JsonCache` substrate
    (atomic writes, torn-entry-as-miss, counted I/O).
    """

    def get(self, query: QuerySpec) -> Optional[Answer]:
        """The cached answer for ``query``, or None."""
        payload = self.load(query.query_hash())
        if payload is None or payload.get("query") != query.hash_payload():
            return None
        return Answer.from_dict(payload["answer"])

    def put(self, query: QuerySpec, answer: Answer) -> None:
        """Store ``answer`` under ``query``'s hash (atomic write)."""
        self.store(query.query_hash(),
                   {"query": query.hash_payload(),
                    "answer": answer.to_dict()})


class QueryEngine:
    """Warm state + three-level answer resolution (see module doc).

    Parameters
    ----------
    cache_dir:
        Root of the durable tiers: scenario results at the top level
        (shared with ``python -m repro.scenarios`` sweeps — the
        "query the grid you just swept" path), answers under
        ``answers/``, dPerf traces under ``traces/``.  ``None`` runs
        memory-only (no restart recovery).
    memo_capacity:
        LRU answer-memo size; evicted answers fall back to the disk
        tier, never to recomputation.
    """

    def __init__(
        self,
        cache_dir: Optional[Path | str] = None,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
    ) -> None:
        if memo_capacity < 1:
            raise ValueError(f"memo_capacity must be >= 1, "
                             f"got {memo_capacity!r}")
        self.stats = ServeStats()
        # every durable store is opened here, once: the per-query cold
        # path below never constructs a cache or re-points the trace
        # directory (the hoist the syscall-free hot-path test pins)
        if cache_dir is not None:
            from ..fleet.store import ResultStore

            root = Path(cache_dir)
            self.result_cache: Optional[ResultCache] = ResultCache(root)
            self.answer_cache: Optional[AnswerCache] = AnswerCache(
                root / "answers"
            )
            # the consolidated cross-sweep index: results computed by
            # any fleet — or `fleet backfill`ed from any historical
            # manifest — resolve here without re-simulating
            self.result_store: Optional[ResultStore] = ResultStore(root)
            workloads.set_trace_cache_dir(root / "traces")
        else:
            self.result_cache = None
            self.answer_cache = None
            self.result_store = None
        self.memo_capacity = memo_capacity
        self._memo: "OrderedDict[str, Answer]" = OrderedDict()
        self._memo_lock = RLock()
        self._compute_lock = Lock()
        self._pricer = GroupPricer()

    # -- startup warm-up ----------------------------------------------------
    def preload_answers(self) -> int:
        """Load every on-disk answer into the LRU memo (startup only).

        Entries are content-addressed (file stem == query hash), so
        trusting them is exactly as safe as trusting a per-query disk
        read.  Returns the number of answers preloaded.
        """
        if self.answer_cache is None:
            return 0
        loaded = 0
        for path in sorted(self.answer_cache.root.glob("*.json")):
            payload = self.answer_cache.load(path.stem)
            if payload is None or "answer" not in payload:
                continue  # torn or foreign file: ignore, don't serve it
            self._memo_insert(path.stem, Answer.from_dict(payload["answer"]))
            loaded += 1
        self.stats.bump("preloaded_answers", loaded)
        return loaded

    def warm_pool(self, query: QuerySpec) -> None:
        """Pay a query's one-time costs (platform build, dPerf traces)
        without answering it — the daemon-startup warm-up hook."""
        from ..scenarios import platforms

        platforms.build_platform(query.platform)
        w = query.workload
        workloads.traces(w.app, query.n_peers, w.level, w.n, w.nit)

    # -- the answer path ----------------------------------------------------
    def _check_deadline(self, deadline: Optional[float]) -> None:
        """Raise :class:`ComputeAbandoned` (and count it) when the
        request's deadline has already passed — nobody is waiting for
        this answer any more."""
        if deadline is not None and time.monotonic() >= deadline:
            self.stats.bump("stale_computes")
            raise ComputeAbandoned(
                "request deadline expired; compute abandoned"
            )

    def answer(self, query: QuerySpec,
               deadline: Optional[float] = None) -> Answer:
        """Answer one query (memo → disk tier → compute).

        ``deadline`` is a ``time.monotonic()`` instant after which the
        caller has stopped waiting (the daemon's request timeout); an
        expired deadline abandons the compute with
        :class:`ComputeAbandoned` instead of holding the compute lock
        for an answer nobody will read.  Cache hits always answer —
        they're free.
        """
        self.stats.bump("queries")
        qh = query.query_hash()
        with self._memo_lock:
            hit = self._memo.get(qh)
            if hit is not None:
                self._memo.move_to_end(qh)
                self.stats.bump("memo_hits")
                return hit
        if self.answer_cache is not None:
            answer = self.answer_cache.get(query)
            if answer is not None:
                self.stats.bump("answer_disk_hits")
                self._memo_insert(qh, answer)
                return answer
        self._check_deadline(deadline)
        with self._compute_lock:
            # the deadline may have expired while we queued on the
            # lock behind another compute — bail before simulating
            self._check_deadline(deadline)
            # double-checked: a concurrent thread may have computed
            # this exact query while we waited on the lock
            with self._memo_lock:
                hit = self._memo.get(qh)
                if hit is not None:
                    self._memo.move_to_end(qh)
                    self.stats.bump("memo_hits")
                    return hit
            answer = self._compute(query, deadline)
        if self.answer_cache is not None:
            self.answer_cache.put(query, answer)
        self._memo_insert(qh, answer)
        return answer

    def batch(self, queries: Sequence[QuerySpec],
              deadline: Optional[float] = None) -> List[Answer]:
        """Answer a batch in order (amortizes warm state across it)."""
        return [self.answer(q, deadline) for q in queries]

    def _compute(self, query: QuerySpec,
                 deadline: Optional[float] = None) -> Answer:
        """Price the seed pool (each level of the scenario stack
        counted: memo probe free, disk probes counted by the caches,
        store probe bumps ``store_hits``, simulation bumps
        ``scenario_runs``).  The deadline is consulted between pool
        members: one scenario run is the staleness bound."""
        self.stats.bump("computed")
        results = []
        for spec in query.scenario_specs():
            self._check_deadline(deadline)
            key = spec.spec_hash()
            result = memo_get(key)
            if result is None and self.result_cache is not None:
                result = self.result_cache.get(spec)
                if result is not None:
                    self.stats.bump("result_disk_hits")
                    memo_put(key, result)
            if result is None and self.result_store is not None:
                result = self.result_store.get_result(key)
                if result is not None:
                    # promote the store hit into the faster tiers so
                    # the next probe never re-scans the index
                    self.stats.bump("store_hits")
                    memo_put(key, result)
                    if self.result_cache is not None:
                        self.result_cache.put(spec, result)
            if result is None:
                self.stats.bump("scenario_runs")
                result = run_scenario(spec)
                memo_put(key, result)
                if self.result_cache is not None:
                    self.result_cache.put(spec, result)
            results.append(result)
        return compute_answer(query, results)

    def _memo_insert(self, qh: str, answer: Answer) -> None:
        with self._memo_lock:
            self._memo[qh] = answer
            self._memo.move_to_end(qh)
            while len(self._memo) > self.memo_capacity:
                self._memo.popitem(last=False)
                self.stats.bump("memo_evictions")

    # -- batch pricing (the analytic fast path) -----------------------------
    def price_batch(
        self,
        platform: PlatformPlan,
        pool: int,
        n_peers: int,
        workload_plans: Sequence[WorkloadPlan],
    ) -> List[Dict[str, Any]]:
        """Analytic makespan pricing of many workloads on one platform.

        No simulation: the pool is the platform's ``pool`` fastest
        hosts (speed-descending, name tie-break — the single-member
        makespan order under the max model, so the windowed
        enumeration fallback stays optimal), and each workload is
        priced over the candidate groups via the shared
        :class:`~repro.p2pdc.prediction.GroupPricer`, which enumerates
        the groups once for the whole batch.
        """
        from ..scenarios import platforms

        if pool < n_peers:
            raise ValueError(
                f"pricing pool ({pool}) must be >= n_peers ({n_peers})"
            )
        spec = platforms.build_platform(platform)
        if pool > len(spec.hosts):
            raise ValueError(
                f"pricing pool ({pool}) exceeds platform size "
                f"({len(spec.hosts)})"
            )
        hosts = sorted(spec.hosts, key=lambda h: (-h.speed, h.name))[:pool]
        members = tuple((h.name, h.speed) for h in hosts)
        priced = []
        for plan in workload_plans:
            workload = workloads.make_workload(plan, n_peers)
            group, makespan = self._pricer.best_group(
                workload, members, n_peers
            )
            self.stats.bump("priced")
            priced.append({
                "workload": workload.name,
                "members": [name for name, _speed in group],
                "makespan": makespan,
            })
        return priced

    # -- observability ------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Engine counters plus the durable tiers' I/O counters."""
        snap = self.stats.snapshot()
        snap["memo_size"] = len(self._memo)
        snap["pricer_enumerations"] = self._pricer.enumerations
        if self.result_cache is not None:
            snap["result_cache_disk_reads"] = self.result_cache.disk_reads
            snap["result_cache_disk_writes"] = self.result_cache.disk_writes
            snap["result_cache_read_errors"] = \
                self.result_cache.cache_read_errors
        if self.answer_cache is not None:
            snap["answer_cache_disk_reads"] = self.answer_cache.disk_reads
            snap["answer_cache_disk_writes"] = self.answer_cache.disk_writes
            snap["answer_cache_read_errors"] = \
                self.answer_cache.cache_read_errors
        if self.result_store is not None:
            snap["store_sidecar_rebuilds"] = \
                self.result_store.sidecar_rebuilds
            snap["store_sidecar_tail_refreshes"] = \
                self.result_store.sidecar_tail_refreshes
            snap["store_sidecar_persists"] = \
                self.result_store.sidecar_persists
        return snap

    def disk_io(self) -> int:
        """Total on-disk cache touches — the syscall-free-hot-path pin."""
        total = 0
        for cache in (self.result_cache, self.answer_cache):
            if cache is not None:
                total += cache.disk_reads + cache.disk_writes
        return total
