"""Platform descriptions for the paper's three evaluation stages."""

from .cluster import DEFAULT_NODE_SPEED, build_cluster
from .daisy import build_daisy
from .lan import build_lan
from .multisite import build_multisite
from .spec import PlatformSpec, parse_platform_xml, write_platform_xml

__all__ = [
    "DEFAULT_NODE_SPEED",
    "PlatformSpec",
    "build_cluster",
    "build_daisy",
    "build_lan",
    "build_multisite",
    "parse_platform_xml",
    "write_platform_xml",
]
