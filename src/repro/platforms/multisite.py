"""Multi-site platform: LAN islands joined by shared WAN uplinks.

The paper's future-work scenario (§V: "a completely heterogeneous
peer-to-peer grid connected over a heterogeneous network"): several
campus/enterprise sites, each a switched LAN, interconnected through a
WAN core.  Intra-site paths are cheap; inter-site paths pay WAN
latency and contend on the site's single uplink — the setting where
P2PDC's proximity grouping visibly pays off.
"""

from __future__ import annotations

from ..net import GBPS, MBPS, MS, US, Host, Router, Topology
from .cluster import DEFAULT_NODE_SPEED
from .spec import PlatformSpec


def build_multisite(
    n_sites: int = 4,
    peers_per_site: int = 8,
    node_speed: float = DEFAULT_NODE_SPEED,
    access_bandwidth: float = 100.0 * MBPS,
    access_latency: float = 300 * US,
    uplink_bandwidth: float = 34.0 * MBPS,   # E3-class site uplink
    uplink_latency: float = 10.0 * MS,
    core_bandwidth: float = 1.0 * GBPS,
    core_latency: float = 2.0 * MS,
    name: str = "multisite",
) -> PlatformSpec:
    """``n_sites`` LAN islands behind WAN uplinks to a shared core.

    Hosts are ordered site by site, so contiguous host ranges (and the
    IP blocks experiments assign to them) are co-located — the
    assumption behind P2PDC's longest-common-prefix metric.
    """
    if n_sites < 1 or peers_per_site < 1:
        raise ValueError("need at least one site with one peer")
    topo = Topology(name)
    core = topo.add_node(Router("wan-core"))
    hosts = []
    for s in range(n_sites):
        switch = topo.add_node(Router(f"site-{s}-sw"))
        topo.add_link(switch, core, uplink_bandwidth, uplink_latency)
        for k in range(peers_per_site):
            host = Host(f"site-{s}-peer-{k}", speed=node_speed)
            topo.add_node(host)
            topo.add_link(host, switch, access_bandwidth, access_latency)
            hosts.append(host)
    return PlatformSpec(
        name,
        topo,
        hosts,
        attrs={
            "kind": "multisite",
            "n_sites": n_sites,
            "peers_per_site": peers_per_site,
            "access_bandwidth": access_bandwidth,
            "uplink_bandwidth": uplink_bandwidth,
            "uplink_latency": uplink_latency,
            "core_bandwidth": core_bandwidth,
            "core_latency": core_latency,
        },
    )
