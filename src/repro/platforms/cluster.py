"""Stage-1 platform: the Bordeplage-like homogeneous cluster.

Paper §IV-A3/4: Intel Xeon EM64T 3 GHz nodes, 1 Gbps NICs with 100 µs
latency, 10 Gbps backbone with 100 µs latency, one core per node.

Modelling choice: hosts are split round-robin over two leaf switches
joined by the 10 Gbps backbone link.  This keeps all host↔host routes
symmetric *and* exercises both numbers from the paper: every transfer
pays two NIC hops, and transfers between hosts on different leaves
cross (and may contend on) the backbone.
"""

from __future__ import annotations

from ..net import GBPS, US, Host, Router, Topology
from .spec import PlatformSpec

#: Calibrated effective speed of one Bordeplage core for the obstacle
#: kernel, in flop/s.  (3 GHz Xeon EM64T; the per-operation costs in
#: repro.dperf.costmodel are expressed against this base clock.)
DEFAULT_NODE_SPEED = 3.0e9


def build_cluster(
    n_hosts: int = 32,
    node_speed: float = DEFAULT_NODE_SPEED,
    nic_bandwidth: float = 1.0 * GBPS,
    nic_latency: float = 100 * US,
    backbone_bandwidth: float = 10.0 * GBPS,
    backbone_latency: float = 100 * US,
    name: str = "grid5000",
) -> PlatformSpec:
    """Build the Stage-1 cluster platform with ``n_hosts`` nodes."""
    if n_hosts < 1:
        raise ValueError("cluster needs at least one host")
    topo = Topology(name)
    leaf_a = topo.add_node(Router("sw-a"))
    leaf_b = topo.add_node(Router("sw-b"))
    topo.add_link(leaf_a, leaf_b, backbone_bandwidth, backbone_latency)
    hosts = []
    for i in range(n_hosts):
        host = Host(f"node-{i}", speed=node_speed)
        topo.add_node(host)
        leaf = leaf_a if i % 2 == 0 else leaf_b
        topo.add_link(host, leaf, nic_bandwidth, nic_latency)
        hosts.append(host)
    return PlatformSpec(
        name,
        topo,
        hosts,
        attrs={
            "kind": "cluster",
            "n_hosts": n_hosts,
            "node_speed": node_speed,
            "nic_bandwidth": nic_bandwidth,
            "nic_latency": nic_latency,
            "backbone_bandwidth": backbone_bandwidth,
            "backbone_latency": backbone_latency,
        },
    )
