"""Stage-2B platform: a regular campus/corporate LAN.

Paper §IV-A4: backbone of 1 Gbps; each node connected to the backbone
at 100 Mbps.  As with the cluster we split hosts round-robin over two
access switches joined by the backbone link, so the backbone is a real
shared resource.  Access latency 300 µs (a campus path crosses several
store-and-forward switches; noticeably worse than the cluster's
dedicated 100 µs NICs), backbone 100 µs — both recorded in ``attrs``.
"""

from __future__ import annotations

from ..net import GBPS, MBPS, US, Host, Router, Topology
from .cluster import DEFAULT_NODE_SPEED
from .spec import PlatformSpec


def build_lan(
    n_hosts: int = 1024,
    node_speed: float = DEFAULT_NODE_SPEED,
    access_bandwidth: float = 100.0 * MBPS,
    access_latency: float = 300 * US,
    backbone_bandwidth: float = 1.0 * GBPS,
    backbone_latency: float = 100 * US,
    name: str = "lan",
) -> PlatformSpec:
    """Build the Stage-2B LAN with ``n_hosts`` nodes (paper: 2^10)."""
    if n_hosts < 1:
        raise ValueError("LAN needs at least one host")
    topo = Topology(name)
    leaf_a = topo.add_node(Router("access-a"))
    leaf_b = topo.add_node(Router("access-b"))
    topo.add_link(leaf_a, leaf_b, backbone_bandwidth, backbone_latency)
    hosts = []
    for i in range(n_hosts):
        host = Host(f"desk-{i}", speed=node_speed)
        topo.add_node(host)
        leaf = leaf_a if i % 2 == 0 else leaf_b
        topo.add_link(host, leaf, access_bandwidth, access_latency)
        hosts.append(host)
    return PlatformSpec(
        name,
        topo,
        hosts,
        attrs={
            "kind": "lan",
            "n_hosts": n_hosts,
            "node_speed": node_speed,
            "access_bandwidth": access_bandwidth,
            "access_latency": access_latency,
            "backbone_bandwidth": backbone_bandwidth,
            "backbone_latency": backbone_latency,
        },
    )
