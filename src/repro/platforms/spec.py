"""Platform specification: a named topology plus its compute hosts.

dPerf feeds SimGrid a *platform description file*; we reproduce that
artifact with a small XML dialect (`write_platform_xml` /
`parse_platform_xml`) so predictions are driven by a serializable,
inspectable description — not by in-memory objects only.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List

from ..net import Host, NetNode, Router, Topology
from ..net.nodes import Dslam


@dataclass
class PlatformSpec:
    """A simulated execution platform.

    Attributes
    ----------
    name:
        Platform identifier (``grid5000``, ``xdsl``, ``lan``).
    topology:
        The network graph.
    hosts:
        Compute endpoints in deterministic order; experiment runners
        take the first *n* as the participating peers.
    attrs:
        Free-form metadata (builder parameters), recorded for
        EXPERIMENTS.md provenance.
    """

    name: str
    topology: Topology
    hosts: List[Host]
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError(f"platform {self.name!r} has no hosts")

    def take_hosts(self, n: int) -> List[Host]:
        if n > len(self.hosts):
            raise ValueError(
                f"platform {self.name!r} has {len(self.hosts)} hosts, need {n}"
            )
        return self.hosts[:n]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PlatformSpec {self.name!r}: {len(self.hosts)} hosts>"


def write_platform_xml(spec: PlatformSpec) -> str:
    """Serialize a platform to the dPerf platform-description dialect."""
    root = ET.Element("platform", {"name": spec.name, "version": "1"})
    for node in spec.topology.nodes:
        if isinstance(node, Host):
            ET.SubElement(root, "host", {"id": node.name, "speed": repr(node.speed)})
        elif isinstance(node, Dslam):
            ET.SubElement(root, "dslam", {"id": node.name})
        else:
            ET.SubElement(root, "router", {"id": node.name})
    seen = set()
    for u, v, data in spec.topology.graph.edges(data=True):
        if (v, u) in seen:
            continue  # emitted as duplex already
        link = data["link"]
        duplex = spec.topology.graph.has_edge(v, u)
        seen.add((u, v))
        ET.SubElement(
            root,
            "link",
            {
                "src": u,
                "dst": v,
                "bandwidth": repr(link.bandwidth),
                "latency": repr(link.latency),
                "duplex": "true" if duplex else "false",
            },
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def parse_platform_xml(text: str) -> PlatformSpec:
    """Parse a platform description back into a :class:`PlatformSpec`."""
    root = ET.fromstring(text)
    if root.tag != "platform":
        raise ValueError(f"not a platform file (root tag {root.tag!r})")
    topo = Topology(root.get("name", "platform"))
    hosts: List[Host] = []
    for el in root:
        if el.tag == "host":
            h = Host(el.attrib["id"], speed=float(el.attrib["speed"]))
            topo.add_node(h)
            hosts.append(h)
        elif el.tag == "router":
            topo.add_node(Router(el.attrib["id"]))
        elif el.tag == "dslam":
            topo.add_node(Dslam(el.attrib["id"]))
    for el in root:
        if el.tag == "link":
            topo.add_link(
                topo.node(el.attrib["src"]),
                topo.node(el.attrib["dst"]),
                bandwidth=float(el.attrib["bandwidth"]),
                latency=float(el.attrib["latency"]),
                duplex=el.attrib.get("duplex", "true") == "true",
            )
    return PlatformSpec(root.get("name", "platform"), topo, hosts)
