"""Stage-2A platform: the Daisy xDSL topology (paper Fig. 8).

Structure (1024 end nodes):

* 5 central routers in a ring (links ``l1`` @ 100 Gbps) — one per petal;
* 5 petals, each a loop of 10 routers hanging off its central router
  (links ``l2`` @ 10 Gbps);
* 4 DSLAMs per petal router (``l2`` @ 10 Gbps);
* 5 nodes per DSLAM over xDSL last-mile links (``l3`` @ 5–10 Mbps,
  value randomly assigned per the paper), except one exceptional DSLAM
  that connects 5 + 24 nodes so the total reaches 1024.

Latencies are not given in the paper; we use typical values for
European xDSL deployments of the era and record them in ``attrs``:
last-mile 15 ms (interleaved DSL), aggregation links 1 ms, core ring
0.5 ms.
"""

from __future__ import annotations

import random

from ..desim.rng import derive_seed
from ..net import GBPS, MBPS, MS, Dslam, Host, Router, Topology
from .cluster import DEFAULT_NODE_SPEED
from .spec import PlatformSpec

N_CENTRAL = 5
ROUTERS_PER_PETAL = 10
DSLAMS_PER_ROUTER = 4
NODES_PER_DSLAM = 5
EXTRA_NODES = 24  # the exceptional DSLAM: 5 + 24 nodes


def build_daisy(
    node_speed: float = DEFAULT_NODE_SPEED,
    l1_bandwidth: float = 100.0 * GBPS,
    l2_bandwidth: float = 10.0 * GBPS,
    l3_min_bandwidth: float = 5.0 * MBPS,
    l3_max_bandwidth: float = 10.0 * MBPS,
    core_latency: float = 0.5 * MS,
    agg_latency: float = 1.0 * MS,
    last_mile_latency: float = 15.0 * MS,
    seed: int = 2011,
    petals: int = N_CENTRAL,
    routers_per_petal: int = ROUTERS_PER_PETAL,
    dslams_per_router: int = DSLAMS_PER_ROUTER,
    nodes_per_dslam: int = NODES_PER_DSLAM,
    extra_nodes: int = EXTRA_NODES,
    name: str = "xdsl",
) -> PlatformSpec:
    """Build the Daisy topology.  Defaults give the paper's 1024 nodes.

    Pass smaller ``petals``/``routers_per_petal``/... for test-sized
    instances; the shape (ring of petal loops, DSLAM fan-out, random
    last-mile bandwidth) is preserved at any size.
    """
    rng = random.Random(derive_seed(seed, "daisy-l3"))
    topo = Topology(name)

    central = [topo.add_node(Router(f"core-{c}")) for c in range(petals)]
    for c in range(petals):
        topo.add_link(central[c], central[(c + 1) % petals], l1_bandwidth, core_latency)

    hosts: list[Host] = []
    exceptional_dslam = None
    for p in range(petals):
        petal_routers = [
            topo.add_node(Router(f"petal-{p}-r{r}")) for r in range(routers_per_petal)
        ]
        # The petal is a loop: both chain ends attach to the central router.
        topo.add_link(central[p], petal_routers[0], l2_bandwidth, agg_latency)
        for r in range(routers_per_petal - 1):
            topo.add_link(petal_routers[r], petal_routers[r + 1], l2_bandwidth, agg_latency)
        if routers_per_petal > 1:
            topo.add_link(petal_routers[-1], central[p], l2_bandwidth, agg_latency)
        for r, router in enumerate(petal_routers):
            for d in range(dslams_per_router):
                dslam = topo.add_node(Dslam(f"dslam-{p}-{r}-{d}"))
                topo.add_link(router, dslam, l2_bandwidth, agg_latency)
                if exceptional_dslam is None:
                    exceptional_dslam = dslam
                for k in range(nodes_per_dslam):
                    hosts.append(
                        _attach_node(
                            topo, dslam, f"peer-{p}-{r}-{d}-{k}", node_speed,
                            rng, l3_min_bandwidth, l3_max_bandwidth,
                            last_mile_latency,
                        )
                    )
    # The exceptional DSLAM gets the remainder so totals match the paper.
    for k in range(extra_nodes):
        hosts.append(
            _attach_node(
                topo, exceptional_dslam, f"peer-x-{k}", node_speed,
                rng, l3_min_bandwidth, l3_max_bandwidth, last_mile_latency,
            )
        )

    return PlatformSpec(
        name,
        topo,
        hosts,
        attrs={
            "kind": "daisy-xdsl",
            "n_hosts": len(hosts),
            "node_speed": node_speed,
            "l1_bandwidth": l1_bandwidth,
            "l2_bandwidth": l2_bandwidth,
            "l3_bandwidth_range": (l3_min_bandwidth, l3_max_bandwidth),
            "core_latency": core_latency,
            "agg_latency": agg_latency,
            "last_mile_latency": last_mile_latency,
            "seed": seed,
        },
    )


def _attach_node(topo, dslam, name, speed, rng, bw_lo, bw_hi, latency) -> Host:
    host = Host(name, speed=speed)
    topo.add_node(host)
    bandwidth = rng.uniform(bw_lo, bw_hi)
    topo.add_link(host, dslam, bandwidth, latency)
    return host
