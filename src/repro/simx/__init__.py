"""Trace-based simulation (the SimGrid/MSG role in dPerf's pipeline)."""

from .replay import ReplayResult, TraceReplayer, replay_traces
from .tracefile import dump_trace, load_trace, read_trace_files, write_trace_files
from .traces import (
    AllReduce,
    Barrier,
    Compute,
    ISend,
    Recv,
    Send,
    Trace,
    TraceEvent,
    decode_event,
    validate_trace_set,
)

__all__ = [
    "AllReduce",
    "Barrier",
    "Compute",
    "ISend",
    "Recv",
    "ReplayResult",
    "Send",
    "Trace",
    "TraceEvent",
    "TraceReplayer",
    "decode_event",
    "dump_trace",
    "load_trace",
    "read_trace_files",
    "replay_traces",
    "validate_trace_set",
    "write_trace_files",
]
