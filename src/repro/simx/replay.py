"""Trace-based simulation: replay dPerf traces on a platform.

This is the SimGrid/MSG stage of the paper's pipeline (Fig. 6,
"Trace-based Network Simulation"): one simulated process per trace
replays its computation bursts (scaled by the target host's speed) and
its communication calls over the fluid network; the result is the
total predicted time ``t_predicted``.

Collective operations are expanded into real point-to-point messages
(centralized barrier / reduce+broadcast), so their cost reflects the
simulated platform rather than an analytic formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..desim import Mailbox, Simulator
from ..net import FluidNetwork, Host, TcpModel
from ..platforms import PlatformSpec
from .traces import AllReduce, Barrier, Compute, Recv, Send, Trace, validate_trace_set

_CTRL_BYTES = 64  # size of barrier/collective control messages


@dataclass
class ReplayResult:
    """Outcome of a trace replay."""

    makespan: float
    finish_times: List[float]
    compute_time: List[float]
    blocked_time: List[float]
    bytes_sent: float
    events_replayed: int

    @property
    def t_predicted(self) -> float:
        """The paper's ``t_predicted`` — end-to-end simulated time."""
        return self.makespan

    def summary(self) -> str:
        n = len(self.finish_times)
        return (
            f"t_predicted={self.makespan:.4f}s over {n} ranks "
            f"(max compute {max(self.compute_time):.4f}s, "
            f"max blocked {max(self.blocked_time):.4f}s)"
        )


class TraceReplayer:
    """Replays a consistent trace set on a platform."""

    def __init__(
        self,
        traces: Sequence[Trace],
        platform: PlatformSpec,
        hosts: Optional[Sequence[Host]] = None,
        tcp: TcpModel = TcpModel(),
        reference_speed: Optional[float] = None,
        validate: bool = True,
    ) -> None:
        if validate:
            validate_trace_set(traces)
        self.traces = sorted(traces, key=lambda t: t.rank)
        self.platform = platform
        self.hosts = list(hosts) if hosts is not None else platform.take_hosts(
            len(self.traces)
        )
        if len(self.hosts) != len(self.traces):
            raise ValueError(
                f"{len(self.traces)} traces but {len(self.hosts)} hosts"
            )
        self.sim = Simulator()
        self.net = FluidNetwork(self.sim, platform.topology, tcp=tcp)
        # Trace compute-ns were measured on the reference machine; when
        # replaying on faster/slower hosts they scale by speed ratio.
        self.reference_speed = (
            reference_speed if reference_speed is not None else self.hosts[0].speed
        )
        self._boxes: Dict[Tuple[int, int, str], Mailbox] = {}
        self._finish = [0.0] * len(self.traces)
        self._compute = [0.0] * len(self.traces)
        self._blocked = [0.0] * len(self.traces)
        self._barrier_seq = [0] * len(self.traces)
        self._ar_seq = [0] * len(self.traces)

    # -- mailbox plumbing ---------------------------------------------------
    def _box(self, dst: int, src: int, tag: str) -> Mailbox:
        key = (dst, src, tag)
        box = self._boxes.get(key)
        if box is None:
            box = Mailbox(f"r{src}->r{dst}:{tag}")
            self._boxes[key] = box
        return box

    def _transmit(self, src: int, dst: int, size: float, tag: str):
        """Start a network flow; deliver into dst's mailbox on arrival."""
        done = self.net.send(self.hosts[src], self.hosts[dst], size, tag=tag)
        box = self._box(dst, src, tag)
        done._subscribe(lambda sig: box.put(sig.value))
        return done

    # -- per-rank replay process ---------------------------------------------
    def _rank_process(self, trace: Trace):
        rank = trace.rank
        n = len(self.traces)
        host = self.hosts[rank]
        speed_scale = self.reference_speed / host.speed
        sim = self.sim
        for event in trace.events:
            if isinstance(event, Compute):
                dt = event.ns * 1e-9 * speed_scale
                self._compute[rank] += dt
                yield sim.timeout(dt)
            elif isinstance(event, Send):
                done = self._transmit(rank, event.dst, event.size, event.tag)
                if event.blocking:
                    t0 = sim.now
                    yield done
                    self._blocked[rank] += sim.now - t0
            elif isinstance(event, Recv):
                t0 = sim.now
                yield self._box(rank, event.src, event.tag).get()
                self._blocked[rank] += sim.now - t0
            elif isinstance(event, Barrier):
                t0 = sim.now
                yield from self._do_barrier(rank, n)
                self._blocked[rank] += sim.now - t0
            elif isinstance(event, AllReduce):
                t0 = sim.now
                yield from self._do_allreduce(rank, n, event.size)
                self._blocked[rank] += sim.now - t0
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown trace event {event!r}")
        self._finish[rank] = sim.now

    def _do_barrier(self, rank: int, n: int):
        if n == 1:
            return
        seq = self._barrier_seq[rank]
        self._barrier_seq[rank] += 1
        tag = f"__bar{seq}"
        if rank == 0:
            for src in range(1, n):
                yield self._box(0, src, tag).get()
            for dst in range(1, n):
                self._transmit(0, dst, _CTRL_BYTES, tag + "r")
        else:
            self._transmit(rank, 0, _CTRL_BYTES, tag)
            yield self._box(rank, 0, tag + "r").get()

    def _do_allreduce(self, rank: int, n: int, size: int):
        if n == 1:
            return
        seq = self._ar_seq[rank]
        self._ar_seq[rank] += 1
        tag = f"__ar{seq}"
        if rank == 0:
            for src in range(1, n):
                yield self._box(0, src, tag).get()
            for dst in range(1, n):
                self._transmit(0, dst, size, tag + "r")
        else:
            self._transmit(rank, 0, size, tag)
            yield self._box(rank, 0, tag + "r").get()

    # -- entry point --------------------------------------------------------
    def run(self, time_limit: float = 1e7) -> ReplayResult:
        procs = [self.sim.process(self._rank_process(t), name=f"rank{t.rank}")
                 for t in self.traces]
        self.sim.run(until=time_limit)
        for p in procs:
            if not p.triggered:
                raise RuntimeError(
                    f"replay deadlock or time-limit: {p.name} unfinished "
                    f"at t={self.sim.now:g}"
                )
            p.check()
        return ReplayResult(
            makespan=max(self._finish),
            finish_times=self._finish,
            compute_time=self._compute,
            blocked_time=self._blocked,
            bytes_sent=self.net.bytes_delivered,
            events_replayed=sum(len(t) for t in self.traces),
        )


def replay_traces(
    traces: Sequence[Trace],
    platform: PlatformSpec,
    hosts: Optional[Sequence[Host]] = None,
    tcp: TcpModel = TcpModel(),
    reference_speed: Optional[float] = None,
) -> ReplayResult:
    """One-shot convenience wrapper around :class:`TraceReplayer`."""
    return TraceReplayer(
        traces, platform, hosts=hosts, tcp=tcp, reference_speed=reference_speed
    ).run()
