"""dPerf trace events.

A trace is the per-process output of running the instrumented
application: a sequence of computation records (nanoseconds, as read
from the emulated hardware counters) interleaved with the parameters
of every communication call (paper §III-D2, "Obtaining trace files").

Event vocabulary
----------------
``compute ns``            computation burst of ``ns`` nanoseconds
``send dst bytes tag``    blocking send to rank ``dst``
``isend dst bytes tag``   non-blocking send (fire and forget)
``recv src tag``          blocking receive from rank ``src``
``barrier``               global barrier over all ranks
``allreduce bytes``       reduction + broadcast of ``bytes`` payload
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class TraceEvent:
    kind: str  # compute | send | isend | recv | barrier | allreduce

    def encode(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Compute(TraceEvent):
    ns: int

    def __init__(self, ns: float) -> None:
        object.__setattr__(self, "kind", "compute")
        object.__setattr__(self, "ns", int(round(ns)))
        if self.ns < 0:
            raise ValueError("negative compute duration")

    def encode(self) -> str:
        return f"compute {self.ns}"


@dataclass(frozen=True)
class Send(TraceEvent):
    dst: int
    size: int
    tag: str = "msg"
    blocking: bool = True

    def __init__(self, dst: int, size: float, tag: str = "msg",
                 blocking: bool = True) -> None:
        object.__setattr__(self, "kind", "send" if blocking else "isend")
        object.__setattr__(self, "dst", int(dst))
        object.__setattr__(self, "size", int(round(size)))
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "blocking", blocking)
        if self.size < 0:
            raise ValueError("negative message size")

    def encode(self) -> str:
        return f"{self.kind} {self.dst} {self.size} {self.tag}"


def ISend(dst: int, size: float, tag: str = "msg") -> Send:
    """Convenience constructor for a non-blocking send event."""
    return Send(dst, size, tag, blocking=False)


@dataclass(frozen=True)
class Recv(TraceEvent):
    src: int
    tag: str = "msg"

    def __init__(self, src: int, tag: str = "msg") -> None:
        object.__setattr__(self, "kind", "recv")
        object.__setattr__(self, "src", int(src))
        object.__setattr__(self, "tag", tag)

    def encode(self) -> str:
        return f"recv {self.src} {self.tag}"


@dataclass(frozen=True)
class Barrier(TraceEvent):
    def __init__(self) -> None:
        object.__setattr__(self, "kind", "barrier")

    def encode(self) -> str:
        return "barrier"


@dataclass(frozen=True)
class AllReduce(TraceEvent):
    size: int

    def __init__(self, size: float) -> None:
        object.__setattr__(self, "kind", "allreduce")
        object.__setattr__(self, "size", int(round(size)))
        if self.size < 0:
            raise ValueError("negative allreduce size")

    def encode(self) -> str:
        return f"allreduce {self.size}"


@dataclass
class Trace:
    """One process's trace plus identifying metadata."""

    rank: int
    nprocs: int
    events: List[TraceEvent] = field(default_factory=list)
    app: str = "app"
    meta: dict = field(default_factory=dict)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    # aggregate views used by tests/analysis ------------------------------
    @property
    def total_compute_ns(self) -> int:
        return sum(e.ns for e in self.events if isinstance(e, Compute))

    @property
    def total_bytes_sent(self) -> int:
        return sum(e.size for e in self.events if isinstance(e, Send))

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __len__(self) -> int:
        return len(self.events)


def decode_event(line: str) -> TraceEvent:
    """Parse one encoded trace line back into an event."""
    parts = line.split()
    if not parts:
        raise ValueError("empty trace line")
    kind = parts[0]
    try:
        if kind == "compute":
            return Compute(int(parts[1]))
        if kind == "send":
            return Send(int(parts[1]), int(parts[2]), parts[3])
        if kind == "isend":
            return Send(int(parts[1]), int(parts[2]), parts[3], blocking=False)
        if kind == "recv":
            return Recv(int(parts[1]), parts[2])
        if kind == "barrier":
            return Barrier()
        if kind == "allreduce":
            return AllReduce(int(parts[1]))
    except (IndexError, ValueError) as err:
        raise ValueError(f"malformed trace line {line!r}") from err
    raise ValueError(f"unknown trace event kind {kind!r}")


def validate_trace_set(traces: Sequence[Trace]) -> None:
    """Sanity-check a set of traces forms a consistent application run.

    Checks: contiguous ranks, matching ``nprocs``, send/recv pairing
    per (src, dst, tag) channel, and equal barrier/allreduce counts.
    """
    n = len(traces)
    if n == 0:
        raise ValueError("empty trace set")
    ranks = sorted(t.rank for t in traces)
    if ranks != list(range(n)):
        raise ValueError(f"ranks not contiguous: {ranks}")
    for t in traces:
        if t.nprocs != n:
            raise ValueError(
                f"rank {t.rank}: nprocs={t.nprocs} but trace set has {n}"
            )
    sends: dict = {}
    recvs: dict = {}
    for t in traces:
        for e in t.events:
            if isinstance(e, Send):
                if not (0 <= e.dst < n):
                    raise ValueError(f"rank {t.rank}: send to bad rank {e.dst}")
                key = (t.rank, e.dst, e.tag)
                sends[key] = sends.get(key, 0) + 1
            elif isinstance(e, Recv):
                if not (0 <= e.src < n):
                    raise ValueError(f"rank {t.rank}: recv from bad rank {e.src}")
                key = (e.src, t.rank, e.tag)
                recvs[key] = recvs.get(key, 0) + 1
    if sends != recvs:
        missing = {k: (sends.get(k, 0), recvs.get(k, 0))
                   for k in set(sends) | set(recvs)
                   if sends.get(k, 0) != recvs.get(k, 0)}
        raise ValueError(f"unmatched send/recv channels: {missing}")
    barrier_counts = {t.count("barrier") for t in traces}
    if len(barrier_counts) > 1:
        raise ValueError(f"barrier count mismatch: {barrier_counts}")
    ar_counts = {t.count("allreduce") for t in traces}
    if len(ar_counts) > 1:
        raise ValueError(f"allreduce count mismatch: {ar_counts}")
