"""Trace file I/O.

One text file per process, mirroring dPerf's on-disk artifacts:

.. code-block:: text

    # dperf-trace v1
    # rank 0
    # nprocs 4
    # app obstacle
    # meta opt_level O3
    compute 1234567
    isend 1 524288 halo-up
    recv 1 halo-down

Comments carry metadata (``# key value``); every other line is an
encoded :class:`~repro.simx.traces.TraceEvent`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence

from .traces import Trace, decode_event

MAGIC = "# dperf-trace v1"


def dump_trace(trace: Trace) -> str:
    """Serialize one trace to the on-disk text format."""
    lines = [MAGIC, f"# rank {trace.rank}", f"# nprocs {trace.nprocs}",
             f"# app {trace.app}"]
    for key, val in sorted(trace.meta.items()):
        lines.append(f"# meta {key} {val}")
    lines.extend(e.encode() for e in trace.events)
    return "\n".join(lines) + "\n"


def load_trace(text: str) -> Trace:
    """Parse a trace file's text back into a :class:`Trace`."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise ValueError("not a dperf trace file (missing magic header)")
    rank = nprocs = None
    app = "app"
    meta: dict = {}
    events = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split(None, 2)
            if not parts:
                continue
            if parts[0] == "rank":
                rank = int(parts[1])
            elif parts[0] == "nprocs":
                nprocs = int(parts[1])
            elif parts[0] == "app":
                app = parts[1]
            elif parts[0] == "meta" and len(parts) == 3:
                key, rest = parts[1], parts[2]
                meta[key] = rest
            continue
        events.append(decode_event(line))
    if rank is None or nprocs is None:
        raise ValueError("trace file missing rank/nprocs header")
    return Trace(rank=rank, nprocs=nprocs, events=events, app=app, meta=meta)


def write_trace_files(traces: Sequence[Trace], directory: str | Path) -> List[Path]:
    """Write ``<app>.rank<k>.trace`` files; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for trace in traces:
        path = directory / f"{trace.app}.rank{trace.rank}.trace"
        path.write_text(dump_trace(trace))
        paths.append(path)
    return paths


def read_trace_files(directory: str | Path, app: str) -> List[Trace]:
    """Load all ``<app>.rank*.trace`` files, sorted by rank."""
    directory = Path(directory)
    traces = []
    for name in os.listdir(directory):
        if name.startswith(f"{app}.rank") and name.endswith(".trace"):
            traces.append(load_trace((directory / name).read_text()))
    if not traces:
        raise FileNotFoundError(f"no {app}.rank*.trace files in {directory}")
    traces.sort(key=lambda t: t.rank)
    return traces
