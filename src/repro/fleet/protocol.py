"""The work-stealing wire: a shared directory of atomic files.

The fleet coordinates over the same substrate the result cache
already trusts — atomic filesystem operations on a shared directory
(local disk for a process pool, a shared mount for remote machines).
No sockets, no broker: any machine that can see the cache directory
can attach a worker.

Layout, under ``<cache>/fleet/<label>/``::

    grid.json            the full task list (dispatcher writes once)
    queue/p<idx>.json    one claimable task per pending point
    active/p<idx>.<wid>.json   a claimed task, owned by worker <wid>
    done/p<idx>.json     the finished point (name, hash, result, worker)
    poison/p<idx>.json   a quarantined point (exhausted its retries)
    workers/<wid>.json   heartbeat: ts, pid, current point
    stop                 dispatcher's "all points resolved" flag

**Claiming is a rename.**  ``os.rename(queue/p7.json,
active/p7.<wid>.json)`` is atomic: exactly one worker wins, every
loser gets ``FileNotFoundError`` and steals the next task.  There is
no partial state — a task is either claimable, owned, done, or
quarantined.

**Liveness is a heartbeat.**  Workers rewrite their heartbeat file
(atomically) every interval; the dispatcher treats a stale heartbeat
as a dead worker and *requeues* its active tasks with an attempt
count and a backoff ``not_before`` timestamp.  A task whose attempts
exceed the retry budget is moved to ``poison/`` with its full attempt
history — a poison point is quarantined and reported, never retried
forever.

Timestamps are ``time.time()`` from whichever machine wrote them;
liveness comparisons assume loosely synchronized clocks (NTP-level),
which shared-filesystem fleets already require for mtime sanity.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..scenarios.runner import atomic_write_text

#: Default seconds between worker heartbeats.
HEARTBEAT_INTERVAL = 0.5

#: Default seconds of heartbeat silence before a worker is presumed
#: dead and its tasks are requeued.
DEFAULT_LIVENESS_TIMEOUT = 10.0

#: Default retry budget per point (first run + this many retries).
DEFAULT_MAX_RETRIES = 3

#: Default base of the exponential requeue backoff (seconds).
DEFAULT_BACKOFF_BASE = 0.5


class FleetDirs:
    """Path bundle for one fleet run's coordination directory."""

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = Path(root)
        self.grid_path = self.root / "grid.json"
        self.queue = self.root / "queue"
        self.active = self.root / "active"
        self.done = self.root / "done"
        self.poison = self.root / "poison"
        self.workers = self.root / "workers"
        self.stop_path = self.root / "stop"

    def create(self) -> "FleetDirs":
        for d in (self.queue, self.active, self.done, self.poison,
                  self.workers):
            d.mkdir(parents=True, exist_ok=True)
        return self

    # -- tasks --------------------------------------------------------------
    @staticmethod
    def task_name(index: int) -> str:
        return f"p{index:06d}.json"

    def enqueue(self, task: Dict[str, Any]) -> None:
        """Make a task claimable (atomic write into ``queue/``)."""
        atomic_write_text(self.queue / self.task_name(task["index"]),
                          json.dumps(task, sort_keys=True))

    def claim(self, index: int, worker_id: str) -> Optional[Dict[str, Any]]:
        """Try to claim queued task ``index`` for ``worker_id``.

        Returns the task payload on success, None when another worker
        won the rename race (or the task left the queue meanwhile).

        **Rename first, read second.**  The payload is read from the
        claimed file in ``active/`` — the exact bytes the rename moved
        — never from ``queue/`` beforehand.  Reading before the rename
        opened a race with :func:`requeue_task`: a re-enqueue landing
        between read and rename handed the winner the *stale* payload
        (attempt counter and ``not_before`` backoff trail reset),
        which could defeat the retry budget and un-quarantine a
        poison-bound point.
        """
        src = self.queue / self.task_name(index)
        dst = self.active / f"p{index:06d}.{worker_id}.json"
        try:
            os.rename(src, dst)
        except FileNotFoundError:
            return None  # lost the race: someone else owns it now
        try:
            return json.loads(dst.read_text())
        except (OSError, ValueError):
            # we own an unreadable claim (shared-mount hiccup: enqueue
            # itself is atomic) — hand the file back untouched so the
            # point stays claimable with its history intact
            try:
                os.rename(dst, src)
            except OSError:
                pass
            return None

    def queued_tasks(self) -> List[Dict[str, Any]]:
        """Claimable tasks in index order (unreadable files skipped)."""
        out = []
        for path in sorted(self.queue.glob("p*.json")):
            try:
                out.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue  # mid-rename or torn: not claimable right now
        return out

    def active_claims(self) -> List[Dict[str, Any]]:
        """Owned tasks: payload + ``worker`` parsed from the filename."""
        out = []
        for path in sorted(self.active.glob("p*.json")):
            stem = path.name[:-len(".json")]
            _point, _, worker = stem.partition(".")
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            payload["worker"] = worker
            payload["_path"] = str(path)
            out.append(payload)
        return out

    def release(self, index: int, worker_id: str) -> None:
        """Drop a worker's claim file (after done/poison is durable)."""
        try:
            os.unlink(self.active / f"p{index:06d}.{worker_id}.json")
        except FileNotFoundError:
            pass

    # -- completion ---------------------------------------------------------
    def mark_done(self, record: Dict[str, Any]) -> None:
        """Record a finished point (atomic; idempotent — reruns of a
        deterministic point write identical bytes)."""
        atomic_write_text(self.done / self.task_name(record["index"]),
                          json.dumps(record, sort_keys=True))

    def done_records(self) -> Dict[int, Dict[str, Any]]:
        out: Dict[int, Dict[str, Any]] = {}
        for path in sorted(self.done.glob("p*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            out[record["index"]] = record
        return out

    def done_indices(self) -> set:
        """Finished grid indices, parsed from *filenames only* — no
        file is opened, so this is safe to poll at scale."""
        return self._indices(self.done)

    def poison_indices(self) -> set:
        """Quarantined grid indices (filename-only, like
        :meth:`done_indices`)."""
        return self._indices(self.poison)

    @staticmethod
    def _indices(directory: Path) -> set:
        out = set()
        try:
            names = os.listdir(directory)
        except OSError:
            return out
        for name in names:
            if name.startswith("p") and name.endswith(".json"):
                try:
                    out.add(int(name[1:-len(".json")]))
                except ValueError:
                    continue
        return out

    def mark_poison(self, task: Dict[str, Any], reason: str) -> None:
        payload = dict(task)
        payload.pop("_path", None)
        payload["reason"] = reason
        atomic_write_text(self.poison / self.task_name(task["index"]),
                          json.dumps(payload, sort_keys=True))

    def poison_records(self) -> Dict[int, Dict[str, Any]]:
        out: Dict[int, Dict[str, Any]] = {}
        for path in sorted(self.poison.glob("p*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            out[record["index"]] = record
        return out

    # -- liveness -----------------------------------------------------------
    def beat(self, worker_id: str, point: Optional[int],
             points_done: int = 0,
             telemetry: Optional[Dict[str, Any]] = None) -> None:
        """Rewrite a worker's heartbeat (atomic).

        ``telemetry`` merges extra throughput fields into the record
        (``points_per_min``, ``mean_latency``, ``last_latency``,
        ``point_age``, ``uptime`` — see
        :mod:`repro.fleet.telemetry`); the core liveness fields always
        win a key collision.
        """
        payload: Dict[str, Any] = dict(telemetry or {})
        payload.update({
            "worker": worker_id, "ts": time.time(), "pid": os.getpid(),
            "point": point, "points_done": points_done,
        })
        atomic_write_text(self.workers / f"{worker_id}.json",
                          json.dumps(payload, sort_keys=True))

    def heartbeats(self) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for path in self.workers.glob("*.json"):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            out[record["worker"]] = record
        return out

    # -- lifecycle ----------------------------------------------------------
    def write_grid(self, payload: Dict[str, Any]) -> None:
        atomic_write_text(self.grid_path,
                          json.dumps(payload, indent=1, sort_keys=True))

    def read_grid(self) -> Dict[str, Any]:
        return json.loads(self.grid_path.read_text())

    def signal_stop(self) -> None:
        atomic_write_text(self.stop_path, json.dumps({"ts": time.time()}))

    @property
    def stopped(self) -> bool:
        return self.stop_path.exists()


@dataclass
class Requeue:
    """Outcome of one dead-claim sweep (dispatcher bookkeeping)."""

    requeued: List[int]
    poisoned: List[int]


class ResolvedCounter:
    """Monotone count of resolved (done + poison) points, cheap to poll.

    The worker's steal loop asks "is the fleet resolved?" every poll
    interval; globbing *and parsing* every ``done/`` + ``poison/``
    file each time is O(points) JSON decodes at 10 Hz — the full-file
    scan the store just shed, re-grown in the fleet dir.  This counter
    re-lists (filenames only, no file opened) only when either
    directory's mtime moved, and otherwise returns the cached count.

    The count is **monotone**: resolved files are never removed while
    a fleet runs, so the counter only ratchets up — a racing listing
    that catches a directory mid-rename can undercount a snapshot but
    never walk the counter backwards.  Because directory-mtime
    granularity is filesystem-dependent, a cached value older than
    ``recheck_interval`` seconds is re-verified even with unchanged
    mtimes, so a same-tick landing can never stall resolution
    (the dispatcher's ``stop`` flag is the belt to this suspender).
    """

    def __init__(self, dirs: FleetDirs,
                 recheck_interval: float = 2.0) -> None:
        self.dirs = dirs
        self.recheck_interval = recheck_interval
        self._count = 0
        self._signature: Optional[tuple] = None
        self._checked_at = 0.0

    @staticmethod
    def _mtime(path: Path) -> int:
        try:
            return os.stat(path).st_mtime_ns
        except OSError:
            return -1

    def count(self) -> int:
        """Resolved points right now (cached between mtime changes)."""
        now = time.monotonic()
        signature = (self._mtime(self.dirs.done),
                     self._mtime(self.dirs.poison))
        if signature == self._signature and \
                now - self._checked_at < self.recheck_interval:
            return self._count
        fresh = len(self.dirs.done_indices()) + \
            len(self.dirs.poison_indices())
        self._count = max(self._count, fresh)
        self._signature = signature
        self._checked_at = now
        return self._count


def backoff_delay(attempt: int, base: float) -> float:
    """Exponential requeue backoff: ``base * 2**(attempt-1)``."""
    return base * (2 ** max(0, attempt - 1))


def requeue_task(dirs: FleetDirs, task: Dict[str, Any], *,
                 max_retries: int, backoff_base: float,
                 reason: str) -> bool:
    """Return a dead worker's task to the queue (or quarantine it).

    The task's ``attempt`` counter is bumped and its attempt history
    appended (``{"attempt", "at", "not_before", "reason"}`` — the
    monotone backoff trail the fault tests pin).  After
    ``max_retries`` requeues the point is poison: moved to
    ``poison/`` with its full history, never retried again.  Returns
    True when the task went back to the queue, False when it was
    quarantined.

    The active claim file is removed *after* the requeued/poison
    record is durable, so a dispatcher crash between the two steps
    leaves a duplicate claim (harmless: the done record and the
    result cache are both idempotent), never a lost point.
    """
    attempt = int(task.get("attempt", 1)) + 1
    now = time.time()
    not_before = now + backoff_delay(attempt - 1, backoff_base)
    history = list(task.get("attempts", []))
    history.append({"attempt": attempt, "at": now,
                    "not_before": not_before, "reason": reason})
    requeued = dict(task)
    requeued.pop("_path", None)
    requeued.pop("worker", None)
    requeued.update(attempt=attempt, not_before=not_before,
                    attempts=history)
    poisoned = attempt > max_retries
    if poisoned:
        dirs.mark_poison(requeued, reason=f"exceeded {max_retries} "
                                          f"retries ({reason})")
        # a quarantined point must not stay claimable: drop any queue
        # entry it may still have (it normally has none — poison comes
        # from active claims — but a stale one would undo quarantine)
        try:
            os.unlink(dirs.queue / dirs.task_name(task["index"]))
        except FileNotFoundError:
            pass
    else:
        dirs.enqueue(requeued)
    path = task.get("_path")
    if path:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
    return not poisoned
