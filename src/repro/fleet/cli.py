"""Command-line front end for the sweep fleet and the results store.

::

    python -m repro.fleet run churn-grid --workers 4
    python -m repro.fleet run fig10-cluster-o3 \
        --set n_peers=2,4,8 --set seed=2011,2013 --label churn-b
    python -m repro.fleet worker --fleet-dir .scenario-cache/fleet/churn-b
    python -m repro.fleet stats churn-b
    python -m repro.fleet backfill
    python -m repro.fleet store
    python -m repro.fleet store compact
    python -m repro.fleet compare churn-a churn-b --html report.html

``run`` is the dispatcher: it expands the grid exactly like
``repro.scenarios sweep`` (same ``--set`` grammar, shared parser),
resolves cache hits in-process, and hands the remaining points to a
work-stealing worker fleet — local processes it spawns, plus any
remote ``worker`` attached to the same fleet directory over a shared
mount.  The resulting manifest is byte-identical to an unsharded
serial sweep of the same grid.

``backfill`` absorbs pre-store sweep manifests into the consolidated
``<cache>/store/index.jsonl``; ``store`` lists what the index holds
and ``store compact`` rewrites it newest-per-key; ``stats`` prints a
live per-worker throughput view of a fleet directory with stragglers
flagged; ``compare`` diffs two labels **from the store** (falling
back to sweep manifests for labels never indexed) and can render a
static HTML regression report with ``--html``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from ..params import parse_grid_sets
from ..scenarios.cli import DEFAULT_CACHE_DIR, _load_manifest, _UsageError
from ..scenarios.manifest import sweeps_dir
from ..scenarios.registry import get_scenario
from ..scenarios.runner import expand_grid
from .dispatcher import FleetDispatcher, FleetError, FleetOutcome
from .protocol import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_LIVENESS_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    HEARTBEAT_INTERVAL,
)
from .store import ResultStore
from .telemetry import fleet_stats, format_stats
from .worker import FleetWorker


def _resolve(fn, *args):
    try:
        return fn(*args)
    except KeyError as exc:
        raise _UsageError(exc.args[0]) from None


def _print_outcome(outcome: FleetOutcome) -> None:
    print(f"# fleet {outcome.label!r}: {len(outcome.points)} points "
          f"({outcome.cached} from cache, {outcome.computed} computed) "
          f"in {outcome.wall:.1f}s")
    for worker, n in outcome.worker_points.items():
        if worker != "cache":
            print(f"#   {worker}: {n} points")
    if outcome.reassignments:
        moved = ", ".join(f"p{i} ×{n}" for i, n in
                          sorted(outcome.reassignments.items()))
        print(f"# reassigned after worker death: {moved}")
    if outcome.poisoned:
        for index, record in outcome.poisoned.items():
            print(f"# POISON p{index} {record.get('name', '?')!r}: "
                  f"{record.get('reason', 'retry budget exhausted')}")
        print(f"# manifest is PARTIAL ({len(outcome.poisoned)} poisoned "
              f"points); compare will refuse it until they resolve")
    for stat in outcome.worker_stats:
        if stat.get("straggler"):
            reasons = "; ".join(stat.get("reasons") or ())
            print(f"# STRAGGLER {stat['worker']}: {reasons}")
    if outcome.compaction is not None:
        c = outcome.compaction
        print(f"# store compacted at finalize: {c['records_before']} -> "
              f"{c['records_after']} records ({c['dropped']} dropped, "
              f"generation {c['generation']})")
    if outcome.manifest_path is not None:
        print(f"# sweep manifest: {outcome.manifest_path}")


def cmd_run(args: argparse.Namespace) -> int:
    entry = _resolve(get_scenario, args.name)
    try:
        grid = parse_grid_sets(args.set or [])
    except ValueError as exc:
        raise _UsageError(str(exc)) from None
    specs = (_resolve(expand_grid, entry.base, grid) if grid
             else entry.points())
    label = args.label or entry.name
    if not label or label != Path(label).name or label in (".", ".."):
        raise _UsageError(f"--label must be a plain file name, "
                          f"got {label!r}")
    try:
        dispatcher = FleetDispatcher(
            specs, label=label, scenario=entry.name,
            cache_dir=args.cache_dir, workers=args.workers,
            liveness_timeout=args.liveness_timeout,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            wall_timeout=args.wall_timeout,
            compact_threshold=args.compact_threshold,
        )
        outcome = dispatcher.run()
    except FleetError as exc:
        raise _UsageError(str(exc)) from None
    _print_outcome(outcome)
    return 0 if outcome.complete else 1


def cmd_worker(args: argparse.Namespace) -> int:
    try:
        worker = FleetWorker(
            args.fleet_dir, cache_dir=args.cache_dir,
            worker_id=args.worker_id,
            heartbeat_interval=args.heartbeat_interval,
            poll_interval=args.poll_interval,
        )
    except (OSError, ValueError, KeyError) as exc:
        raise _UsageError(f"cannot attach to fleet "
                          f"{args.fleet_dir!r}: {exc}") from None
    done = worker.run()
    print(f"# worker {worker.worker_id}: {done} points computed")
    return 0


def cmd_backfill(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    stats = store.backfill(sweeps_dir(args.cache_dir))
    print(f"# backfill: {stats['points']} points indexed from "
          f"{stats['absorbed']} manifests "
          f"({stats['already_indexed']} already indexed, "
          f"{stats['skipped_manifests']} skipped, "
          f"{store.skipped} duplicate points)")
    print(f"# store: {len(store)} records at {store.index_path}")
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache_dir)
    if args.action == "compact":
        stats = store.compact()
        print(f"# store compacted: {stats['records_before']} -> "
              f"{stats['records_after']} records "
              f"({stats['dropped']} superseded dropped, "
              f"{stats['bytes_after']} bytes, "
              f"generation {stats['generation']})")
        return 0
    labels = store.labels()
    if not labels:
        print(f"# store is empty ({store.index_path}); run a fleet or "
              f"`python -m repro.fleet backfill`")
        return 0
    width = max(len(label) for label in labels)
    for label in sorted(labels):
        print(f"{label:<{width}}  {labels[label]:>5} pt")
    print(f"# {len(store)} records at {store.index_path}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .protocol import FleetDirs

    fleet_dir = Path(args.cache_dir) / "fleet" / args.label
    if not fleet_dir.is_dir():
        raise _UsageError(f"no fleet directory for label {args.label!r} "
                          f"under {args.cache_dir!r}")
    print(format_stats(fleet_stats(FleetDirs(fleet_dir))), end="")
    return 0


def _sweep_data(ref: str, store: ResultStore, cache_dir: str):
    """A label's points — store-first, manifests as the fallback."""
    from ..analysis import SweepData

    points = store.sweep_points(ref)
    if points:
        return SweepData(label=ref, points=points)
    return SweepData.from_manifest(_load_manifest(ref, cache_dir))


def _html_worker_stats(label: str, cache_dir: str):
    """Worker throughput rows for the HTML report's stragglers
    section — from the candidate label's fleet directory, when one
    exists and has heartbeats."""
    from .protocol import FleetDirs
    from .telemetry import worker_stats

    fleet_dir = Path(cache_dir) / "fleet" / label
    if not fleet_dir.is_dir():
        return None
    stats = worker_stats(FleetDirs(fleet_dir))
    return [s.to_dict() for s in stats] or None


def cmd_compare(args: argparse.Namespace) -> int:
    from ..analysis import compare_sweeps

    store = ResultStore(args.cache_dir)
    a = _sweep_data(args.a, store, args.cache_dir)
    b = _sweep_data(args.b, store, args.cache_dir)
    percentiles: Tuple[float, ...] = ()
    if args.percentiles:
        try:
            percentiles = tuple(
                float(p) for p in args.percentiles.split(",") if p.strip()
            )
        except ValueError:
            raise _UsageError(
                f"--percentiles expects comma-separated numbers, "
                f"got {args.percentiles!r}"
            ) from None
    try:
        comparison = compare_sweeps(a, b, metric=args.metric,
                                    over=tuple(args.over or ()),
                                    percentiles=percentiles)
    except ValueError as exc:
        raise _UsageError(str(exc)) from None
    if args.html:
        # worker rows come from the candidate label's fleet dir,
        # falling back to the baseline's (whichever was fleet-run)
        stats = _html_worker_stats(args.b, args.cache_dir) \
            or _html_worker_stats(args.a, args.cache_dir)
        Path(args.html).write_text(comparison.to_html(worker_stats=stats))
        print(f"# HTML report written to {args.html}")
        return 0
    text = (comparison.to_json() if args.format == "json"
            else comparison.to_markdown())
    if args.out:
        Path(args.out).write_text(text)
        print(f"# report written to {args.out}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.fleet`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Work-stealing sweep fleet over the shared "
                    "result cache, plus the consolidated results store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_cache_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=f"shared cache root "
                            f"(default {DEFAULT_CACHE_DIR})")

    run = sub.add_parser(
        "run", help="drive a scenario grid over a work-stealing fleet"
    )
    run.add_argument("name", help="registered scenario name")
    run.add_argument("--set", action="append", metavar="PATH=V1,V2,...",
                     help="grid values for one (dotted) spec field; "
                          "repeatable — same grammar as scenarios sweep")
    run.add_argument("--label", default=None,
                     help="sweep/store label (default: the scenario name)")
    run.add_argument("--workers", type=int, default=2,
                     help="local worker processes to spawn (default 2; "
                          "0 = remote workers only)")
    run.add_argument("--liveness-timeout", type=float,
                     default=DEFAULT_LIVENESS_TIMEOUT,
                     help="seconds of heartbeat silence before a worker "
                          "is presumed dead and its points requeued")
    run.add_argument("--max-retries", type=int,
                     default=DEFAULT_MAX_RETRIES,
                     help="per-point retry budget before quarantine")
    run.add_argument("--backoff-base", type=float,
                     default=DEFAULT_BACKOFF_BASE,
                     help="exponential requeue backoff base (seconds)")
    run.add_argument("--wall-timeout", type=float, default=None,
                     help="abort the fleet after this many seconds")
    run.add_argument("--compact-threshold", type=float, default=0.5,
                     help="compact the consolidated store at finalize "
                          "once this fraction of its records is "
                          "superseded history (default 0.5; 1.0 "
                          "disables auto-compaction)")
    add_cache_dir(run)

    worker = sub.add_parser(
        "worker", help="attach one work-stealing worker to a fleet dir"
    )
    worker.add_argument("--fleet-dir", required=True,
                        help="the fleet coordination directory "
                             "(<cache>/fleet/<label>)")
    worker.add_argument("--cache-dir", default=None,
                        help="shared cache root (default: the fleet "
                             "dir's grandparent)")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker id (default: <host>-<pid>)")
    worker.add_argument("--heartbeat-interval", type=float,
                        default=HEARTBEAT_INTERVAL)
    worker.add_argument("--poll-interval", type=float, default=0.1)

    backfill = sub.add_parser(
        "backfill",
        help="absorb historical sweep manifests into the store index",
    )
    add_cache_dir(backfill)

    store = sub.add_parser(
        "store", help="list the consolidated store's labels, or "
                      "compact its index"
    )
    store.add_argument("action", nargs="?", default="list",
                       choices=("list", "compact"),
                       help="'list' labels (default) or 'compact' the "
                            "index to the newest record per point")
    add_cache_dir(store)

    stats = sub.add_parser(
        "stats", help="per-worker throughput for a fleet directory, "
                      "stragglers flagged"
    )
    stats.add_argument("label", help="fleet label (<cache>/fleet/<label>)")
    add_cache_dir(stats)

    compare = sub.add_parser(
        "compare",
        help="diff two labels from the consolidated store",
    )
    compare.add_argument("a", help="store label, sweep label, or "
                                   "manifest path (baseline)")
    compare.add_argument("b", help="store label, sweep label, or "
                                   "manifest path")
    compare.add_argument("--metric", default="t",
                         help="result field or metric to compare "
                              "(default: t)")
    compare.add_argument("--over", action="append", metavar="AXIS",
                         help="aggregate over this shared grid axis "
                              "instead of matching on it (repeatable)")
    compare.add_argument("--percentiles", default=None,
                         metavar="P1,P2,...",
                         help="add per-side percentile columns")
    compare.add_argument("--format", choices=("markdown", "json"),
                         default="markdown", help="text report format")
    compare.add_argument("--out", default=None,
                         help="write the text report to a file")
    compare.add_argument("--html", default=None, metavar="PATH",
                         help="write a static HTML regression report "
                              "instead of the text formats")
    add_cache_dir(compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "worker": cmd_worker,
        "backfill": cmd_backfill,
        "store": cmd_store,
        "stats": cmd_stats,
        "compare": cmd_compare,
    }[args.command]
    try:
        return handler(args)
    except _UsageError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
