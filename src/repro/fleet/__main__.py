"""``python -m repro.fleet`` — see :mod:`repro.fleet.cli`."""

import sys

from .cli import main

sys.exit(main())
