"""Per-worker throughput telemetry: stragglers observable, not inferred.

A work-stealing fleet already *tolerates* a slow machine — it simply
claims fewer points — but tolerating is not seeing: on a shared mount
the only symptom of a host quietly running at half speed is a wall
clock nobody can decompose.  Workers therefore publish throughput
alongside liveness in their heartbeat files (points/min, claim-to-done
latency, the age of the point currently in flight), and this module
turns a fleet directory's heartbeats into one ranked view:

- ``python -m repro.fleet stats <label>`` while the fleet runs;
- the dispatcher's end-of-run outcome (``FleetOutcome.worker_stats``);
- the stragglers section of the HTML report
  (``fleet compare --html``).

A worker is flagged a **straggler** when its throughput falls below
``STRAGGLER_RATIO`` × the fleet median (only judged across ≥2 workers
with completed points), or when its current point has been in flight
longer than ``STALL_FACTOR`` × its own mean claim-to-done latency —
the "wedged but heartbeating" shape the SIGKILL harness simulates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .protocol import FleetDirs

#: A worker slower than this fraction of the fleet-median points/min
#: is flagged a straggler (rate rule).
STRAGGLER_RATIO = 0.5

#: A point in flight longer than this multiple of the worker's mean
#: claim-to-done latency flags the worker stalled (stall rule).
STALL_FACTOR = 3.0


@dataclass
class WorkerStat:
    """One worker's derived throughput row."""

    worker: str
    points_done: int = 0
    points_per_min: Optional[float] = None
    mean_latency: Optional[float] = None
    last_latency: Optional[float] = None
    point: Optional[int] = None
    point_age: Optional[float] = None
    beat_age: Optional[float] = None
    straggler: bool = False
    reasons: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker, "points_done": self.points_done,
            "points_per_min": self.points_per_min,
            "mean_latency": self.mean_latency,
            "last_latency": self.last_latency,
            "point": self.point, "point_age": self.point_age,
            "beat_age": self.beat_age, "straggler": self.straggler,
            "reasons": list(self.reasons),
        }


@dataclass
class FleetStats:
    """A fleet directory's progress + per-worker throughput snapshot."""

    label: str
    n_points: Optional[int]
    done: int
    poisoned: int
    queued: int
    active: int
    workers: List[WorkerStat] = field(default_factory=list)

    @property
    def stragglers(self) -> List[WorkerStat]:
        return [w for w in self.workers if w.straggler]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label, "n_points": self.n_points,
            "done": self.done, "poisoned": self.poisoned,
            "queued": self.queued, "active": self.active,
            "workers": [w.to_dict() for w in self.workers],
        }


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def flag_stragglers(workers: List[WorkerStat]) -> None:
    """Apply the rate and stall rules in place (see module doc)."""
    rates = [w.points_per_min for w in workers
             if w.points_done > 0 and w.points_per_min is not None]
    median = _median(rates) if len(rates) >= 2 else None
    for stat in workers:
        stat.straggler = False
        stat.reasons = []
        if (median is not None and median > 0
                and stat.points_per_min is not None
                and stat.points_done > 0
                and stat.points_per_min < STRAGGLER_RATIO * median):
            stat.straggler = True
            stat.reasons.append(
                f"{stat.points_per_min:.2f} pt/min < "
                f"{STRAGGLER_RATIO:g}x fleet median ({median:.2f})"
            )
        if (stat.point is not None and stat.point_age is not None
                and stat.mean_latency is not None
                and stat.mean_latency > 0
                and stat.point_age > STALL_FACTOR * stat.mean_latency):
            stat.straggler = True
            stat.reasons.append(
                f"p{stat.point} in flight {stat.point_age:.1f}s > "
                f"{STALL_FACTOR:g}x its {stat.mean_latency:.1f}s mean"
            )


def worker_stats(dirs: FleetDirs,
                 now: Optional[float] = None) -> List[WorkerStat]:
    """Derived per-worker rows from a fleet dir's heartbeat files."""
    now = time.time() if now is None else now
    out: List[WorkerStat] = []
    for worker, beat in sorted(dirs.heartbeats().items()):
        stat = WorkerStat(
            worker=worker,
            points_done=int(beat.get("points_done", 0)),
            points_per_min=beat.get("points_per_min"),
            mean_latency=beat.get("mean_latency"),
            last_latency=beat.get("last_latency"),
            point=beat.get("point"),
            point_age=beat.get("point_age"),
        )
        ts = beat.get("ts")
        if isinstance(ts, (int, float)):
            stat.beat_age = max(0.0, now - ts)
        out.append(stat)
    flag_stragglers(out)
    return out


def fleet_stats(dirs: FleetDirs,
                now: Optional[float] = None) -> FleetStats:
    """One progress + throughput snapshot of a fleet directory."""
    try:
        grid = dirs.read_grid()
        label = grid.get("label", dirs.root.name)
        n_points = grid.get("n_points")
    except (OSError, ValueError):
        label, n_points = dirs.root.name, None
    return FleetStats(
        label=label, n_points=n_points,
        done=len(dirs.done_indices()),
        poisoned=len(dirs.poison_indices()),
        queued=len(list(dirs.queue.glob("p*.json"))),
        active=len(list(dirs.active.glob("p*.json"))),
        workers=worker_stats(dirs, now),
    )


def _cell(value: Optional[float], fmt: str = "{:.2f}") -> str:
    if value is None:
        return "—"
    return fmt.format(value)


def format_stats(stats: FleetStats) -> str:
    """The ``fleet stats`` text view: one row per worker, stragglers
    flagged with the rule that tripped."""
    total = "?" if stats.n_points is None else str(stats.n_points)
    lines = [
        f"# fleet {stats.label!r}: {stats.done}/{total} done, "
        f"{stats.poisoned} poisoned, {stats.queued} queued, "
        f"{stats.active} in flight",
    ]
    if not stats.workers:
        lines.append("# no worker heartbeats yet")
        return "\n".join(lines) + "\n"
    header = (f"{'worker':<16} {'done':>5} {'pt/min':>7} "
              f"{'mean s':>7} {'last s':>7} {'point':>7} "
              f"{'age s':>6} {'beat s':>6}  flags")
    lines.append(header)
    for w in stats.workers:
        point = "—" if w.point is None else f"p{w.point}"
        flags = "STRAGGLER: " + "; ".join(w.reasons) if w.straggler \
            else ""
        lines.append(
            f"{w.worker:<16} {w.points_done:>5} "
            f"{_cell(w.points_per_min):>7} "
            f"{_cell(w.mean_latency):>7} {_cell(w.last_latency):>7} "
            f"{point:>7} {_cell(w.point_age, '{:.1f}'):>6} "
            f"{_cell(w.beat_age, '{:.1f}'):>6}  {flags}"
        )
    n = len(stats.stragglers)
    if n:
        lines.append(f"# {n} straggler{'s' if n != 1 else ''} flagged "
                     f"(rate < {STRAGGLER_RATIO:g}x median, or point "
                     f"stalled > {STALL_FACTOR:g}x mean latency)")
    return "\n".join(lines) + "\n"
