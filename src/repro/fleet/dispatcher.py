"""The work-stealing dispatcher: points out, liveness in, one manifest.

``FleetDispatcher`` replaces static ``--shard i/N`` partitioning with
dynamic stealing: every grid point is an individually claimable task
in a shared fleet directory, local worker processes are spawned (and
respawned) by the dispatcher, and remote machines join by pointing
``python -m repro.fleet worker`` at the same directory.  A slow
worker strands nothing — whatever it doesn't claim, someone else
does; a *dead* worker's claimed points are detected by heartbeat
silence and requeued with exponential backoff; a point that keeps
killing workers is quarantined as poison after its retry budget and
reported, never retried forever.

The output contract is the sweep's: the dispatcher writes a sweep
manifest through the shared canonical serializer, **byte-identical**
to the manifest an unsharded serial sweep of the same grid produces
(pinned by ``tests/test_fleet.py``), and syncs every result into the
consolidated :class:`~repro.fleet.store.ResultStore`.  If any point
was quarantined the manifest is marked ``"partial": true`` — the same
refuse-to-compare semantics a killed sweep has.

Re-running a fleet over the same grid *resumes*: done records and
cached results survive in the fleet directory and result cache, so
only unresolved points are re-enqueued.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..scenarios import manifest as sweep_manifest
from ..scenarios import platforms, workloads
from ..scenarios.runner import ResultCache, ScenarioResult, memo_get
from ..scenarios.spec import ScenarioSpec
from .protocol import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_LIVENESS_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    HEARTBEAT_INTERVAL,
    FleetDirs,
    requeue_task,
)
from .store import ResultStore
from .telemetry import worker_stats as snapshot_worker_stats


class FleetError(RuntimeError):
    """A fleet-level failure (bad config, wall-clock blowout)."""


@dataclass
class FleetOutcome:
    """What one fleet run produced (the dispatcher's return value)."""

    label: str
    scenario: str
    manifest_path: Optional[Path]
    #: Manifest-shaped entries (grid order, resolved points only).
    points: List[Dict[str, Any]] = field(default_factory=list)
    #: Grid index → poison record for quarantined points.
    poisoned: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: Grid index → times the dispatcher requeued it (dead workers).
    reassignments: Dict[int, int] = field(default_factory=dict)
    #: Worker id → points it completed (stragglers are visible).
    worker_points: Dict[str, int] = field(default_factory=dict)
    #: Final per-worker throughput rows (see
    #: :mod:`repro.fleet.telemetry`): points/min, claim-to-done
    #: latency, straggler flags — the end-of-run straggler report.
    worker_stats: List[Dict[str, Any]] = field(default_factory=list)
    cached: int = 0
    computed: int = 0
    store_records: int = 0
    #: ``store.compact()`` stats when the finalize-time auto-compaction
    #: fired (superseded fraction above the threshold), else None.
    compaction: Optional[Dict[str, int]] = None
    wall: float = 0.0

    @property
    def complete(self) -> bool:
        return not self.poisoned

    def results(self) -> List[ScenarioResult]:
        return [ScenarioResult.from_dict(p["result"]) for p in self.points]


class FleetDispatcher:
    """Drive one grid to resolution over a worker fleet (module doc).

    Parameters
    ----------
    specs:
        The grid, in manifest order (e.g. ``entry.points()`` or an
        ``expand_grid`` product).
    label / scenario:
        Manifest identity — the same pair a sweep records.
    cache_dir:
        Shared cache root; the fleet directory is created at
        ``<cache_dir>/fleet/<label>``.
    workers:
        Local worker processes to spawn (0 = none; attach remote
        workers by hand).
    liveness_timeout:
        Heartbeat silence (seconds) after which a worker is presumed
        dead and its claims are requeued.
    max_retries / backoff_base:
        Per-point retry budget and exponential backoff base.
    wall_timeout:
        Optional overall ceiling (seconds); exceeding it raises
        :class:`FleetError` after stopping the fleet.
    compact_threshold:
        Superseded-record fraction above which the consolidated store
        is compacted at finalize (default 0.5 — compact once more than
        half the index is shadowed history).  ``1.0`` disables the
        auto-compaction (the fraction can never exceed 1).  Finalize
        is the one moment the dispatcher knows no fleet worker is
        appending, which is compaction's safety precondition.
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        label: str,
        scenario: str,
        cache_dir: os.PathLike | str,
        workers: int = 2,
        liveness_timeout: float = DEFAULT_LIVENESS_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        poll_interval: float = 0.1,
        wall_timeout: Optional[float] = None,
        compact_threshold: float = 0.5,
        spawn_env: Optional[Dict[str, str]] = None,
    ) -> None:
        if not specs:
            raise FleetError("fleet needs at least one grid point")
        if workers < 0:
            raise FleetError(f"workers must be >= 0, got {workers!r}")
        if liveness_timeout <= 0:
            raise FleetError("liveness_timeout must be > 0")
        if max_retries < 1:
            raise FleetError("max_retries must be >= 1")
        if not 0.0 <= compact_threshold <= 1.0:
            raise FleetError(
                f"compact_threshold must be in [0, 1], "
                f"got {compact_threshold!r}")
        self.specs = list(specs)
        self.label = label
        self.scenario = scenario
        self.cache_dir = Path(cache_dir)
        self.workers = workers
        self.liveness_timeout = liveness_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.wall_timeout = wall_timeout
        self.compact_threshold = compact_threshold
        self.spawn_env = spawn_env
        self.dirs = FleetDirs(self.cache_dir / "fleet" / label)
        self._procs: Dict[str, subprocess.Popen] = {}
        self._next_worker = 0
        self._respawns = 0
        # enough respawn budget to burn the whole retry budget of one
        # poison point and still keep the fleet staffed
        self.max_respawns = workers + max_retries + 1

    # -- setup --------------------------------------------------------------
    def _grid_points(self) -> List[Dict[str, Any]]:
        return [
            {"index": i, "name": s.name, "spec_hash": s.spec_hash()}
            for i, s in enumerate(self.specs)
        ]

    def _prepare_dirs(self) -> None:
        """Create (or resume) the fleet directory.

        A directory whose recorded grid matches ours is a resume: its
        ``done/`` records survive.  Anything else — a different grid
        under the same label, stale queue/claims/poison from a crashed
        run — is wiped back to a clean slate; re-running a fleet is an
        explicit request to retry even its quarantined points.
        """
        grid = {
            "label": self.label, "scenario": self.scenario,
            "n_points": len(self.specs),
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "points": self._grid_points(),
        }
        if self.dirs.grid_path.exists():
            try:
                previous = self.dirs.read_grid()
            except (OSError, ValueError):
                previous = None
            if previous is not None and previous.get("points") == \
                    grid["points"]:
                # resume: keep done records, clear transient state
                for d in (self.dirs.queue, self.dirs.active,
                          self.dirs.workers, self.dirs.poison):
                    shutil.rmtree(d, ignore_errors=True)
                try:
                    os.unlink(self.dirs.stop_path)
                except FileNotFoundError:
                    pass
            else:
                shutil.rmtree(self.dirs.root, ignore_errors=True)
        else:
            shutil.rmtree(self.dirs.root, ignore_errors=True)
        self.dirs.create()
        self.dirs.write_grid(grid)

    def _seed_from_cache(self, cache: ResultCache) -> int:
        """Resolve memo/disk hits in-parent; enqueue the rest.

        A point already answered by the shared cache (an earlier
        sweep, another fleet) never reaches a worker — the same
        cache-first contract ``SweepRunner.run`` has.
        """
        done = self.dirs.done_indices()
        hits = 0
        for i, spec in enumerate(self.specs):
            if i in done:
                hits += 1  # resumed from a previous run of this fleet
                continue
            result = memo_get(spec.spec_hash()) or cache.get(spec)
            if result is not None:
                self.dirs.mark_done({
                    "index": i, "name": spec.name,
                    "spec_hash": result.spec_hash, "worker": "cache",
                    "result": result.to_dict(),
                })
                hits += 1
                continue
            self.dirs.enqueue({
                "index": i, "name": spec.name,
                "spec_hash": spec.spec_hash(),
                "spec": spec.to_dict(), "attempt": 1,
            })
        return hits

    def _prime_traces(self) -> None:
        """Pay the dPerf calibration once, into the persistent trace
        cache, so fresh worker processes load pickles instead of
        interpreting mini-C (mirrors ``SweepRunner._prime_templates``,
        minus the fork-inherited platform builds — fleet workers are
        not forks)."""
        workloads.set_trace_cache_dir(str(self.cache_dir / "traces"))
        seen = set()
        for spec in self.specs:
            platforms.build_platform(spec.platform)
            if spec.kind not in ("reference", "predict"):
                continue
            w = spec.workload
            recipe = (w.app, spec.n_peers, w.level, w.n, w.nit)
            if recipe not in seen:
                seen.add(recipe)
                workloads.traces(*recipe)

    # -- worker processes ---------------------------------------------------
    def _spawn_worker(self) -> None:
        wid = f"w{self._next_worker}"
        self._next_worker += 1
        log = open(self.dirs.workers / f"{wid}.log", "ab")
        env = dict(os.environ if self.spawn_env is None else self.spawn_env)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fleet", "worker",
             "--fleet-dir", str(self.dirs.root),
             "--cache-dir", str(self.cache_dir),
             "--worker-id", wid,
             "--heartbeat-interval", str(self.heartbeat_interval),
             "--poll-interval", str(self.poll_interval)],
            stdout=log, stderr=subprocess.STDOUT, env=env,
        )
        log.close()  # the child holds its own copy of the fd
        self._procs[wid] = proc

    def _dead_local_workers(self) -> List[str]:
        return [wid for wid, proc in self._procs.items()
                if proc.poll() is not None]

    def _worker_is_dead(self, wid: str, now: float) -> bool:
        """Local process exit is authoritative; otherwise heartbeat
        silence decides (covers remote workers too)."""
        proc = self._procs.get(wid)
        if proc is not None and proc.poll() is not None:
            return True
        beat = self.dirs.heartbeats().get(wid)
        if beat is None:
            # never beat: judge by how long its claim has existed —
            # a worker beats before claiming, so this is a crash
            return proc is None or proc.poll() is not None
        return now - beat["ts"] > self.liveness_timeout

    def _reap(self, reassignments: Dict[int, int]) -> None:
        """Requeue (or poison) every claim owned by a dead worker."""
        now = time.time()
        dead_cache: Dict[str, bool] = {}
        done_indices: Optional[set] = None
        for claim in self.dirs.active_claims():
            wid = claim["worker"]
            if wid not in dead_cache:
                dead_cache[wid] = self._worker_is_dead(wid, now)
            if not dead_cache[wid]:
                continue
            index = claim["index"]
            if done_indices is None:
                # listed once per reap, filename-only — not one full
                # record parse per dead claim
                done_indices = self.dirs.done_indices()
            if index in done_indices:
                # finished but died before releasing the claim: the
                # done record is authoritative, just drop the claim
                try:
                    os.unlink(claim["_path"])
                except FileNotFoundError:
                    pass
                continue
            requeue_task(
                self.dirs, claim, max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                reason=f"worker {wid} died",
            )
            reassignments[index] = reassignments.get(index, 0) + 1

    def _keep_staffed(self, unresolved: int) -> None:
        if unresolved <= 0 or self.workers == 0:
            return
        alive = sum(1 for p in self._procs.values() if p.poll() is None)
        want = min(self.workers, unresolved)
        while alive < want and self._respawns < self.max_respawns:
            self._spawn_worker()
            self._respawns += 1
            alive += 1

    # -- the run ------------------------------------------------------------
    def run(self) -> FleetOutcome:
        started = time.monotonic()
        self._prepare_dirs()
        cache = ResultCache(self.cache_dir)
        cached = self._seed_from_cache(cache)
        reassignments: Dict[int, int] = {}
        unresolved = len(self.specs) - len(self.dirs.done_indices())
        if unresolved > 0:
            self._prime_traces()
            for _ in range(min(self.workers, unresolved)):
                self._spawn_worker()
        try:
            while True:
                # filename-only progress listing: the supervision loop
                # never parses record payloads, only `_reap` (for dead
                # claims) and `_finalize` do
                resolved = len(self.dirs.done_indices()) + \
                    len(self.dirs.poison_indices())
                if resolved >= len(self.specs):
                    break
                self._reap(reassignments)
                self._keep_staffed(len(self.specs) - resolved)
                if self.wall_timeout is not None and \
                        time.monotonic() - started > self.wall_timeout:
                    raise FleetError(
                        f"fleet {self.label!r} exceeded its "
                        f"{self.wall_timeout}s wall timeout with "
                        f"{len(self.specs) - resolved} "
                        f"points unresolved"
                    )
                time.sleep(self.poll_interval)
        finally:
            self.dirs.signal_stop()
            self._join_workers()
        done = self.dirs.done_records()
        poison = self.dirs.poison_records()
        # the store is opened *after* the workers finish, so its dedup
        # set already holds everything their on_put hooks indexed —
        # the sync below only adds cache hits and resumed points
        store = ResultStore(self.cache_dir)
        outcome = self._finalize(store, done, poison, reassignments,
                                 cached)
        outcome.wall = time.monotonic() - started
        return outcome

    def _join_workers(self) -> None:
        deadline = time.monotonic() + max(5.0, 4 * self.poll_interval)
        for proc in self._procs.values():
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    def _finalize(
        self,
        store: ResultStore,
        done: Dict[int, Dict[str, Any]],
        poison: Dict[int, Dict[str, Any]],
        reassignments: Dict[int, int],
        cached: int,
    ) -> FleetOutcome:
        points = []
        worker_points: Dict[str, int] = {}
        store_records = 0
        for i in range(len(self.specs)):
            record = done.get(i)
            if record is None:
                continue
            points.append({"name": record["name"],
                           "spec_hash": record["spec_hash"],
                           "result": record["result"]})
            worker_points[record["worker"]] = \
                worker_points.get(record["worker"], 0) + 1
            # the final store sync: workers indexed what they computed
            # (the on_put hook); this dedup'd pass picks up cache hits
            # and resumed points
            if store.record_raw({
                "spec_hash": record["spec_hash"],
                "name": record["name"], "label": self.label,
                "scenario": self.scenario, "result": record["result"],
            }):
                store_records += 1
        payload = sweep_manifest.manifest_payload(
            self.label, self.scenario, points
        )
        if poison:
            payload["partial"] = True
        manifest_path = sweep_manifest.sweeps_dir(self.cache_dir) / \
            f"{self.label}.json"
        sweep_manifest.dump_manifest(payload, manifest_path)
        # auto-compaction: reassignment races and resumed fleets leave
        # superseded records behind; once they dominate the index,
        # every streaming read pays for history.  Finalize is safe —
        # the workers are joined, nobody is appending.
        compaction = None
        if self.compact_threshold < 1.0 and \
                store.superseded_fraction() > self.compact_threshold:
            compaction = store.compact()
        return FleetOutcome(
            label=self.label, scenario=self.scenario,
            manifest_path=manifest_path, points=points,
            poisoned=dict(sorted(poison.items())),
            reassignments=reassignments,
            worker_points=dict(sorted(worker_points.items())),
            # final heartbeats survive worker exit: the end-of-run
            # throughput/straggler rows ride on the outcome
            worker_stats=[s.to_dict()
                          for s in snapshot_worker_stats(self.dirs)],
            cached=cached,
            # points resolved by workers *this run* (resumed and
            # cache-hit points count as cached, poison as neither)
            computed=max(0, len(points) - cached),
            store_records=store_records,
            compaction=compaction,
        )
