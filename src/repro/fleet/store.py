"""The consolidated results store: one index across every sweep.

A sweep manifest records what *one* run did; the result cache holds
content-addressed entries with no notion of history.  The store is
the missing join: an **append-only** ``<cache>/store/index.jsonl``
whose records key every result by spec hash *and* by the label of the
sweep that produced it, across all historical sweeps sharing the
cache.  That turns a pile of cached scenario results into a queryable
asset:

- ``fleet compare A B --html`` renders a regression report between
  any two labels ever recorded, without re-reading their manifests;
- the serve daemon probes the store as an extra resolution tier, so a
  result computed by *any* fleet or backfilled from *any* old
  manifest warms SLO queries;
- ``fleet backfill`` absorbs pre-store sweep manifests, so history
  written before the index existed joins it.

Appends are one ``O_APPEND`` write of one line per record — safe
under concurrent fleet workers on a local filesystem — and readers
skip torn trailing lines, so a reader racing a writer sees a valid
prefix.  Records are deduplicated on ``(label, spec_hash)``:
re-running a sweep re-lands the same results without bloating the
index.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..scenarios.runner import ScenarioResult
from ..scenarios.spec import ScenarioSpec


class ResultStore:
    """Append-only cross-sweep result index (see module doc).

    Lives under ``<cache_dir>/store/``; the index file is created
    lazily on first append, so opening a store for reading never
    mutates the cache directory tree beyond its own folder.
    """

    def __init__(self, cache_dir: os.PathLike | str) -> None:
        self.root = Path(cache_dir) / "store"
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.jsonl"
        #: (label, spec_hash) pairs already present — the dedup set.
        #: Loaded once; appends through this instance keep it current.
        self._seen: Set[Tuple[str, str]] = {
            (r["label"], r["spec_hash"]) for r in self.entries()
        }
        self.appended = 0
        self.skipped = 0

    # -- writing ------------------------------------------------------------
    def record(self, spec: ScenarioSpec, result: ScenarioResult,
               label: str, scenario: str) -> bool:
        """Append one result record (dedup'd on label × spec hash).

        Returns True when a record was actually appended.  This is the
        shape :attr:`~repro.scenarios.runner.ResultCache.on_put` hooks
        feed — fleet workers index each result as it lands.
        """
        return self.record_raw({
            "spec_hash": result.spec_hash,
            "name": spec.name,
            "label": label,
            "scenario": scenario,
            "result": result.to_dict(),
        })

    def record_raw(self, record: Dict[str, Any]) -> bool:
        """Append a pre-shaped record (``backfill`` path); dedup'd."""
        key = (record["label"], record["spec_hash"])
        if key in self._seen:
            self.skipped += 1
            return False
        self._seen.add(key)
        payload = dict(record)
        payload.setdefault("ts", time.time())
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        # one O_APPEND write per record: concurrent fleet workers each
        # land whole lines; interleaving between lines is fine, torn
        # lines (a crash mid-write) are skipped by readers
        fd = os.open(self.index_path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        self.appended += 1
        return True

    # -- reading ------------------------------------------------------------
    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every index record, in append order (torn lines skipped)."""
        try:
            text = self.index_path.read_text()
        except FileNotFoundError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn trailing line: a writer was killed
            if isinstance(record, dict) and "spec_hash" in record:
                yield record

    def labels(self) -> Dict[str, int]:
        """Recorded sweep labels → number of indexed points."""
        out: Dict[str, int] = {}
        for record in self.entries():
            out[record["label"]] = out.get(record["label"], 0) + 1
        return out

    def sweep_points(self, label: str) -> List[Dict[str, Any]]:
        """A label's points in manifest shape (``name`` + ``result``),
        ready for :class:`repro.analysis.compare.SweepData`.

        Deduplicated per spec hash (newest record wins, first-seen
        order kept): a reassignment race that indexed a point twice
        must not double-weight it in a comparison.
        """
        by_hash: Dict[str, Dict[str, Any]] = {}
        for record in self.entries():
            if record["label"] != label:
                continue
            entry = {"name": record["name"],
                     "spec_hash": record["spec_hash"],
                     "result": record["result"]}
            if record["spec_hash"] in by_hash:
                by_hash[record["spec_hash"]].update(entry)
            else:
                by_hash[record["spec_hash"]] = entry
        return list(by_hash.values())

    def get_result(self, spec_hash: str) -> Optional[ScenarioResult]:
        """Newest indexed result for ``spec_hash``, or None.

        Content-addressed trust: the hash covers the full spec payload
        (schema version included), so serving an indexed result is
        exactly as safe as serving a per-spec cache file — the serve
        tier probes this after a result-cache miss.
        """
        found: Optional[Dict[str, Any]] = None
        for record in self.entries():
            if record["spec_hash"] == spec_hash:
                found = record
        if found is None:
            return None
        return ScenarioResult.from_dict(found["result"])

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # -- backfill -----------------------------------------------------------
    def backfill(self, sweeps: os.PathLike | str) -> Dict[str, int]:
        """Absorb every complete sweep manifest under ``sweeps``.

        Partial manifests (killed sweeps) and shard manifests are
        skipped — the store indexes *finished* sweeps; merge or rerun
        first.  Returns ``{"manifests": ..., "points": ...,
        "skipped_manifests": ...}``.
        """
        sweeps = Path(sweeps)
        manifests = points = skipped = 0
        if not sweeps.is_dir():
            return {"manifests": 0, "points": 0, "skipped_manifests": 0}
        for path in sorted(sweeps.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                skipped += 1
                continue
            if (not isinstance(payload, dict) or "points" not in payload
                    or "label" not in payload or payload.get("partial")
                    or "shard" in payload):
                skipped += 1
                continue
            manifests += 1
            for entry in payload["points"]:
                if self.record_raw({
                    "spec_hash": entry["spec_hash"],
                    "name": entry["name"],
                    "label": payload["label"],
                    "scenario": payload.get("scenario", ""),
                    "result": entry["result"],
                }):
                    points += 1
        return {"manifests": manifests, "points": points,
                "skipped_manifests": skipped}
