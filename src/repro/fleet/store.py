"""The consolidated results store: one index across every sweep.

A sweep manifest records what *one* run did; the result cache holds
content-addressed entries with no notion of history.  The store is
the missing join: an **append-only** ``<cache>/store/index.jsonl``
whose records key every result by spec hash *and* by the label of the
sweep that produced it, across all historical sweeps sharing the
cache.  That turns a pile of cached scenario results into a queryable
asset:

- ``fleet compare A B --html`` renders a regression report between
  any two labels ever recorded, without re-reading their manifests;
- the serve daemon probes the store as an extra resolution tier, so a
  result computed by *any* fleet or backfilled from *any* old
  manifest warms SLO queries;
- ``fleet backfill`` absorbs pre-store sweep manifests, so history
  written before the index existed joins it.

Appends are one ``O_APPEND`` write of one line per record — safe
under concurrent fleet workers on a local filesystem — and readers
skip torn trailing lines, so a reader racing a writer sees a valid
prefix.  Records are deduplicated on ``(label, spec_hash)``:
re-running a sweep re-lands the same results without bloating the
index.

**Scale** (millions of records, tens of thousands of points) comes
from three mechanisms layered on the same append-only file:

- **Streaming reads.**  No reader materializes the index; every scan
  is a line-buffered pass tracking byte offsets.
- **The offset sidecar** (``store/index.offsets``): a persistent map
  ``spec_hash → newest byte offset`` plus the per-label key sets,
  stamped with the index generation and the byte range it *covers*.
  ``get_result`` becomes one seek + one line read instead of a full
  scan; ``__len__``/``labels`` read the sidecar's key sets.  The
  sidecar is derived data: when it is missing, torn, from an older
  generation, or covers more bytes than the index holds, it is
  rebuilt from the index; when the index merely grew past it, only
  the tail is scanned.  A lookup whose seek lands on a record with
  the wrong hash (a compaction swapped the file mid-flight) rebuilds
  and retries — the sidecar can be stale, never wrong.
- **Compaction** (``fleet store compact``): rewrites the index
  keeping the newest record per ``(label, spec_hash)`` — in
  first-occurrence key order, so every read result is identical to
  the uncompacted store's — via an atomic swap, and bumps the
  **generation stamp** (``store/generation``) so every reader's
  sidecar invalidates instead of trusting offsets into the new file.
  Run it while no fleet is appending: a record landed between the
  final tail merge and the swap would be lost with the old inode.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..scenarios.runner import ScenarioResult, atomic_write_text
from ..scenarios.spec import ScenarioSpec

#: Persist the sidecar when a refresh had to scan at least this many
#: tail bytes — frequent small appends stay in memory, and whichever
#: reader next folds a grown tail writes the catch-up snapshot.
SIDECAR_PERSIST_MIN_BYTES = 65536


class ResultStore:
    """Append-only cross-sweep result index (see module doc).

    Lives under ``<cache_dir>/store/``; the index file is created
    lazily on first append, so opening a store for reading never
    mutates the cache directory tree beyond its own folder.  Opening
    is cheap — the sidecar (or, failing that, a full scan) is loaded
    lazily on the first read or append, not in ``__init__``.
    """

    def __init__(self, cache_dir: os.PathLike | str) -> None:
        self.root = Path(cache_dir) / "store"
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.jsonl"
        self.offsets_path = self.root / "index.offsets"
        self.generation_path = self.root / "generation"
        #: spec_hash → byte offset of its newest record (sidecar core).
        self._offsets: Optional[Dict[str, int]] = None
        #: label → set of spec hashes (dedup + accounting).
        self._keys: Dict[str, Set[str]] = {}
        #: Byte length of the complete-line prefix the sidecar covers.
        self._covers = 0
        #: Index generation the in-memory sidecar was built against.
        self._generation = 0
        self.appended = 0
        self.skipped = 0
        # sidecar observability (the serve tier surfaces these)
        self.sidecar_rebuilds = 0
        self.sidecar_tail_refreshes = 0
        self.sidecar_persists = 0

    # -- writing ------------------------------------------------------------
    def record(self, spec: ScenarioSpec, result: ScenarioResult,
               label: str, scenario: str) -> bool:
        """Append one result record (dedup'd on label × spec hash).

        Returns True when a record was actually appended.  This is the
        shape :attr:`~repro.scenarios.runner.ResultCache.on_put` hooks
        feed — fleet workers index each result as it lands.
        """
        return self.record_raw({
            "spec_hash": result.spec_hash,
            "name": spec.name,
            "label": label,
            "scenario": scenario,
            "result": result.to_dict(),
        })

    def record_raw(self, record: Dict[str, Any]) -> bool:
        """Append a pre-shaped record (``backfill`` path); dedup'd.

        Dedup consults the sidecar refreshed to the index's current
        tail, so records landed by *other* processes since this store
        was opened are seen — two workers recording the same
        ``(label, spec_hash)`` can still both append in the window
        between refresh and write, which is why every reader
        deduplicates again (newest wins).
        """
        self._refresh_sidecar()
        label, spec_hash = record["label"], record["spec_hash"]
        if spec_hash in self._keys.get(label, ()):
            self.skipped += 1
            return False
        payload = dict(record)
        payload.setdefault("ts", time.time())
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        # one O_APPEND write per record: concurrent fleet workers each
        # land whole lines; interleaving between lines is fine, torn
        # lines (a crash mid-write) are skipped by readers
        fd = os.open(self.index_path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        # note the key but not an offset: under concurrent appenders
        # our line's offset is unknowable here, so `_covers` stays put
        # and the next refresh folds the tail (our line included)
        self._keys.setdefault(label, set()).add(spec_hash)
        self.appended += 1
        return True

    # -- streaming scans ----------------------------------------------------
    def _scan(self, start: int = 0,
              end_box: Optional[List[int]] = None):
        """Yield ``(offset, record)`` for each complete, parseable
        line from byte ``start``.  ``end_box[0]`` (when given) tracks
        the byte length of the complete-line prefix consumed — a torn
        or in-progress trailing line is left for the next scan."""
        if end_box is not None:
            end_box[0] = start
        try:
            fh = open(self.index_path, "rb")
        except FileNotFoundError:
            return
        with fh:
            fh.seek(start)
            offset = start
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn trailing line: a writer mid-write
                stripped = raw.strip()
                if stripped:
                    try:
                        record = json.loads(stripped)
                    except ValueError:
                        record = None  # torn interior line: skip it
                    if isinstance(record, dict) and "spec_hash" in record:
                        yield offset, record
                offset += len(raw)
                if end_box is not None:
                    end_box[0] = offset

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every index record, in append order (torn lines skipped).

        A streaming pass — nothing is materialized, so iterating a
        millions-of-records index is O(1) in memory.
        """
        for _offset, record in self._scan():
            yield record

    # -- the offset sidecar -------------------------------------------------
    def _read_generation(self) -> int:
        try:
            payload = json.loads(self.generation_path.read_text())
            return int(payload["generation"])
        except (OSError, ValueError, TypeError, KeyError):
            return 0

    def _index_size(self) -> int:
        try:
            return os.stat(self.index_path).st_size
        except OSError:
            return 0

    def _fold(self, offset: int, record: Dict[str, Any]) -> None:
        self._offsets[record["spec_hash"]] = offset
        self._keys.setdefault(record["label"], set()) \
            .add(record["spec_hash"])

    def _rebuild_sidecar(self, generation: int) -> None:
        """Full scan → fresh sidecar (missing/torn/cross-generation)."""
        self._offsets = {}
        self._keys = {}
        end = [0]
        for offset, record in self._scan(end_box=end):
            self._fold(offset, record)
        self._covers = end[0]
        self._generation = generation
        self.sidecar_rebuilds += 1
        self._persist_sidecar()

    def _refresh_sidecar(self) -> None:
        """Bring the in-memory sidecar up to the index's current tail.

        Resolution order: a warm in-memory sidecar of the current
        generation only scans the grown tail; a cold instance adopts
        the on-disk sidecar when its generation matches and it covers
        no more than the index holds; anything else — missing, torn,
        older/newer generation, or covering bytes the (compacted)
        index no longer has — triggers a full rebuild.
        """
        generation = self._read_generation()
        size = self._index_size()
        if self._offsets is None:
            adopted = self._load_sidecar_file(generation, size)
            if not adopted:
                self._rebuild_sidecar(generation)
                return
        if generation != self._generation or size < self._covers:
            self._rebuild_sidecar(generation)
            return
        if size > self._covers:
            scanned_from = self._covers
            end = [self._covers]
            for offset, record in self._scan(self._covers, end_box=end):
                self._fold(offset, record)
            self._covers = end[0]
            self.sidecar_tail_refreshes += 1
            if self._covers - scanned_from >= SIDECAR_PERSIST_MIN_BYTES:
                self._persist_sidecar()

    def _load_sidecar_file(self, generation: int, size: int) -> bool:
        """Adopt ``index.offsets`` if it is sound; False otherwise."""
        try:
            payload = json.loads(self.offsets_path.read_text())
        except (OSError, ValueError):
            return False
        if not isinstance(payload, dict):
            return False
        try:
            covers = int(payload["covers"])
            file_generation = int(payload["generation"])
            offsets = {str(k): int(v)
                       for k, v in payload["offsets"].items()}
            keys = {str(label): set(map(str, hashes))
                    for label, hashes in payload["keys"].items()}
        except (KeyError, TypeError, ValueError, AttributeError):
            return False  # torn or foreign: rebuild from the index
        if file_generation != generation or covers > size or covers < 0:
            return False
        self._offsets = offsets
        self._keys = keys
        self._covers = covers
        self._generation = generation
        return True

    def _persist_sidecar(self) -> None:
        """Atomic snapshot of the in-memory sidecar (derived data:
        concurrent persisters are last-writer-wins, and every snapshot
        is valid for the covers it declares)."""
        atomic_write_text(self.offsets_path, json.dumps({
            "generation": self._generation,
            "covers": self._covers,
            "offsets": self._offsets,
            "keys": {label: sorted(hashes)
                     for label, hashes in self._keys.items()},
        }, sort_keys=True, separators=(",", ":")))
        self.sidecar_persists += 1

    def _read_record_at(self, offset: int) -> Optional[Dict[str, Any]]:
        try:
            with open(self.index_path, "rb") as fh:
                fh.seek(offset)
                raw = fh.readline()
        except OSError:
            return None
        if not raw.endswith(b"\n"):
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    # -- reading ------------------------------------------------------------
    def labels(self) -> Dict[str, int]:
        """Recorded sweep labels → number of indexed points.

        Deduplicated on ``(label, spec_hash)``: duplicate physical
        lines from concurrent writers count once, matching what
        :meth:`sweep_points` would actually return.
        """
        self._refresh_sidecar()
        return {label: len(hashes)
                for label, hashes in sorted(self._keys.items()) if hashes}

    def sweep_points(self, label: str) -> List[Dict[str, Any]]:
        """A label's points in manifest shape (``name`` + ``result``),
        ready for :class:`repro.analysis.compare.SweepData`.

        Deduplicated per spec hash (newest record wins, first-seen
        order kept): a reassignment race that indexed a point twice
        must not double-weight it in a comparison.  This is a
        streaming pass over the label's records — compaction is what
        keeps it proportional to live points rather than history.
        """
        by_hash: Dict[str, Dict[str, Any]] = {}
        for record in self.entries():
            if record["label"] != label:
                continue
            entry = {"name": record["name"],
                     "spec_hash": record["spec_hash"],
                     "result": record["result"]}
            if record["spec_hash"] in by_hash:
                by_hash[record["spec_hash"]].update(entry)
            else:
                by_hash[record["spec_hash"]] = entry
        return list(by_hash.values())

    def get_result(self, spec_hash: str) -> Optional[ScenarioResult]:
        """Newest indexed result for ``spec_hash``, or None.

        One sidecar probe + one seek + one line read — never a full
        scan on the hot path (the serve tier calls this per store-tier
        probe).  A record read back with the wrong hash means the
        index was compacted under our offsets; rebuild once and
        retry.

        Content-addressed trust: the hash covers the full spec payload
        (schema version included), so serving an indexed result is
        exactly as safe as serving a per-spec cache file.
        """
        self._refresh_sidecar()
        for _attempt in range(2):
            offset = self._offsets.get(spec_hash)
            if offset is None:
                return None
            record = self._read_record_at(offset)
            if record is not None and \
                    record.get("spec_hash") == spec_hash:
                return ScenarioResult.from_dict(record["result"])
            # stale offset (index swapped between refresh and seek):
            # rebuild against the current generation and retry once
            self._rebuild_sidecar(self._read_generation())
        return None

    def __len__(self) -> int:
        """Distinct ``(label, spec_hash)`` records (duplicate physical
        lines from concurrent writers count once)."""
        self._refresh_sidecar()
        return sum(len(hashes) for hashes in self._keys.values())

    def superseded_fraction(self) -> float:
        """Fraction of physical records shadowed by a newer record of
        the same ``(label, spec_hash)`` — what :meth:`compact` would
        drop, as a ratio.  The dispatcher's auto-compaction trigger
        compares this against its threshold at finalize; an empty
        store is 0.0 (nothing to reclaim)."""
        total = sum(1 for _ in self.entries())
        if total == 0:
            return 0.0
        return (total - len(self)) / total

    # -- compaction ---------------------------------------------------------
    def compact(self) -> Dict[str, int]:
        """Rewrite the index keeping the newest record per
        ``(label, spec_hash)``; atomic swap + generation bump.

        Surviving records keep the **first-occurrence order** of their
        keys with the newest payload per key, so every read —
        ``get_result``, ``sweep_points``, ``labels``, ``len`` — returns
        byte-identical answers before and after (pinned by the tier-1
        suite).  The generation stamp is bumped *before* the swap:
        a reader refreshing in the window rebuilds from whichever file
        it sees instead of trusting offsets across the swap, and the
        wrong-hash retry in :meth:`get_result` covers the rest.

        Run while no fleet is appending: the final tail merge closes
        the window, but a record appended after it and before the
        ``os.replace`` would die with the old inode.
        """
        newest: Dict[Tuple[str, str], Dict[str, Any]] = {}
        records_before = 0
        covers = 0
        # first pass, then re-merge any tail that landed while we
        # scanned (bounds, not closes, the race — see the docstring)
        while True:
            end = [covers]
            for _offset, record in self._scan(covers, end_box=end):
                key = (record["label"], record["spec_hash"])
                if key in newest:
                    newest[key].update(record)  # newest payload, old slot
                else:
                    newest[key] = dict(record)
                records_before += 1
            covers = end[0]
            if self._index_size() <= covers:
                break
        lines = [json.dumps(record, sort_keys=True,
                            separators=(",", ":")) + "\n"
                 for record in newest.values()]
        generation = self._read_generation() + 1
        atomic_write_text(self.generation_path,
                          json.dumps({"generation": generation,
                                      "compacted_at": time.time()}))
        atomic_write_text(self.index_path, "".join(lines))
        stats = {
            "records_before": records_before,
            "records_after": len(lines),
            "dropped": records_before - len(lines),
            "bytes_after": self._index_size(),
            "generation": generation,
        }
        # our own sidecar is now stale by construction; rebuild it
        # (and persist) against the compacted file
        self._rebuild_sidecar(generation)
        return stats

    # -- backfill -----------------------------------------------------------
    def backfill(self, sweeps: os.PathLike | str) -> Dict[str, int]:
        """Absorb every complete sweep manifest under ``sweeps``.

        Partial manifests (killed sweeps) and shard manifests are
        skipped — the store indexes *finished* sweeps; merge or rerun
        first.  Returns ``{"manifests", "absorbed",
        "already_indexed", "points", "skipped_manifests"}``:
        ``absorbed`` counts manifests that contributed at least one
        new record, ``already_indexed`` those whose every point was
        already present (a rerun is reported as such, not as fresh
        work), and ``manifests`` is their sum.
        """
        sweeps = Path(sweeps)
        absorbed = already = points = skipped = 0
        if not sweeps.is_dir():
            return {"manifests": 0, "absorbed": 0, "already_indexed": 0,
                    "points": 0, "skipped_manifests": 0}
        for path in sorted(sweeps.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                skipped += 1
                continue
            if (not isinstance(payload, dict) or "points" not in payload
                    or "label" not in payload or payload.get("partial")
                    or "shard" in payload):
                skipped += 1
                continue
            new_points = 0
            for entry in payload["points"]:
                if self.record_raw({
                    "spec_hash": entry["spec_hash"],
                    "name": entry["name"],
                    "label": payload["label"],
                    "scenario": payload.get("scenario", ""),
                    "result": entry["result"],
                }):
                    new_points += 1
            if new_points:
                absorbed += 1
                points += new_points
            else:
                already += 1
        return {"manifests": absorbed + already, "absorbed": absorbed,
                "already_indexed": already, "points": points,
                "skipped_manifests": skipped}
