"""Work-stealing sweep fleet + the consolidated results store.

- :mod:`repro.fleet.protocol` — the shared-directory wire: atomic
  rename claims, heartbeats, retry/backoff, poison quarantine.
- :mod:`repro.fleet.worker` — one steal-compute-persist loop.
- :mod:`repro.fleet.dispatcher` — spawns/supervises workers, requeues
  dead workers' points, writes the byte-identical sweep manifest.
- :mod:`repro.fleet.store` — append-only cross-sweep result index
  (``<cache>/store/index.jsonl``) with a persistent offset sidecar
  and ``store compact``, behind ``fleet compare --html``,
  ``fleet backfill`` and the serve daemon's store tier.
- :mod:`repro.fleet.telemetry` — per-worker throughput rows and
  straggler flagging behind ``fleet stats``.
"""

from .dispatcher import FleetDispatcher, FleetError, FleetOutcome
from .protocol import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_LIVENESS_TIMEOUT,
    DEFAULT_MAX_RETRIES,
    FleetDirs,
    ResolvedCounter,
    backoff_delay,
    requeue_task,
)
from .store import ResultStore
from .telemetry import (
    FleetStats,
    WorkerStat,
    fleet_stats,
    format_stats,
    worker_stats,
)
from .worker import FleetWorker, default_worker_id

__all__ = [
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_LIVENESS_TIMEOUT",
    "DEFAULT_MAX_RETRIES",
    "FleetDirs",
    "FleetDispatcher",
    "FleetError",
    "FleetOutcome",
    "FleetStats",
    "FleetWorker",
    "ResolvedCounter",
    "ResultStore",
    "WorkerStat",
    "backoff_delay",
    "default_worker_id",
    "fleet_stats",
    "format_stats",
    "requeue_task",
    "worker_stats",
]
