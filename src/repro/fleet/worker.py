"""A fleet worker: steal, compute, persist, heartbeat, repeat.

``FleetWorker`` attaches to a fleet directory (see
:mod:`repro.fleet.protocol`), claims one grid point at a time via the
atomic rename protocol, and runs it through the exact same
``run_cached`` path a sweep uses — so results land in the shared
:class:`~repro.scenarios.runner.ResultCache` *before* the point is
marked done, and a worker killed between the two leaves an idempotent
rerun, never a lost or duplicated result.  Every computed result is
also appended to the consolidated
:class:`~repro.fleet.store.ResultStore` through the cache's
``on_put`` index hook.

A heartbeat thread keeps the worker's liveness file fresh while a
point computes; a compute that *raises* (as opposed to a scenario
that fails — that's a result) requeues the point with backoff and the
worker moves on.  A worker process that dies outright stops beating,
and the dispatcher requeues its claim.

Run one on any machine that can see the cache directory::

    python -m repro.fleet worker --fleet-dir <cache>/fleet/<label>

Fault injection (tests only): ``REPRO_FLEET_FAULT`` holds
comma-separated ``<spec-hash-prefix>=<action>`` items with action
``exit`` (hard ``os._exit`` before computing — the poison-point path)
or ``hang`` (block, heartbeat alive, until killed or a
``fault-disarmed`` file appears in the fleet dir — the SIGKILL
harness).  Production fleets never set it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..scenarios import workloads
from ..scenarios.runner import ResultCache, run_cached
from ..scenarios.spec import ScenarioSpec
from .protocol import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_MAX_RETRIES,
    HEARTBEAT_INTERVAL,
    FleetDirs,
    ResolvedCounter,
    requeue_task,
)
from .store import ResultStore


def default_worker_id() -> str:
    """``<host>-<pid>`` with dots sanitized (the claim-filename
    separator is a dot)."""
    host = socket.gethostname().replace(".", "-")
    return f"{host}-{os.getpid()}"


class FleetWorker:
    """One work-stealing loop over a fleet directory (see module doc).

    ``cache_dir`` defaults to the fleet directory's grandparent —
    fleet dirs live at ``<cache>/fleet/<label>`` — so a worker
    normally needs nothing but ``--fleet-dir``.
    """

    def __init__(
        self,
        fleet_dir: os.PathLike | str,
        cache_dir: Optional[os.PathLike | str] = None,
        worker_id: Optional[str] = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        poll_interval: float = 0.1,
    ) -> None:
        self.dirs = FleetDirs(fleet_dir)
        grid = self.dirs.read_grid()
        self.label: str = grid["label"]
        self.scenario: str = grid["scenario"]
        self.n_points: int = grid["n_points"]
        self.max_retries: int = grid.get("max_retries",
                                         DEFAULT_MAX_RETRIES)
        self.backoff_base: float = grid.get("backoff_base",
                                            DEFAULT_BACKOFF_BASE)
        self.worker_id = worker_id or default_worker_id()
        if "." in self.worker_id:
            raise ValueError(
                f"worker id must not contain '.', got {self.worker_id!r}"
            )
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        cache_root = Path(cache_dir) if cache_dir is not None \
            else self.dirs.root.parent.parent
        self.store = ResultStore(cache_root)
        # the index hook: every result this worker computes is
        # appended to the consolidated store the moment the cache
        # write makes it durable
        self.cache = ResultCache(
            cache_root,
            on_put=lambda spec, result: self.store.record(
                spec, result, self.label, self.scenario
            ),
        )
        workloads.set_trace_cache_dir(str(cache_root / "traces"))
        self.points_done = 0
        self._current: Optional[int] = None
        self._beat_stop = threading.Event()
        self._resolved_counter = ResolvedCounter(self.dirs)
        # throughput telemetry (read by the beat thread — plain float
        # reads, no lock needed)
        self._started = time.monotonic()
        self._claim_started: Optional[float] = None
        self._latency_sum = 0.0
        self._latency_count = 0
        self._last_latency: Optional[float] = None

    # -- liveness -----------------------------------------------------------
    def _telemetry(self) -> dict:
        """Throughput fields riding along in each heartbeat (the
        dispatcher's and ``fleet stats``' straggler view)."""
        elapsed = max(time.monotonic() - self._started, 1e-9)
        out: dict = {
            "points_per_min": round(60.0 * self.points_done / elapsed, 4),
            "uptime": round(elapsed, 3),
        }
        if self._latency_count:
            out["mean_latency"] = round(
                self._latency_sum / self._latency_count, 4
            )
            out["last_latency"] = round(self._last_latency, 4)
        claim_started = self._claim_started
        if claim_started is not None:
            out["point_age"] = round(
                max(0.0, time.monotonic() - claim_started), 3
            )
        return out

    def _beat(self) -> None:
        self.dirs.beat(self.worker_id, self._current, self.points_done,
                       telemetry=self._telemetry())

    def _beat_loop(self) -> None:
        while not self._beat_stop.wait(self.heartbeat_interval):
            self._beat()

    # -- fault injection (tests only) ---------------------------------------
    def _fault_action(self, spec_hash: str) -> Optional[str]:
        plan = os.environ.get("REPRO_FLEET_FAULT")
        if not plan or (self.dirs.root / "fault-disarmed").exists():
            return None
        for item in plan.split(","):
            prefix, _, action = item.partition("=")
            if prefix and spec_hash.startswith(prefix):
                return action or "exit"
        return None

    def _inject_fault(self, spec_hash: str) -> None:
        action = self._fault_action(spec_hash)
        if action == "exit":
            os._exit(17)  # a hard crash: no cleanup, no heartbeat
        if action == "hang":
            while not (self.dirs.root / "fault-disarmed").exists():
                time.sleep(0.05)

    # -- the steal loop -----------------------------------------------------
    def _try_claim(self) -> Optional[Dict[str, Any]]:
        now = time.time()
        for task in self.dirs.queued_tasks():
            if task.get("not_before", 0.0) > now:
                continue  # backing off: not eligible yet
            claimed = self.dirs.claim(task["index"], self.worker_id)
            if claimed is None:
                continue
            if claimed.get("not_before", 0.0) > now:
                # a fresher requeue raced our claim: the payload we
                # renamed carries a bumped backoff — honor it.  Hand
                # the task back verbatim (enqueue before releasing the
                # claim, so the point is never owner-less)
                self.dirs.enqueue(claimed)
                self.dirs.release(task["index"], self.worker_id)
                continue
            return claimed
        return None

    def _resolved(self) -> int:
        """Resolved (done + poison) points — the cached monotone
        counter, not a per-poll parse of every record file."""
        return self._resolved_counter.count()

    def _run_task(self, task: Dict[str, Any]) -> None:
        index = task["index"]
        claimed_at = time.monotonic()
        self._current = index
        self._claim_started = claimed_at
        self._beat()
        spec = ScenarioSpec.from_dict(task["spec"])
        self._inject_fault(spec.spec_hash())
        try:
            result = run_cached(spec, self.cache)
        except Exception as exc:  # noqa: BLE001 — requeue, keep stealing
            # a *raising* compute (cache I/O fault, bad spec) is a
            # worker-level failure, not a scenario datum: hand the
            # point back with backoff and let the retry budget decide
            task["_path"] = str(
                self.dirs.active / f"p{index:06d}.{self.worker_id}.json"
            )
            requeue_task(
                self.dirs, task, max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                reason=f"worker-error: {exc}",
            )
            return
        finally:
            self._current = None
            self._claim_started = None
        # durability order: the cache write (inside run_cached)
        # happened first, the done record second, the claim release
        # last — dying between any two steps is recoverable
        self.dirs.mark_done({
            "index": index, "name": spec.name,
            "spec_hash": result.spec_hash, "worker": self.worker_id,
            "result": result.to_dict(),
        })
        self.dirs.release(index, self.worker_id)
        self.points_done += 1
        # claim-to-done latency feeds the straggler telemetry
        latency = max(0.0, time.monotonic() - claimed_at)
        self._latency_sum += latency
        self._latency_count += 1
        self._last_latency = latency

    def run(self) -> int:
        """Steal until the fleet is resolved; returns points computed."""
        beat = threading.Thread(target=self._beat_loop,
                                name=f"beat-{self.worker_id}", daemon=True)
        self._beat()
        beat.start()
        try:
            while True:
                task = self._try_claim()
                if task is not None:
                    self._run_task(task)
                    continue
                if self.dirs.stopped:
                    break
                if self._resolved() >= self.n_points:
                    break  # fully resolved even without a stop flag
                time.sleep(self.poll_interval)
        finally:
            self._beat_stop.set()
            beat.join(timeout=2 * self.heartbeat_interval + 1.0)
            self._beat()
        return self.points_done
