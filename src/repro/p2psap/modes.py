"""P2PSAP protocol modes.

P2PSAP (El-Baz & Nguyen, PDP'10) is a self-adaptive transport whose
session/channel stack is reconfigured from micro-protocols: TCP-like
configurations for synchronous schemes, lighter unordered/unacked
configurations for asynchronous iterative schemes.  We model a mode by
its *performance envelope*: per-message protocol overhead, header
size, whether delivery is acknowledged (the sender of a blocking send
waits an extra return leg), and whether stale messages may be
discarded by the receiver (asynchronous iterations consume only the
freshest iterate).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtocolMode:
    """One configuration of the P2PSAP channel stack."""

    name: str
    per_message_overhead: float  # seconds of protocol processing (each end)
    header_bytes: int
    acked: bool          # blocking send waits for an ack leg
    drop_stale: bool     # receiver keeps only the freshest message
    congestion_control: bool

    def wire_size(self, payload_bytes: float) -> float:
        return payload_bytes + self.header_bytes


#: TCP with congestion control: the conservative inter-zone default.
TCP_RENO = ProtocolMode(
    name="tcp-reno",
    per_message_overhead=60e-6,
    header_bytes=40,
    acked=True,
    drop_stale=False,
    congestion_control=True,
)

#: TCP without congestion control — P2PSAP's intra-cluster synchronous
#: configuration (a dedicated LAN needs no Reno backoff).
TCP_NO_CC = ProtocolMode(
    name="tcp-nocc",
    per_message_overhead=35e-6,
    header_bytes=40,
    acked=True,
    drop_stale=False,
    congestion_control=False,
)

#: UDP-like unacked mode for asynchronous iterative schemes: stale
#: iterates are droppable, nobody waits for acknowledgements.
UDP_ASYNC = ProtocolMode(
    name="udp-async",
    per_message_overhead=20e-6,
    header_bytes=28,
    acked=False,
    drop_stale=True,
    congestion_control=False,
)

ALL_MODES = (TCP_RENO, TCP_NO_CC, UDP_ASYNC)


def mode_by_name(name: str) -> ProtocolMode:
    """Look a protocol mode up by its wire name."""
    for mode in ALL_MODES:
        if mode.name == name:
            return mode
    raise KeyError(f"unknown protocol mode {name!r}")
