"""P2PSAP channels: connected peer↔peer data-plane endpoints.

A :class:`Channel` joins two hosts over the fluid network under a
protocol mode chosen by the adaptation rules.  Sends cost protocol
overhead at each end plus the network transfer of payload+header; in
acked modes a blocking send additionally waits for the ack leg.  In
``drop_stale`` mode the receive queue keeps only the freshest message
(asynchronous iterations never consume outdated iterates).

Reconfiguration (``adapt``) swaps the mode at a session-renegotiation
cost — the protocol-switch capability that distinguishes P2PSAP from
"switch between networks" approaches like MPICH-Madeleine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..desim import Mailbox, Signal, Simulator
from ..net import FluidNetwork, Host
from .adaptation import select_mode
from .context import ChannelContext
from .modes import ProtocolMode

#: Session renegotiation cost for a protocol switch (seconds, per the
#: handshake of the reconfigurable stack).
RECONFIGURE_RTTS = 2.0

_ids = itertools.count()


@dataclass
class ChannelStats:
    messages_sent: int = 0
    bytes_sent: float = 0.0
    messages_dropped_stale: int = 0
    reconfigurations: int = 0


class ChannelEndpoint:
    """One side's view of a channel."""

    def __init__(self, channel: "Channel", host: Host, peer_host: Host) -> None:
        self.channel = channel
        self.host = host
        self.peer_host = peer_host
        self.inbox = Mailbox(f"chan{channel.cid}:{host.name}")

    # -- data plane -----------------------------------------------------------
    def send(self, payload_bytes: float, data: object = None) -> Signal:
        """Transmit; returned signal fires when the sender may proceed
        (transfer done, plus ack leg in acked modes)."""
        return self.channel._transmit(self, payload_bytes, data)

    def recv(self) -> Signal:
        """Signal yielding ``(payload_bytes, data)`` — freshest first in
        drop-stale mode, FIFO otherwise."""
        return self.inbox.get()

    def try_recv(self):
        return self.inbox.try_get()

    @property
    def pending(self) -> int:
        return len(self.inbox)


class Channel:
    """A P2PSAP session between two hosts."""

    def __init__(
        self,
        sim: Simulator,
        net: FluidNetwork,
        host_a: Host,
        host_b: Host,
        context: ChannelContext = ChannelContext(),
        mode: Optional[ProtocolMode] = None,
        faults: object = None,
    ) -> None:
        self.cid = next(_ids)
        self.sim = sim
        self.net = net
        self.context = context
        self.mode = mode if mode is not None else select_mode(context)
        #: Network-fault injector (:class:`repro.net.FaultInjector`)
        #: shared with the overlay; None keeps every transfer on the
        #: exact pre-fault code path.
        self.faults = faults
        self.stats = ChannelStats()
        self.a = ChannelEndpoint(self, host_a, host_b)
        self.b = ChannelEndpoint(self, host_b, host_a)
        self.closed = False
        # per-send f-strings are hot-path cost: the cid is fixed, so
        # the signal name and wire tags are built once per channel
        self._send_name = f"chan{self.cid}:send"
        self._tag = f"chan{self.cid}"
        self._ack_tag = f"chan{self.cid}:ack"

    def endpoints(self):
        return self.a, self.b

    def endpoint_for(self, host: Host) -> ChannelEndpoint:
        if host is self.a.host:
            return self.a
        if host is self.b.host:
            return self.b
        raise KeyError(f"host {host.name} not on channel {self.cid}")

    # -- adaptation ---------------------------------------------------------
    def adapt(self, context: ChannelContext) -> Signal:
        """Renegotiate the stack for a new context.

        Returns a signal that fires when the channel is usable again;
        no-op (immediate) when the selected mode is unchanged.
        """
        self.context = context
        new_mode = select_mode(context)
        done = Signal(f"chan{self.cid}:adapt")
        if new_mode is self.mode:
            done.succeed(self.mode)
            return done
        self.mode = new_mode
        self.stats.reconfigurations += 1
        rtt = 2.0 * self.net.topology.route_latency(self.a.host, self.b.host)
        self.sim.schedule(RECONFIGURE_RTTS * rtt, done.succeed, new_mode)
        return done

    # -- internals ------------------------------------------------------------
    def _transmit(
        self, src: ChannelEndpoint, payload_bytes: float, data: object
    ) -> Signal:
        if self.closed:
            raise RuntimeError(f"channel {self.cid} is closed")
        mode = self.mode
        dst = self.b if src is self.a else self.a
        self.stats.messages_sent += 1
        self.stats.bytes_sent += payload_bytes
        done = Signal(self._send_name)
        wire = mode.wire_size(payload_bytes)
        # sender-side protocol processing before the wire (bound
        # methods with explicit args, not per-send closures: the halo
        # exchange transmits per iteration per neighbour)
        self.sim.call_later(mode.per_message_overhead, self._start_transfer,
                            src, dst, mode, wire, payload_bytes, data, done)
        if not mode.acked:
            # sender is released after local processing + first byte out
            self.sim.call_later(mode.per_message_overhead, done.succeed,
                                payload_bytes)
        return done

    def _start_transfer(self, src, dst, mode, wire, payload_bytes,
                        data, done) -> None:
        delay = 0.0
        duplicate = False
        faults = self.faults
        if faults is not None:
            verdict = self._apply_faults(faults, src, dst, mode)
            if verdict is None:
                # genuinely dropped (non-acked mode only: the sender
                # was already released after local processing)
                return
            delay, duplicate = verdict
        if delay > 0.0:
            self.sim.call_later(delay, self._wire_send, src, dst, mode,
                                wire, payload_bytes, data, done, duplicate)
        else:
            self._wire_send(src, dst, mode, wire, payload_bytes, data,
                            done, duplicate)

    def _apply_faults(self, faults, src, dst, mode):
        """Per-transfer fault verdict: None = dropped, else
        ``(extra delay, deliver a duplicate)``.

        Mode-aware: acked (TCP-like) modes never lose or duplicate at
        the application boundary — retransmission and sequence numbers
        live below the abstraction — so a loss draw (or a partition
        window) costs *delay* instead of the message, while the
        non-acked drop-stale modes genuinely drop and duplicate.
        """
        delay = 0.0
        if faults.blocked(src.host, dst.host):
            if not mode.acked:
                return None
            # TCP retransmits until the partition heals
            delay += max(0.0, faults.partition_end - self.sim.now)
        if faults.drop():
            if not mode.acked:
                return None
            # lost on the wire, recovered by retransmission: the
            # jitter-delay scale stands in for the RTO cost
            delay += faults.jitter_delay
        delay += faults.delay()
        duplicate = False if mode.acked else faults.duplicate()
        return delay, duplicate

    def _wire_send(self, src, dst, mode, wire, payload_bytes, data,
                   done, duplicate=False) -> None:
        # receiver-side protocol processing after arrival, then enqueue
        def arrived(_info) -> None:
            self.sim.call_later(mode.per_message_overhead, self._enqueue,
                                src, dst, mode, payload_bytes, data, done)

        self.net.send(src.host, dst.host, wire, tag=self._tag,
                      callback=arrived)
        if duplicate:
            # the second copy takes its own trip over the network
            self.net.send(src.host, dst.host, wire, tag=self._tag,
                          callback=arrived)

    def _enqueue(self, src, dst, mode, payload_bytes, data, done) -> None:
        if mode.drop_stale and len(dst.inbox) > 0:
            dst.inbox.clear()
            self.stats.messages_dropped_stale += 1
        dst.inbox.put((payload_bytes, data))
        if mode.acked:
            self.net.send(dst.host, src.host, mode.header_bytes,
                          tag=self._ack_tag,
                          callback=lambda _info: done.succeed(payload_bytes))

    def close(self) -> None:
        self.closed = True
