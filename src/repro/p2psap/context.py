"""Adaptation context: what the protocol knows when choosing a mode.

P2PSAP takes decisions from two inputs (paper §I): the *scheme of
computation* decided at application level (synchronous or asynchronous
iterations) and *elements of context* at transport level (network
topology — here, whether the peers share a zone, and the link class
inferred from route latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Scheme(enum.Enum):
    SYNC = "synchronous"
    ASYNC = "asynchronous"


class Locality(enum.Enum):
    SAME_ZONE = "same-zone"      # long common IP prefix / same tracker zone
    INTER_ZONE = "inter-zone"


class LinkClass(enum.Enum):
    CLUSTER = "cluster"   # sub-millisecond RTT
    LAN = "lan"
    WAN = "wan"           # ≥ 10 ms one-way (xDSL, internet paths)


#: One-way latency thresholds for link classification (seconds).
_LAN_THRESHOLD = 1e-3
_WAN_THRESHOLD = 8e-3


def classify_link(one_way_latency: float) -> LinkClass:
    """Bucket a route's one-way latency into a link class."""
    if one_way_latency < _LAN_THRESHOLD:
        return LinkClass.CLUSTER
    if one_way_latency < _WAN_THRESHOLD:
        return LinkClass.LAN
    return LinkClass.WAN


@dataclass(frozen=True)
class ChannelContext:
    """Everything the adaptation rules may consult."""

    scheme: Scheme = Scheme.SYNC
    locality: Locality = Locality.SAME_ZONE
    link_class: LinkClass = LinkClass.CLUSTER
