"""Mode-selection rules — the "self-adaptive" part of P2PSAP.

The decision table follows the published P2PSAP design:

==============  ============  ==================  ============
scheme          locality      link class          chosen mode
==============  ============  ==================  ============
asynchronous    any           any                 udp-async
synchronous     same zone     cluster/LAN         tcp-nocc
synchronous     same zone     WAN                 tcp-reno
synchronous     inter zone    any                 tcp-reno
==============  ============  ==================  ============

Asynchronous iterative schemes tolerate loss and staleness, so the
lightest unacked mode always wins.  Synchronous schemes need reliable
ordered delivery; within a zone on a dedicated network the congestion
controller is dead weight, across zones (or any WAN path) it is kept.
"""

from __future__ import annotations

from .context import ChannelContext, LinkClass, Locality, Scheme
from .modes import TCP_NO_CC, TCP_RENO, UDP_ASYNC, ProtocolMode


def select_mode(context: ChannelContext) -> ProtocolMode:
    """Apply the adaptation rules to a context."""
    if context.scheme is Scheme.ASYNC:
        return UDP_ASYNC
    if (
        context.locality is Locality.SAME_ZONE
        and context.link_class is not LinkClass.WAN
    ):
        return TCP_NO_CC
    return TCP_RENO
