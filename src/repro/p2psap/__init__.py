"""P2PSAP: the self-adaptive peer-to-peer communication protocol."""

from .adaptation import select_mode
from .channel import Channel, ChannelEndpoint, ChannelStats, RECONFIGURE_RTTS
from .context import ChannelContext, LinkClass, Locality, Scheme, classify_link
from .modes import (
    ALL_MODES,
    TCP_NO_CC,
    TCP_RENO,
    UDP_ASYNC,
    ProtocolMode,
    mode_by_name,
)

__all__ = [
    "ALL_MODES",
    "Channel",
    "ChannelContext",
    "ChannelEndpoint",
    "ChannelStats",
    "LinkClass",
    "Locality",
    "ProtocolMode",
    "RECONFIGURE_RTTS",
    "Scheme",
    "TCP_NO_CC",
    "TCP_RENO",
    "UDP_ASYNC",
    "classify_link",
    "mode_by_name",
    "select_mode",
]
