"""The obstacle problem (paper §IV-A1).

The evaluation workload: a 2-D obstacle problem solved by the
projected Richardson method (Spitéri & Chau), written in C for the
P2PDC environment with P2PSAP communication, using a 1-D block-row
domain decomposition with ghost-row halo exchange and a periodic
convergence check via ``p2psap_allreduce_max``.

The sweep is Jacobi-style (new iterate written to a second array),
which makes the distributed run bit-identical to the sequential numpy
reference below — the interpreter's numerics are validated against it
in the tests.

Problem: find u ≥ ψ with -Δu = f on the unit square, u = 0 on the
boundary; one damped-Richardson projected step per iteration::

    u_new = max(ψ, u + 0.25·ω·(Δh u + h²·f))
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

OMEGA = 0.8       # damping parameter (convergent for ω ≤ 1)
LOAD = 16.0       # constant source term f
ENTRY = "obstacle_main"
APP_NAME = "obstacle"

#: The C source analyzed/instrumented/executed by dPerf.
OBSTACLE_SOURCE = r"""
/* Obstacle problem, projected Richardson method (ANR CIP code,
   adapted to the P2PDC environment; P2PSAP communication). */

double psi_at(int gi, int j, int n) {
    double x = (double)gi / (double)(n + 1);
    double y = (double)j / (double)(n + 1);
    return 32.0 * x * (1.0 - x) * y * (1.0 - y) - 0.5;
}

double obstacle_main(int n, int nit, int check_every) {
    int rank = p2psap_rank();
    int size = p2psap_size();
    int rows = n / size;
    double u[rows + 2][n + 2];
    double v[rows + 2][n + 2];
    double psi[rows + 2][n + 2];
    int base = rank * rows;
    for (int i = 0; i <= rows + 1; i++) {
        for (int j = 0; j <= n + 1; j++) {
            u[i][j] = 0.0;
            v[i][j] = 0.0;
            psi[i][j] = psi_at(base + i, j, n);
        }
    }
    double h2 = 1.0 / ((double)(n + 1) * (double)(n + 1));
    double comega = 0.25 * 0.8;
    double res = 0.0;
    for (int it = 0; it < nit; it++) {
        dperf_region_begin("iter");
        /* post both halo sends before blocking on either receive */
        if (rank > 0) {
            p2psap_isend(rank - 1, u[1], n + 2);
        }
        if (rank < size - 1) {
            p2psap_isend(rank + 1, u[rows], n + 2);
        }
        if (rank > 0) {
            p2psap_recv(rank - 1, u[0], n + 2);
        }
        if (rank < size - 1) {
            p2psap_recv(rank + 1, u[rows + 1], n + 2);
        }
        res = 0.0;
        for (int i = 1; i <= rows; i++) {
            for (int j = 1; j <= n; j++) {
                double lap = u[i - 1][j] + u[i + 1][j] + u[i][j - 1]
                           + u[i][j + 1] - 4.0 * u[i][j];
                double unew = u[i][j] + comega * (lap + h2 * 16.0);
                unew = fmax(unew, psi[i][j]);
                res = fmax(res, fabs(unew - u[i][j]));
                v[i][j] = unew;
            }
        }
        for (int i = 1; i <= rows; i++) {
            for (int j = 1; j <= n; j++) {
                u[i][j] = v[i][j];
            }
        }
        if (check_every > 0) {
            if ((it + 1) % check_every == 0) {
                res = p2psap_allreduce_max(res);
            }
        }
        dperf_region_end("iter");
    }
    return res;
}
"""


def obstacle_source() -> str:
    """The obstacle-problem mini-C source (P2PSAP comm calls)."""
    return OBSTACLE_SOURCE


def scale_env(n: int, nranks: int) -> Dict[str, float]:
    """Parameter bindings for block-benchmark scale-up.

    The sweep loops are bounded by ``rows`` and ``n``; both must be
    resolvable when re-evaluating trip counts and message sizes.
    """
    if n % nranks != 0:
        raise ValueError(f"grid n={n} not divisible by {nranks} ranks")
    return {"n": float(n), "rows": float(n // nranks), "size": float(nranks)}


def entry_args(n: int, nit: int, check_every: int) -> List[int]:
    return [n, nit, check_every]


# --------------------------------------------------------------------------
# Sequential numpy reference (ground truth for the numerics)
# --------------------------------------------------------------------------

def psi_grid(n: int) -> np.ndarray:
    """Obstacle surface on the (n+2)×(n+2) grid including boundary."""
    coords = np.arange(n + 2, dtype=np.float64) / (n + 1)
    x = coords[:, None]
    y = coords[None, :]
    return 32.0 * x * (1.0 - x) * y * (1.0 - y) - 0.5


def solve_obstacle_numpy(
    n: int, nit: int, omega: float = OMEGA, load: float = LOAD
) -> Tuple[np.ndarray, List[float]]:
    """Projected Richardson on the full grid; returns (u, residuals).

    Performs exactly the same floating-point operations per element as
    the mini-C kernel, so results match the distributed interpreter run
    bit-for-bit.
    """
    u = np.zeros((n + 2, n + 2), dtype=np.float64)
    psi = psi_grid(n)
    h2 = 1.0 / ((n + 1) * (n + 1))
    comega = 0.25 * omega
    residuals: List[float] = []
    for _ in range(nit):
        interior = u[1:-1, 1:-1]
        lap = (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
            - 4.0 * interior
        )
        unew = np.maximum(interior + comega * (lap + h2 * load),
                          psi[1:-1, 1:-1])
        res = float(np.max(np.abs(unew - interior))) if n > 0 else 0.0
        u[1:-1, 1:-1] = unew
        residuals.append(res)
    return u, residuals


def residual_model(n: int) -> "callable":
    """Residual-vs-iteration model handed to WorkloadSpec (from the
    numpy reference, so P2PDC convergence checks see realistic decay)."""
    _, residuals = solve_obstacle_numpy(min(n, 64), 200)

    def residual(it: int) -> float:
        if it < len(residuals):
            return residuals[it]
        # geometric tail extrapolation
        if len(residuals) >= 2 and residuals[-2] > 0:
            ratio = residuals[-1] / residuals[-2]
            return residuals[-1] * ratio ** (it - len(residuals) + 1)
        return residuals[-1]

    return residual


def contact_region_fraction(u: np.ndarray, n: int) -> float:
    """Fraction of interior points where the constraint is active."""
    psi = psi_grid(n)
    active = np.isclose(u[1:-1, 1:-1], psi[1:-1, 1:-1])
    return float(np.mean(active))
