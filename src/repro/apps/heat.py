"""1-D heat diffusion — the second domain workload.

A Jacobi time-stepper for u_t = α u_xx with a 1-D block decomposition,
written against the **MPI flavour** of the communication API to
exercise dPerf's multi-API recognition (§III-D2: "dPerf is
customizable for recognizing multiple communication methods such as
MPI or P2PSAP").
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

ENTRY = "heat_main"
APP_NAME = "heat"

HEAT_SOURCE = r"""
/* 1-D heat equation, explicit Jacobi steps, MPI halo exchange. */

double heat_main(int n, int nit) {
    int rank = p2psap_rank();
    int size = p2psap_size();
    int cells = n / size;
    double u[cells + 2];
    double v[cells + 2];
    int base = rank * cells;
    for (int i = 0; i <= cells + 1; i++) {
        double x = (double)(base + i) / (double)(n + 1);
        u[i] = x * (1.0 - x);
        v[i] = 0.0;
    }
    double r = 0.25;  /* alpha dt / dx^2, stable */
    double sleft[1];
    double sright[1];
    double rbuf[1];
    for (int it = 0; it < nit; it++) {
        dperf_region_begin("iter");
        /* post both halo sends before blocking on either receive */
        if (rank > 0) {
            sleft[0] = u[1];
            MPI_Isend(rank - 1, sleft, 1);
        }
        if (rank < size - 1) {
            sright[0] = u[cells];
            MPI_Isend(rank + 1, sright, 1);
        }
        if (rank > 0) {
            MPI_Recv(rank - 1, rbuf, 1);
            u[0] = rbuf[0];
        }
        if (rank < size - 1) {
            MPI_Recv(rank + 1, rbuf, 1);
            u[cells + 1] = rbuf[0];
        }
        for (int i = 1; i <= cells; i++) {
            v[i] = u[i] + r * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
        }
        for (int i = 1; i <= cells; i++) {
            u[i] = v[i];
        }
        dperf_region_end("iter");
    }
    double total = 0.0;
    for (int i = 1; i <= cells; i++) {
        total += u[i];
    }
    return total;
}
"""


def heat_source() -> str:
    """The heat-diffusion mini-C source (MPI-flavoured comm calls)."""
    return HEAT_SOURCE


def scale_env(n: int, nranks: int) -> Dict[str, float]:
    if n % nranks != 0:
        raise ValueError(f"n={n} not divisible by {nranks}")
    return {"n": float(n), "cells": float(n // nranks), "size": float(nranks)}


def solve_heat_numpy(n: int, nit: int, r: float = 0.25) -> np.ndarray:
    """Sequential reference (boundary handling identical to mini-C:
    end-point values stay at their initial profile values, as the
    distributed code never refreshes its outermost ghost cells)."""
    x = np.arange(n + 2, dtype=np.float64) / (n + 1)
    u = x * (1.0 - x)
    for _ in range(nit):
        u[1:-1] = u[1:-1] + r * (u[:-2] - 2.0 * u[1:-1] + u[2:])
    return u
