"""Workloads: the paper's obstacle problem plus companion kernels."""

from . import heat, obstacle
from .heat import HEAT_SOURCE, heat_source, solve_heat_numpy
from .obstacle import (
    OBSTACLE_SOURCE,
    contact_region_fraction,
    obstacle_source,
    psi_grid,
    residual_model,
    solve_obstacle_numpy,
)

__all__ = [
    "HEAT_SOURCE",
    "OBSTACLE_SOURCE",
    "contact_region_fraction",
    "heat",
    "heat_source",
    "obstacle",
    "obstacle_source",
    "psi_grid",
    "residual_model",
    "solve_heat_numpy",
    "solve_obstacle_numpy",
]
