"""repro — reproduction of *Performance Prediction in a Decentralized
Environment for Peer-to-Peer Computing* (Cornea, Bourgeois, Nguyen,
El-Baz; IEEE IPDPS 2011).

Subpackages
-----------
``repro.desim``
    Discrete-event simulation kernel (processes, signals, mailboxes).
``repro.net``
    Flow-level network substrate: max-min fair fluid model, topologies.
``repro.platforms``
    The paper's platforms: Grid5000-like cluster, Daisy xDSL, LAN —
    plus a multi-site grid and a platform-description file dialect.
``repro.simx``
    Trace events, trace files, and the MSG-like replay engine.
``repro.p2psap``
    The self-adaptive communication protocol (modes + adaptation).
``repro.p2pdc``
    The decentralized environment: server/trackers/peers, IP-proximity
    zones, peers collection, hierarchical allocation, computation.
``repro.dperf``
    The prediction tool: mini-C frontend, instrumentation, virtual
    PAPI counters, GCC-level cost model, block benchmarking, the
    end-to-end :class:`~repro.dperf.DPerfPredictor`.
``repro.apps``
    Workloads: the obstacle problem (mini-C + numpy reference), heat.
``repro.experiments`` / ``repro.analysis``
    Stage-1/Stage-2/Table-I runners and result handling.
``repro.scenarios``
    Declarative scenario engine: frozen specs, a named registry, and a
    parallel sweep runner with an on-disk result cache
    (``python -m repro.scenarios``).
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "desim",
    "dperf",
    "experiments",
    "net",
    "p2pdc",
    "p2psap",
    "platforms",
    "scenarios",
    "simx",
]
