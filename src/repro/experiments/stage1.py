"""Stage-1 (paper §IV): reference vs predicted time on the cluster.

* Fig. 9 — the reference execution time of the obstacle problem under
  P2PDC on the Bordeplage-like cluster, for 2..32 peers × GCC levels.
  Our reference is the full P2PDC protocol simulation (collection,
  grouping, coordinators, halo exchange over P2PSAP, hierarchy-routed
  convergence checks).
* Fig. 10 — dPerf's trace-based prediction on the same platform,
  compared per peer count (the paper shows O3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Sequence, Tuple

from ..analysis import AccuracyReport, series_accuracy
from ..p2pdc import TaskSpec, deploy_overlay
from . import calibration as C


@dataclass(frozen=True)
class Stage1Config:
    peer_counts: Tuple[int, ...] = C.PEER_COUNTS
    levels: Tuple[str, ...] = C.OPT_LEVELS
    seed: int = 2011


@dataclass
class Stage1Result:
    config: Stage1Config
    reference: Dict[Tuple[int, str], float] = field(default_factory=dict)
    predicted: Dict[Tuple[int, str], float] = field(default_factory=dict)

    def reference_series(self, level: str) -> Dict[int, float]:
        return {n: t for (n, lvl), t in self.reference.items() if lvl == level}

    def predicted_series(self, level: str) -> Dict[int, float]:
        return {n: t for (n, lvl), t in self.predicted.items() if lvl == level}

    def accuracy(self, level: str) -> AccuracyReport:
        return series_accuracy(
            self.reference_series(level), self.predicted_series(level)
        )


def _zones_for(nprocs: int) -> int:
    return max(1, min(4, nprocs // 8))


def reference_time(nprocs: int, level: str, seed: int = 2011) -> float:
    """One reference execution: the obstacle problem run end-to-end
    under the decentralized P2PDC on the cluster platform."""
    platform = C.grid5000_platform()
    dep = deploy_overlay(
        platform, n_peers=nprocs, n_zones=_zones_for(nprocs), seed=seed
    )
    workload = C.obstacle_workload(nprocs, level)
    sig = dep.submitter.submit(TaskSpec(workload=workload, n_peers=nprocs,
                                        spares=0))
    dep.overlay.run_until(sig, limit=1e7)
    outcome = sig.value
    if not outcome.ok:
        raise RuntimeError(f"reference run failed: {outcome.reason}")
    timings = outcome.timings
    # the paper's t_normal_execution is the application's execution
    # time (the environment prints it at the end of each execution) —
    # subtask dispatch through coordinators to results gathered.
    return timings.completed_at - timings.compute_started_at


def predicted_time(nprocs: int, level: str) -> float:
    """dPerf prediction for the same configuration (Fig. 6 pipeline)."""
    platform = C.grid5000_platform()
    traces = C.obstacle_traces(nprocs, level)
    result = C.obstacle_predictor().predict(
        traces, platform, hosts=platform.take_hosts(nprocs)
    )
    return result.t_predicted


@lru_cache(maxsize=4)
def run_stage1(config: Stage1Config = Stage1Config()) -> Stage1Result:
    result = Stage1Result(config)
    for nprocs in config.peer_counts:
        for level in config.levels:
            result.reference[(nprocs, level)] = reference_time(
                nprocs, level, config.seed
            )
            result.predicted[(nprocs, level)] = predicted_time(nprocs, level)
    return result
