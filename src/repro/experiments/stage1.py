"""Stage-1 (paper §IV): reference vs predicted time on the cluster.

* Fig. 9 — the reference execution time of the obstacle problem under
  P2PDC on the Bordeplage-like cluster, for 2..32 peers × GCC levels.
  Our reference is the full P2PDC protocol simulation (collection,
  grouping, coordinators, halo exchange over P2PSAP, hierarchy-routed
  convergence checks).
* Fig. 10 — dPerf's trace-based prediction on the same platform,
  compared per peer count (the paper shows O3).

Every run is expressed as a :class:`~repro.scenarios.ScenarioSpec` and
executed through the memoized scenario runner, so the figures here are
just grid expansions over the same spec space the registry exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from dataclasses import replace as _replace

from ..analysis import AccuracyReport, series_accuracy
from ..scenarios import ScenarioSpec, run_cached
from ..scenarios.registry import CLUSTER_PLAN, OBSTACLE_TARGET
from ..scenarios.spec import WorkloadPlan
from . import calibration as C


def _workload(level: str) -> WorkloadPlan:
    return _replace(OBSTACLE_TARGET, level=level)


def reference_spec(nprocs: int, level: str, seed: int = 2011) -> ScenarioSpec:
    """The scenario behind one Fig. 9 reference point."""
    return ScenarioSpec(
        name=f"stage1-ref-{level}-{nprocs}p", kind="reference",
        platform=CLUSTER_PLAN, workload=_workload(level), n_peers=nprocs,
        seed=seed,
    )


def prediction_spec(nprocs: int, level: str) -> ScenarioSpec:
    """The scenario behind one Fig. 10 prediction point."""
    return ScenarioSpec(
        name=f"stage1-pred-{level}-{nprocs}p", kind="predict",
        platform=CLUSTER_PLAN, workload=_workload(level), n_peers=nprocs,
    )


@dataclass(frozen=True)
class Stage1Config:
    peer_counts: Tuple[int, ...] = C.PEER_COUNTS
    levels: Tuple[str, ...] = C.OPT_LEVELS
    seed: int = 2011


@dataclass
class Stage1Result:
    config: Stage1Config
    reference: Dict[Tuple[int, str], float] = field(default_factory=dict)
    predicted: Dict[Tuple[int, str], float] = field(default_factory=dict)

    def reference_series(self, level: str) -> Dict[int, float]:
        return {n: t for (n, lvl), t in self.reference.items() if lvl == level}

    def predicted_series(self, level: str) -> Dict[int, float]:
        return {n: t for (n, lvl), t in self.predicted.items() if lvl == level}

    def accuracy(self, level: str) -> AccuracyReport:
        return series_accuracy(
            self.reference_series(level), self.predicted_series(level)
        )


def reference_time(nprocs: int, level: str, seed: int = 2011) -> float:
    """One reference execution: the obstacle problem run end-to-end
    under the decentralized P2PDC on the cluster platform."""
    result = run_cached(reference_spec(nprocs, level, seed))
    if not result.ok:
        raise RuntimeError(f"reference run failed: {result.reason}")
    # the paper's t_normal_execution is the application's execution
    # time (the environment prints it at the end of each execution) —
    # subtask dispatch through coordinators to results gathered.
    return result.t


def predicted_time(nprocs: int, level: str) -> float:
    """dPerf prediction for the same configuration (Fig. 6 pipeline)."""
    return run_cached(prediction_spec(nprocs, level)).t


@lru_cache(maxsize=4)
def run_stage1(config: Stage1Config = Stage1Config()) -> Stage1Result:
    result = Stage1Result(config)
    for nprocs in config.peer_counts:
        for level in config.levels:
            result.reference[(nprocs, level)] = reference_time(
                nprocs, level, config.seed
            )
            result.predicted[(nprocs, level)] = predicted_time(nprocs, level)
    return result
