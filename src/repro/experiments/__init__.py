"""Experiment runners for the paper's evaluation (shared by the
benchmarks in ``benchmarks/`` and the runnable examples)."""

from . import calibration, heterogeneous
from .stage1 import Stage1Config, Stage1Result, predicted_time, reference_time, run_stage1
from .stage2 import Stage2Config, Stage2Result, predict_on, predicted_curves, run_stage2
from .table1 import PAPER_PAIRINGS, PAPER_VERDICTS, Table1Result, run_table1

__all__ = [
    "PAPER_PAIRINGS",
    "PAPER_VERDICTS",
    "Stage1Config",
    "Stage1Result",
    "Stage2Config",
    "Stage2Result",
    "Table1Result",
    "calibration",
    "heterogeneous",
    "predict_on",
    "predicted_curves",
    "predicted_time",
    "reference_time",
    "run_stage1",
    "run_stage2",
    "run_table1",
]
