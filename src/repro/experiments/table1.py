"""Table I: equivalent computing power of P2P configurations.

The paper pairs predicted desktop-grid configurations against
predicted Grid5000 configurations:

    4  xDSL  slightly lower than  2  Grid5000
    2  LAN   slightly lower than  2  Grid5000
    4  LAN   slightly lower than  4  Grid5000
    8  LAN   same as              4  Grid5000
    32 LAN   slightly lower than  8  Grid5000

We reproduce the same pairings (classifying with our measured times)
plus a general equivalence search: for every Grid5000 size, the
smallest LAN/xDSL configuration that matches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..analysis import EquivalenceRow, compare_configs, equivalence_search
from .stage2 import Stage2Config, predicted_curves

#: (candidate platform, candidate peers, reference Grid5000 peers)
PAPER_PAIRINGS: Tuple[Tuple[str, int, int], ...] = (
    ("xdsl", 4, 2),
    ("lan", 2, 2),
    ("lan", 4, 4),
    ("lan", 8, 4),
    ("lan", 32, 8),
)

#: The verdicts printed in the paper, for side-by-side reporting.
PAPER_VERDICTS: Dict[Tuple[str, int, int], str] = {
    ("xdsl", 4, 2): "slightly lower than",
    ("lan", 2, 2): "slightly lower than",
    ("lan", 4, 4): "slightly lower than",
    ("lan", 8, 4): "same as",
    ("lan", 32, 8): "slightly lower than",
}


@dataclass
class Table1Result:
    rows: List[EquivalenceRow] = field(default_factory=list)
    paper_verdicts: List[str] = field(default_factory=list)
    lan_equivalents: Dict[int, Optional[int]] = field(default_factory=dict)
    xdsl_equivalents: Dict[int, Optional[int]] = field(default_factory=dict)

    def agreement(self) -> float:
        """Fraction of rows whose verdict matches the paper's."""
        hits = sum(
            1 for row, paper in zip(self.rows, self.paper_verdicts)
            if row.verdict == paper
        )
        return hits / len(self.rows) if self.rows else 0.0


@lru_cache(maxsize=2)
def run_table1(config: Stage2Config = Stage2Config()) -> Table1Result:
    # Table I pairs *predicted* configurations against each other (the
    # paper's verdicts are between dPerf predictions), so no reference
    # execution is needed — only the three predicted curves.
    predicted = predicted_curves(config.peer_counts, config.level)
    g5k = predicted["grid5000"]
    result = Table1Result()
    for platform, cand_n, ref_n in PAPER_PAIRINGS:
        rows = compare_configs(
            predicted[platform], g5k, platform, "Grid5000",
            [(cand_n, ref_n)],
        )
        result.rows.extend(rows)
        result.paper_verdicts.append(
            PAPER_VERDICTS[(platform, cand_n, ref_n)]
        )
    result.lan_equivalents = equivalence_search(predicted["lan"], g5k)
    result.xdsl_equivalents = equivalence_search(predicted["xdsl"], g5k)
    return result
