"""Future-work experiment (paper §V): equivalent computing power of a
homogeneous cluster in a *completely heterogeneous* P2P grid connected
over a heterogeneous network.

The paper leaves this as ongoing research; the machinery built here
supports it directly: the trace replayer rescales every computation
burst by the target host's speed (traces carry reference-machine
nanoseconds), and the multi-site platform provides the heterogeneous
network.  The one modelling caveat is inherent to halo-coupled SPMD
codes: with a uniform decomposition the *slowest selected peer* paces
every iteration, so peer selection policy matters — which is exactly
what the experiment quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..desim.rng import derive_seed
from ..net import Host
from ..platforms import PlatformSpec, build_multisite
from ..platforms.cluster import DEFAULT_NODE_SPEED
from . import calibration as C

#: Node speed range of the heterogeneous grid (GHz-class spread of a
#: 2011 desktop population), relative to the 3 GHz reference.
SPEED_RANGE = (0.5, 1.2)


@lru_cache(maxsize=4)
def heterogeneous_grid(
    n_sites: int = 8, peers_per_site: int = 8, seed: int = 2011
) -> PlatformSpec:
    """A multi-site grid whose nodes have mixed clock speeds."""
    spec = build_multisite(
        n_sites=n_sites, peers_per_site=peers_per_site, name="hetero-grid"
    )
    rng = random.Random(derive_seed(seed, "hetero-speeds"))
    for host in spec.hosts:
        factor = rng.uniform(*SPEED_RANGE)
        host.speed = DEFAULT_NODE_SPEED * factor
    spec.attrs["speed_range"] = SPEED_RANGE
    spec.attrs["seed"] = seed
    return spec


def select_hosts(
    platform: PlatformSpec, n: int, policy: str = "fastest"
) -> List[Host]:
    """Peer-selection policies over the heterogeneous pool."""
    if policy == "fastest":
        return sorted(platform.hosts, key=lambda h: -h.speed)[:n]
    if policy == "slowest":
        return sorted(platform.hosts, key=lambda h: h.speed)[:n]
    if policy == "spread":
        return C.spread_hosts(platform, n)
    raise ValueError(f"unknown selection policy {policy!r}")


def predict_heterogeneous(
    nprocs: int, level: str = "O0", policy: str = "fastest",
) -> float:
    """dPerf prediction of the obstacle instance on the hetero grid."""
    platform = heterogeneous_grid()
    traces = C.obstacle_traces(nprocs, level)
    hosts = select_hosts(platform, nprocs, policy)
    return C.obstacle_predictor().predict(
        traces, platform, hosts=hosts
    ).t_predicted


@dataclass
class HeteroResult:
    level: str
    grid_times: Dict[str, Dict[int, float]] = field(default_factory=dict)
    cluster_times: Dict[int, float] = field(default_factory=dict)
    equivalents: Dict[str, Dict[int, Optional[int]]] = field(
        default_factory=dict
    )


def run_heterogeneous(
    peer_counts: Tuple[int, ...] = (2, 4, 8, 16, 32),
    level: str = "O0",
    policies: Tuple[str, ...] = ("fastest", "spread"),
) -> HeteroResult:
    from ..analysis import equivalence_search
    from .stage2 import predict_on

    result = HeteroResult(level=level)
    result.cluster_times = {
        n: predict_on("grid5000", n, level) for n in peer_counts
    }
    for policy in policies:
        result.grid_times[policy] = {
            n: predict_heterogeneous(n, level, policy) for n in peer_counts
        }
        result.equivalents[policy] = equivalence_search(
            result.grid_times[policy], result.cluster_times
        )
    return result
