"""Future-work experiment (paper §V): equivalent computing power of a
homogeneous cluster in a *completely heterogeneous* P2P grid connected
over a heterogeneous network.

The paper leaves this as ongoing research; the machinery built here
supports it directly: the trace replayer rescales every computation
burst by the target host's speed (traces carry reference-machine
nanoseconds), and the multi-site platform provides the heterogeneous
network.  The one modelling caveat is inherent to halo-coupled SPMD
codes: with a uniform decomposition the *slowest selected peer* paces
every iteration, so peer selection policy matters — which is exactly
what the experiment quantifies.

Each prediction point is a ``predict`` scenario on the heterogeneous
multi-site platform plan; selection policy is the spec's host policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..net import Host
from ..platforms import PlatformSpec
from ..scenarios import ScenarioSpec, build_platform, pick_hosts, run_cached
from ..scenarios.registry import (
    HETERO_GRID_PLAN,
    HETERO_SPEED_RANGE,
    OBSTACLE_TARGET,
)
from ..scenarios.spec import PlatformPlan

#: Node speed range of the heterogeneous grid — the registry's
#: canonical value, re-exported for the tests and benches.
SPEED_RANGE = HETERO_SPEED_RANGE


def hetero_plan(
    n_sites: int = 8, peers_per_site: int = 8, seed: int = 2011
) -> PlatformPlan:
    """The platform plan of the heterogeneous multi-site grid (the
    registry's canonical plan, resized/reseeded as requested)."""
    return replace(HETERO_GRID_PLAN, n_sites=n_sites,
                   peers_per_site=peers_per_site, hetero_seed=seed)


@lru_cache(maxsize=4)
def heterogeneous_grid(
    n_sites: int = 8, peers_per_site: int = 8, seed: int = 2011
) -> PlatformSpec:
    """A multi-site grid whose nodes have mixed clock speeds."""
    return build_platform(hetero_plan(n_sites, peers_per_site, seed))


def select_hosts(
    platform: PlatformSpec, n: int, policy: str = "fastest"
) -> List[Host]:
    """Peer-selection policies over the heterogeneous pool."""
    return pick_hosts(platform, n, policy)


def prediction_spec(
    nprocs: int, level: str = "O0", policy: str = "fastest"
) -> ScenarioSpec:
    """The scenario behind one heterogeneous-grid prediction point."""
    return ScenarioSpec(
        name=f"hetero-{policy}-{level}-{nprocs}p", kind="predict",
        platform=hetero_plan(),
        workload=replace(OBSTACLE_TARGET, level=level),
        n_peers=nprocs, host_policy=policy,
    )


def predict_heterogeneous(
    nprocs: int, level: str = "O0", policy: str = "fastest",
) -> float:
    """dPerf prediction of the obstacle instance on the hetero grid."""
    return run_cached(prediction_spec(nprocs, level, policy)).t


@dataclass
class HeteroResult:
    level: str
    grid_times: Dict[str, Dict[int, float]] = field(default_factory=dict)
    cluster_times: Dict[int, float] = field(default_factory=dict)
    equivalents: Dict[str, Dict[int, Optional[int]]] = field(
        default_factory=dict
    )


def run_heterogeneous(
    peer_counts: Tuple[int, ...] = (2, 4, 8, 16, 32),
    level: str = "O0",
    policies: Tuple[str, ...] = ("fastest", "spread"),
) -> HeteroResult:
    from ..analysis import equivalence_search
    from .stage2 import predict_on

    result = HeteroResult(level=level)
    result.cluster_times = {
        n: predict_on("grid5000", n, level) for n in peer_counts
    }
    for policy in policies:
        result.grid_times[policy] = {
            n: predict_heterogeneous(n, level, policy) for n in peer_counts
        }
        result.equivalents[policy] = equivalence_search(
            result.grid_times[policy], result.cluster_times
        )
    return result
