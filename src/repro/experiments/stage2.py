"""Stage-2 (paper §IV-B4, Fig. 11): the same traces on xDSL and LAN.

The point of dPerf's decoupling: the traces collected once on the
reference platform are replayed on *different* platform description
files — the Daisy xDSL topology (Stage-2A) and a campus LAN
(Stage-2B) — to find what desktop-grid configuration matches the
cluster.  Peers of a desktop grid are scattered across the access
network, so hosts are picked evenly spread over the platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from . import calibration as C
from .stage1 import Stage1Config, run_stage1


@dataclass(frozen=True)
class Stage2Config:
    peer_counts: Tuple[int, ...] = C.PEER_COUNTS
    level: str = "O0"   # the paper presents Stage-2 at optimization level 0
    seed: int = 2011


@dataclass
class Stage2Result:
    config: Stage2Config
    reference: Dict[int, float] = field(default_factory=dict)
    predicted: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def series(self) -> Dict[str, Dict[int, float]]:
        out = {"reference time": self.reference}
        for platform, curve in self.predicted.items():
            out[f"dPerf prediction for {platform}"] = curve
        return out


def predict_on(platform_name: str, nprocs: int, level: str) -> float:
    """Replay the cluster-collected traces on a Stage-2 platform."""
    predictor = C.obstacle_predictor()
    traces = C.obstacle_traces(nprocs, level)
    if platform_name == "grid5000":
        platform = C.grid5000_platform()
        hosts = platform.take_hosts(nprocs)
    elif platform_name == "xdsl":
        platform = C.xdsl_platform()
        hosts = C.spread_hosts(platform, nprocs)
    elif platform_name == "lan":
        platform = C.lan_platform()
        hosts = C.spread_hosts(platform, nprocs)
    else:
        raise ValueError(f"unknown platform {platform_name!r}")
    return predictor.predict(traces, platform, hosts=hosts).t_predicted


@lru_cache(maxsize=4)
def run_stage2(config: Stage2Config = Stage2Config()) -> Stage2Result:
    result = Stage2Result(config)
    stage1 = run_stage1(
        Stage1Config(peer_counts=config.peer_counts, levels=(config.level,),
                     seed=config.seed)
    )
    result.reference = stage1.reference_series(config.level)
    for platform_name in ("grid5000", "xdsl", "lan"):
        result.predicted[platform_name] = {
            n: predict_on(platform_name, n, config.level)
            for n in config.peer_counts
        }
    return result
