"""Stage-2 (paper §IV-B4, Fig. 11): the same traces on xDSL and LAN.

The point of dPerf's decoupling: the traces collected once on the
reference platform are replayed on *different* platform description
files — the Daisy xDSL topology (Stage-2A) and a campus LAN
(Stage-2B) — to find what desktop-grid configuration matches the
cluster.  Peers of a desktop grid are scattered across the access
network, so hosts are picked evenly spread over the platform.

Every prediction point is a ``predict`` scenario executed through the
memoized runner; only the platform plan and host policy change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from dataclasses import replace

from ..scenarios import ScenarioSpec, run_cached
from ..scenarios.registry import (
    CLUSTER_PLAN,
    LAN_PLAN,
    OBSTACLE_TARGET,
    XDSL_PLAN,
)
from . import calibration as C
from .stage1 import Stage1Config, run_stage1

#: Stage-2 platform plans: name → (plan, host policy).
STAGE2_PLATFORMS = {
    "grid5000": (CLUSTER_PLAN, "pack"),
    "xdsl": (XDSL_PLAN, "spread"),
    "lan": (LAN_PLAN, "spread"),
}


@dataclass(frozen=True)
class Stage2Config:
    peer_counts: Tuple[int, ...] = C.PEER_COUNTS
    level: str = "O0"   # the paper presents Stage-2 at optimization level 0
    seed: int = 2011


@dataclass
class Stage2Result:
    config: Stage2Config
    reference: Dict[int, float] = field(default_factory=dict)
    predicted: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def series(self) -> Dict[str, Dict[int, float]]:
        out = {"reference time": self.reference}
        for platform, curve in self.predicted.items():
            out[f"dPerf prediction for {platform}"] = curve
        return out


def prediction_spec(platform_name: str, nprocs: int, level: str) -> ScenarioSpec:
    """The scenario behind one Fig. 11 / Table I prediction point."""
    try:
        plan, policy = STAGE2_PLATFORMS[platform_name]
    except KeyError:
        raise ValueError(f"unknown platform {platform_name!r}") from None
    return ScenarioSpec(
        name=f"stage2-{platform_name}-{level}-{nprocs}p", kind="predict",
        platform=plan,
        workload=replace(OBSTACLE_TARGET, level=level),
        n_peers=nprocs, host_policy=policy,
    )


def predict_on(platform_name: str, nprocs: int, level: str) -> float:
    """Replay the cluster-collected traces on a Stage-2 platform."""
    return run_cached(prediction_spec(platform_name, nprocs, level)).t


@lru_cache(maxsize=4)
def run_stage2(config: Stage2Config = Stage2Config()) -> Stage2Result:
    result = Stage2Result(config)
    stage1 = run_stage1(
        Stage1Config(peer_counts=config.peer_counts, levels=(config.level,),
                     seed=config.seed)
    )
    result.reference = stage1.reference_series(config.level)
    for platform_name in STAGE2_PLATFORMS:
        result.predicted[platform_name] = {
            n: predict_on(platform_name, n, config.level)
            for n in config.peer_counts
        }
    return result


def predicted_curves(
    peer_counts: Tuple[int, ...], level: str
) -> Dict[str, Dict[int, float]]:
    """Prediction-only Stage-2 curves (no reference executions) — what
    Table I consumes; orders of magnitude cheaper than
    :func:`run_stage2` because no full P2PDC simulation runs.

    The (platform × peer-count) grid goes through the sweep runner, so
    uncached points execute in parallel worker processes; results are
    identical to a serial run because the scenario runner is pure.
    """
    from ..scenarios import SweepRunner

    cells = [
        (platform_name, n)
        for platform_name in STAGE2_PLATFORMS
        for n in peer_counts
    ]
    specs = [prediction_spec(p, n, level) for p, n in cells]
    results = SweepRunner().run(specs)
    out: Dict[str, Dict[int, float]] = {}
    for (platform_name, n), result in zip(cells, results):
        out.setdefault(platform_name, {})[n] = result.t
    return out
