"""Calibration constants mapping the models onto the paper's scale.

Everything instance-specific lives here: the obstacle-problem size that
makes the 2-peer O0 reference land near the paper's ≈40 s (Fig. 9),
the calibration instance dPerf actually interprets, and the shared
caches that let every benchmark reuse one calibration execution.

Paper targets (Bordeplage cluster, Intel Xeon EM64T 3 GHz):

* Fig. 9 — t(2 peers, O0) ≈ 40–45 s, strong scaling to 32 peers,
  O0 far above the O1/O2/Os cluster;
* Fig. 10 — t(2 peers, O3) ≈ 14 s, prediction ≈ reference;
* Fig. 11 — xDSL ≫ LAN ≳ Grid5000 at O0.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence

from ..apps import obstacle
from ..dperf import DPerfPredictor, ScalePlan
from ..dperf.blockbench import split_by_region
from ..platforms import PlatformSpec, build_cluster, build_daisy, build_lan
from ..p2psap import Scheme
from ..p2pdc import WorkloadSpec

#: Target instance (what the paper "ran"): 2-D grid, fixed iterations.
#: n=1024 puts the 2-peer O0 reference at ≈40 s on the 3 GHz model —
#: the top of the paper's Fig. 9.
GRID_N = 1024
NIT = 400
CHECK_EVERY = 10

#: Calibration instance dPerf interprets (block benchmarking input).
CAL_N = 32
CAL_NIT = 2 * CHECK_EVERY  # 1 warm-up cycle + 1 template cycle

#: Peer counts evaluated in all figures (2^1 .. 2^5).
PEER_COUNTS = (2, 4, 8, 16, 32)
OPT_LEVELS = ("O0", "O1", "O2", "O3", "Os")

#: Reference-run timing jitter (hardware-counter noise).
REFERENCE_NOISE = 0.003


@lru_cache(maxsize=1)
def obstacle_predictor() -> DPerfPredictor:
    return DPerfPredictor(obstacle.obstacle_source(), obstacle.ENTRY)


@lru_cache(maxsize=16)
def calibration_runs(nprocs: int):
    """One instrumented execution per peer count (reused everywhere)."""
    return obstacle_predictor().execute(
        nprocs, args=obstacle.entry_args(CAL_N, CAL_NIT, CHECK_EVERY)
    )


def scale_plan(nprocs: int, n: int = GRID_N, nit: int = NIT) -> ScalePlan:
    return ScalePlan(
        env_cal=obstacle.scale_env(CAL_N, nprocs),
        env_target=obstacle.scale_env(n, nprocs),
        nit_target=nit,
        region="iter",
        cycle_len=CHECK_EVERY,
        warmup_cycles=1,
    )


@lru_cache(maxsize=64)
def obstacle_traces(nprocs: int, level: str, n: int = GRID_N, nit: int = NIT):
    """Scaled traces of the target instance at one GCC level."""
    return obstacle_predictor().traces_for(
        calibration_runs(nprocs), level, scale=scale_plan(nprocs, n, nit),
        app="obstacle", extra_meta={"n": str(n), "nit": str(nit)},
    )


def iteration_compute_seconds(nprocs: int, level: str) -> List[float]:
    """Per-rank compute seconds per iteration of the *target* instance
    (drives the reference run's compute bursts — in our universe the
    machine behaves exactly as the cost model says)."""
    traces = obstacle_traces(nprocs, level)
    return [t.total_compute_ns * 1e-9 / NIT for t in traces]


def halo_bytes(n: int = GRID_N) -> float:
    return (n + 2) * 8.0


def obstacle_workload(
    nprocs: int,
    level: str,
    scheme: Scheme = Scheme.SYNC,
    noise_frac: float = REFERENCE_NOISE,
) -> WorkloadSpec:
    """WorkloadSpec for the P2PDC reference execution of the target
    obstacle instance at one optimization level."""
    per_rank = iteration_compute_seconds(nprocs, level)

    def iteration_time(rank: int, nranks: int) -> float:
        return per_rank[min(rank, len(per_rank) - 1)]

    return WorkloadSpec(
        name=f"obstacle-{level}-{nprocs}p",
        nit=NIT,
        halo_bytes=halo_bytes(),
        iteration_time=iteration_time,
        check_every=CHECK_EVERY,
        scheme=scheme,
        noise_frac=noise_frac,
        residual=obstacle.residual_model(CAL_N),
        tol=0.0,  # fixed-iteration run, as in the paper's measurements
        result_bytes=4096,
        subtask_bytes=8192,
    )


# -- platforms ---------------------------------------------------------------

@lru_cache(maxsize=4)
def grid5000_platform(n_hosts: int = 33) -> PlatformSpec:
    # one extra host beyond the largest peer count: the submitter/server
    # side of the overlay lives on hosts too.
    return build_cluster(n_hosts)


@lru_cache(maxsize=2)
def xdsl_platform() -> PlatformSpec:
    return build_daisy()


@lru_cache(maxsize=2)
def lan_platform() -> PlatformSpec:
    return build_lan(1024)


def spread_hosts(platform: PlatformSpec, n: int) -> list:
    """Evenly spaced host selection — a desktop grid's peers are
    scattered across the access network, not packed on one DSLAM."""
    hosts = platform.hosts
    if n > len(hosts):
        raise ValueError(f"need {n} hosts, platform has {len(hosts)}")
    stride = len(hosts) // n
    return [hosts[i * stride] for i in range(n)]


def sanity_check_calibration() -> Dict[str, float]:
    """Quick numbers for tests: per-cell O0 cost and the projected
    2-peer O0 runtime."""
    traces = obstacle_traces(2, "O0")
    total_cells = (GRID_N // 2) * GRID_N * NIT
    per_cell_ns = traces[0].total_compute_ns / total_cells
    return {
        "per_cell_ns_O0": per_cell_ns,
        "t2_O0_compute_estimate": traces[0].total_compute_ns * 1e-9,
    }
