"""Calibration constants mapping the models onto the paper's scale.

Everything instance-specific lives here: the obstacle-problem size that
makes the 2-peer O0 reference land near the paper's ≈40 s (Fig. 9),
the calibration instance dPerf actually interprets, and the shared
caches that let every benchmark reuse one calibration execution.

Since the scenario engine landed, the pipeline itself (predictors,
calibration runs, trace scale-up, platform builders) lives in
:mod:`repro.scenarios.workloads` / :mod:`repro.scenarios.platforms`;
this module pins the obstacle-problem defaults on top of it, so the
experiment runners, the benchmarks, and ad-hoc scenario sweeps all
share one set of caches.

Paper targets (Bordeplage cluster, Intel Xeon EM64T 3 GHz):

* Fig. 9 — t(2 peers, O0) ≈ 40–45 s, strong scaling to 32 peers,
  O0 far above the O1/O2/Os cluster;
* Fig. 10 — t(2 peers, O3) ≈ 14 s, prediction ≈ reference;
* Fig. 11 — xDSL ≫ LAN ≳ Grid5000 at O0.
"""

from __future__ import annotations

from typing import Dict, List

from ..platforms import PlatformSpec
from ..p2psap import Scheme
from ..p2pdc import WorkloadSpec
from ..scenarios import platforms as _platforms
from ..scenarios import workloads as _workloads
from ..scenarios.registry import OBSTACLE_TARGET, PEER_COUNTS
from ..scenarios.spec import PlatformPlan, WorkloadPlan

#: Target instance (what the paper "ran"): 2-D grid, fixed iterations.
#: n=1024 puts the 2-peer O0 reference at ≈40 s on the 3 GHz model —
#: the top of the paper's Fig. 9.  The canonical plan lives in
#: ``scenarios.registry.OBSTACLE_TARGET``; these constants are views
#: of it, so experiment points and registry entries share cache keys.
GRID_N = OBSTACLE_TARGET.n
NIT = OBSTACLE_TARGET.nit
CHECK_EVERY = _workloads.CHECK_EVERY

#: Calibration instance dPerf interprets (block benchmarking input).
CAL_N = _workloads.CAL_N
CAL_NIT = 2 * CHECK_EVERY  # 1 warm-up cycle + 1 template cycle

OPT_LEVELS = ("O0", "O1", "O2", "O3", "Os")

#: Reference-run timing jitter (hardware-counter noise).
REFERENCE_NOISE = OBSTACLE_TARGET.noise_frac


def obstacle_predictor():
    """The shared dPerf predictor for the obstacle source."""
    return _workloads.predictor("obstacle")


def calibration_runs(nprocs: int):
    """One instrumented execution per peer count (reused everywhere)."""
    return _workloads.calibration_runs("obstacle", nprocs)


def scale_plan(nprocs: int, n: int = GRID_N, nit: int = NIT):
    """Block-benchmark scale-up plan for the obstacle target instance."""
    return _workloads.scale_plan("obstacle", nprocs, n, nit)


def obstacle_traces(nprocs: int, level: str, n: int = GRID_N, nit: int = NIT):
    """Scaled traces of the target instance at one GCC level."""
    return _workloads.traces("obstacle", nprocs, level, n, nit)


def iteration_compute_seconds(nprocs: int, level: str) -> List[float]:
    """Per-rank compute seconds per iteration of the *target* instance
    (drives the reference run's compute bursts — in our universe the
    machine behaves exactly as the cost model says)."""
    return _workloads.iteration_seconds("obstacle", nprocs, level, GRID_N,
                                        NIT)


def halo_bytes(n: int = GRID_N) -> float:
    """Bytes of one obstacle halo message (one ghost row)."""
    return _workloads.adapter("obstacle").halo_bytes(n)


def obstacle_workload(
    nprocs: int,
    level: str,
    scheme: Scheme = Scheme.SYNC,
    noise_frac: float = REFERENCE_NOISE,
) -> WorkloadSpec:
    """WorkloadSpec for the P2PDC reference execution of the target
    obstacle instance at one optimization level."""
    plan = WorkloadPlan(app="obstacle", n=GRID_N, nit=NIT,
                        check_every=CHECK_EVERY, level=level,
                        noise_frac=noise_frac)
    return _workloads.make_workload(plan, nprocs, scheme)


# -- platforms ---------------------------------------------------------------

def grid5000_platform(n_hosts: int = 33) -> PlatformSpec:
    # one extra host beyond the largest peer count: the submitter/server
    # side of the overlay lives on hosts too.
    return _platforms.build_platform(PlatformPlan(kind="cluster",
                                                  n_hosts=n_hosts))


def xdsl_platform() -> PlatformSpec:
    return _platforms.build_platform(PlatformPlan(kind="xdsl"))


def lan_platform() -> PlatformSpec:
    return _platforms.build_platform(PlatformPlan(kind="lan", n_hosts=1024))


def spread_hosts(platform: PlatformSpec, n: int) -> list:
    """Evenly spaced host selection — a desktop grid's peers are
    scattered across the access network, not packed on one DSLAM."""
    return _platforms.spread_hosts(platform, n)


def sanity_check_calibration() -> Dict[str, float]:
    """Quick numbers for tests: per-cell O0 cost and the projected
    2-peer O0 runtime."""
    traces = obstacle_traces(2, "O0")
    total_cells = (GRID_N // 2) * GRID_N * NIT
    per_cell_ns = traces[0].total_compute_ns / total_cells
    return {
        "per_cell_ns_O0": per_cell_ns,
        "t2_O0_compute_estimate": traces[0].total_compute_ns * 1e-9,
    }
