"""Network topology: a directed multigraph of nodes and links.

Routing is static shortest-path (by hop count, then latency), computed
with :mod:`networkx` and cached per (src, dst) pair — the platforms in
the paper are trees/rings where shortest paths are unique, and static
routing matches SimGrid's ``Full``/``Floyd`` routing modes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .links import Link
from .nodes import Host, NetNode


class Topology:
    """Container for nodes + directed links, with route computation."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.graph = nx.DiGraph()
        self._nodes: Dict[str, NetNode] = {}
        self._route_cache: Dict[Tuple[str, str], List[Link]] = {}
        self._latency_cache: Dict[Tuple[str, str], float] = {}
        #: bumped whenever links change; route consumers (the fluid
        #: engine's interned per-pair route info) key their caches on it
        self.version = 0

    # -- construction ------------------------------------------------------
    def add_node(self, node: NetNode) -> NetNode:
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self.graph.add_node(node.name)
        return node

    def add_link(
        self,
        a: NetNode,
        b: NetNode,
        bandwidth: float,
        latency: float,
        duplex: bool = True,
    ) -> Tuple[Link, Optional[Link]]:
        """Connect ``a`` and ``b``.

        Returns ``(forward, backward)`` links; ``backward`` is ``None``
        for a simplex link.  Each direction gets its own capacity
        (full-duplex semantics).
        """
        self._require(a)
        self._require(b)
        fwd = Link(f"{a.name}--{b.name}", bandwidth, latency)
        self.graph.add_edge(a.name, b.name, link=fwd)
        back: Optional[Link] = None
        if duplex:
            back = Link(f"{b.name}--{a.name}", bandwidth, latency)
            self.graph.add_edge(b.name, a.name, link=back)
        self._route_cache.clear()
        self._latency_cache.clear()
        self.version += 1
        return fwd, back

    def _require(self, node: NetNode) -> None:
        if self._nodes.get(node.name) is not node:
            raise KeyError(f"node {node.name!r} not registered in topology")

    # -- lookup -------------------------------------------------------------
    def node(self, name: str) -> NetNode:
        return self._nodes[name]

    @property
    def nodes(self) -> Iterable[NetNode]:
        return self._nodes.values()

    @property
    def hosts(self) -> List[Host]:
        """Compute endpoints in deterministic insertion order."""
        return [n for n in self._nodes.values() if isinstance(n, Host)]

    def links(self) -> List[Link]:
        return [data["link"] for _u, _v, data in self.graph.edges(data=True)]

    # -- routing --------------------------------------------------------------
    def route(self, src: NetNode, dst: NetNode) -> List[Link]:
        """Ordered directed links from ``src`` to ``dst``."""
        if src is dst:
            return []
        key = (src.name, dst.name)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        try:
            path = nx.shortest_path(self.graph, src.name, dst.name)
        except nx.NetworkXNoPath:
            raise ValueError(f"no route {src.name!r} → {dst.name!r}") from None
        links = [
            self.graph.edges[u, v]["link"] for u, v in zip(path[:-1], path[1:])
        ]
        self._route_cache[key] = links
        return links

    def route_latency(self, src: NetNode, dst: NetNode) -> float:
        key = (src.name, dst.name)
        lat = self._latency_cache.get(key)
        if lat is None:
            lat = sum(l.latency for l in self.route(src, dst))
            self._latency_cache[key] = lat
        return lat

    def route_min_bandwidth(self, src: NetNode, dst: NetNode) -> float:
        route = self.route(src, dst)
        if not route:
            return float("inf")
        return min(l.bandwidth for l in route)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Topology {self.name!r}: {len(self._nodes)} nodes,"
            f" {self.graph.number_of_edges()} directed links>"
        )
