"""Directed network links with bandwidth and latency.

A physical full-duplex cable is modelled as *two* :class:`Link`
objects, one per direction, so that simultaneous transfers in opposite
directions do not contend (the paper's platforms are all full-duplex:
"All connections are full-duplex", §IV-A4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Convenience unit constants (bytes/s and seconds).
KBPS = 1e3 / 8
MBPS = 1e6 / 8
GBPS = 1e9 / 8
US = 1e-6
MS = 1e-3


@dataclass(eq=False)
class Link:
    """One direction of a network link.

    Attributes
    ----------
    name:
        Unique identifier, conventionally ``"<a>--<b>"`` for the
        direction a→b.
    bandwidth:
        Capacity in **bytes per second**.
    latency:
        Propagation + store-and-forward delay in seconds.
    """

    name: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name!r}: bandwidth must be > 0")
        if self.latency < 0:
            raise ValueError(f"link {self.name!r}: negative latency")

    # identity hashing (eq=False keeps object.__hash__, which is what
    # the sharing solver keys its dicts by — and it is C-level fast)

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, bw={self.bandwidth / MBPS:.3g} Mbps,"
            f" lat={self.latency * 1e3:.3g} ms)"
        )


@dataclass(frozen=True)
class TcpModel:
    """Fluid-model TCP parameters (SimGrid-flavoured).

    ``bandwidth_factor`` accounts for protocol overhead (SimGrid uses
    0.92 for TCP); ``window`` caps a single flow's rate at
    ``window / (2 * route_latency)`` — the classic window/RTT ceiling,
    which is what makes high-latency xDSL paths slow even for medium
    messages.
    """

    bandwidth_factor: float = 0.92
    window: float = 4194304.0  # bytes, SimGrid's default TCP gamma

    def rate_cap(self, route_latency: float) -> float:
        """Maximum achievable rate on a route of the given one-way latency."""
        if route_latency <= 0:
            return float("inf")
        return self.window / (2.0 * route_latency)
