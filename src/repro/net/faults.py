"""Seeded network-fault injection: loss, duplication, jitter, partitions.

A :class:`FaultInjector` sits at the message-transmission boundary
(``Overlay.transport`` for the p2pdc control plane,
``p2psap.Channel`` for the data plane) and decides, per message,
whether to drop it, deliver it twice, delay it, or block it behind a
scheduled zone partition.  Every decision is a draw from a *derived*
seed stream (one per fault type), so enabling one fault never shifts
another's draws and fault schedules never perturb the churn/rejoin
streams the overlay owns — the same substream discipline the churn
planner uses.

The partition is a pure function of simulated time: while the window
``[start, start + duration)`` is open, messages between hosts whose
zones fall in different *groups* are blocked (and counted), and
intra-group traffic flows normally.  No events are scheduled for it —
an injector with nothing active has zero footprint on the agenda.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..desim.rng import derive_seed


@dataclass
class FaultStats:
    """What the injector did to the message flow (per overlay)."""

    messages_lost: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    partition_blocked: int = 0

    def as_metrics(self) -> Dict[str, float]:
        return {
            "messages_lost": float(self.messages_lost),
            "messages_duplicated": float(self.messages_duplicated),
            "messages_delayed": float(self.messages_delayed),
            "partition_blocked": float(self.partition_blocked),
        }


class FaultInjector:
    """Per-message fault decisions from seeded substreams.

    Parameters mirror ``repro.scenarios.spec.NetworkFaultPlan`` (this
    module stays spec-free so the net layer keeps its import purity):
    ``loss``/``duplication``/``jitter`` are Bernoulli probabilities,
    ``jitter_delay`` the mean of the exponential extra delay, the
    ``partition_*`` trio one scheduled zone partition, and ``zone_of``
    the host-name → zone-index map the deployment derived.
    """

    def __init__(
        self,
        sim,
        *,
        loss: float = 0.0,
        duplication: float = 0.0,
        jitter: float = 0.0,
        jitter_delay: float = 0.05,
        partition_start: float = 0.0,
        partition_duration: float = 0.0,
        partition_zones: Sequence[Sequence[int]] = (),
        zone_of: Optional[Dict[str, int]] = None,
        seed: int = 2011,
    ) -> None:
        self.sim = sim
        self.loss = loss
        self.duplication = duplication
        self.jitter = jitter
        self.jitter_delay = jitter_delay
        self.partition_start = partition_start
        self.partition_end = partition_start + partition_duration
        self.partitioned = partition_duration > 0
        self.zone_of = dict(zone_of or {})
        # zone → group id; zones in no declared group are singletons
        # (and with no groups declared, every zone is its own island)
        self._group: Dict[int, int] = {}
        for gid, group in enumerate(partition_zones):
            for zone in group:
                self._group[int(zone)] = gid
        self.stats = FaultStats()
        # one independent stream per fault type: sweeping one
        # probability never shifts another fault's draws
        self._loss_rng = random.Random(derive_seed(seed, "fault-loss"))
        self._dup_rng = random.Random(derive_seed(seed, "fault-dup"))
        self._jitter_rng = random.Random(derive_seed(seed, "fault-jitter"))

    # -- partition ----------------------------------------------------------
    def _group_of(self, host_name: str) -> Tuple[int, int]:
        """(group id, zone) — ungrouped zones are singleton groups,
        encoded as (-1, zone) so two of them never compare equal."""
        zone = self.zone_of.get(host_name, -1)
        gid = self._group.get(zone)
        return (gid, 0) if gid is not None else (-1, zone)

    def blocked(self, src_host, dst_host) -> bool:
        """Whether the partition window currently severs this pair."""
        if not self.partitioned:
            return False
        now = self.sim.now
        if not self.partition_start <= now < self.partition_end:
            return False
        if self._group_of(src_host.name) == self._group_of(dst_host.name):
            return False
        self.stats.partition_blocked += 1
        return True

    # -- per-message draws --------------------------------------------------
    def drop(self) -> bool:
        """Whether this message is lost in flight (counted)."""
        if self.loss <= 0 or self._loss_rng.random() >= self.loss:
            return False
        self.stats.messages_lost += 1
        return True

    def duplicate(self) -> bool:
        """Whether a second copy is delivered (counted)."""
        if (self.duplication <= 0
                or self._dup_rng.random() >= self.duplication):
            return False
        self.stats.messages_duplicated += 1
        return True

    def delay(self) -> float:
        """Extra delivery delay in seconds (0.0 = undisturbed)."""
        if self.jitter <= 0 or self._jitter_rng.random() >= self.jitter:
            return 0.0
        self.stats.messages_delayed += 1
        return self._jitter_rng.expovariate(1.0 / self.jitter_delay)
