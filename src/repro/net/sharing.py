"""Max-min fair bandwidth allocation (progressive filling).

Given a set of flows, each crossing an ordered list of directed links
and optionally capped at a per-flow maximum rate (TCP window / NIC),
compute the max-min fair rate vector:

* no link carries more than its capacity;
* every flow is *bottlenecked*: it is either at its rate cap, or it
  crosses some saturated link on which no other flow gets more.

This is the sharing model used by SimGrid's fluid network engine and
is what dPerf relies on for communication-time estimation.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Sequence

from .links import Link

FlowId = Hashable


def maxmin_allocation(
    flow_routes: Mapping[FlowId, Sequence[Link]],
    rate_caps: Mapping[FlowId, float] | None = None,
    bandwidth_factor: float = 1.0,
) -> Dict[FlowId, float]:
    """Return the max-min fair rate (bytes/s) for every flow.

    ``bandwidth_factor`` scales every link capacity (protocol
    efficiency, e.g. 0.92 for TCP).  Flows with an empty route (same
    host) get ``inf`` — the caller treats those as latency-only.
    """
    caps: Dict[FlowId, float] = dict(rate_caps or {})
    allocation: Dict[FlowId, float] = {}

    remaining_cap: Dict[Link, float] = {}
    link_flows: Dict[Link, List[FlowId]] = {}
    # live count of unassigned flows per link, maintained incrementally
    # so each filling round scans links once instead of rescanning every
    # link's flow list (the dominant cost on large platforms)
    unassigned_n: Dict[Link, int] = {}
    unassigned: Dict[FlowId, Sequence[Link]] = {}

    for fid, route in flow_routes.items():
        if not route:
            allocation[fid] = math.inf
            continue
        unassigned[fid] = route
        for link in route:
            if link not in remaining_cap:
                remaining_cap[link] = link.bandwidth * bandwidth_factor
                link_flows[link] = []
                unassigned_n[link] = 0
            link_flows[link].append(fid)
            unassigned_n[link] += 1

    def freeze(fid: FlowId, rate: float) -> None:
        allocation[fid] = rate
        for link in unassigned[fid]:
            remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
            unassigned_n[link] -= 1
        del unassigned[fid]

    # Progressive filling: repeatedly find the tightest constraint —
    # either a link's fair share or a flow's own cap — freeze the flows
    # it binds, and subtract their rates from the links they cross.
    while unassigned:
        bottleneck_link: Link | None = None
        bottleneck_share = math.inf
        for link, n in unassigned_n.items():
            if n == 0:
                continue
            share = remaining_cap[link] / n
            if share < bottleneck_share - 1e-15:
                bottleneck_share = share
                bottleneck_link = link

        # Tightest flow cap below the link bottleneck?
        cap_flow: FlowId | None = None
        cap_rate = bottleneck_share
        for fid in unassigned:
            c = caps.get(fid, math.inf)
            if c < cap_rate - 1e-15:
                cap_rate = c
                cap_flow = fid

        if cap_flow is not None:
            # Freeze the single capped flow at its cap.
            freeze(cap_flow, max(0.0, cap_rate))
            continue

        if bottleneck_link is None:  # pragma: no cover - defensive
            for fid in list(unassigned):
                allocation[fid] = math.inf
            break

        rate = max(0.0, bottleneck_share)
        bound = [f for f in link_flows[bottleneck_link] if f in unassigned]
        for fid in bound:
            freeze(fid, rate)

    return allocation


def validate_allocation(
    flow_routes: Mapping[FlowId, Sequence[Link]],
    allocation: Mapping[FlowId, float],
    bandwidth_factor: float = 1.0,
    tol: float = 1e-6,
) -> None:
    """Raise ``AssertionError`` if the allocation oversubscribes a link.

    Used by property-based tests and available for debugging.
    """
    load: Dict[Link, float] = {}
    for fid, route in flow_routes.items():
        rate = allocation[fid]
        if math.isinf(rate):
            continue
        for link in route:
            load[link] = load.get(link, 0.0) + rate
    for link, used in load.items():
        cap = link.bandwidth * bandwidth_factor
        if used > cap * (1 + tol):
            raise AssertionError(
                f"link {link.name} oversubscribed: {used:.6g} > {cap:.6g}"
            )
