"""Max-min fair bandwidth allocation (progressive filling).

Given a set of flows, each crossing an ordered list of directed links
and optionally capped at a per-flow maximum rate (TCP window / NIC),
compute the max-min fair rate vector:

* no link carries more than its capacity;
* every flow is *bottlenecked*: it is either at its rate cap, or it
  crosses some saturated link on which no other flow gets more.

This is the sharing model used by SimGrid's fluid network engine and
is what dPerf relies on for communication-time estimation.

Two entry points:

* :func:`maxmin_allocation` — the classic per-flow interface (one
  route per flow id), used by the tests and by callers that do not
  batch.
* :func:`maxmin_grouped` — the replay hot path.  Flows with an
  *identical* (route, rate-cap) pair — interned per (src, dst) by the
  fluid engine — are solved as one *class* with a multiplicity, so the
  solver's work scales with the number of distinct routes in the
  active set, not the number of flows.  By symmetry every member of a
  class receives the same max-min rate, so the grouped solution equals
  the per-flow one.

Both run the same progressive-filling core, which freezes *batches*
per round: every capped class whose cap is at or below the current
bottleneck share freezes in one pass (freezing a flow at a rate no
larger than any crossed link's fair share can only raise the remaining
shares, so ascending-cap batch freezing is sound), then the bottleneck
link freezes all classes crossing it.  The pre-optimization solver
froze one capped flow per round, which made window/RTT-capped
platforms (xDSL) pay one full link scan per flow per reshare.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from .links import Link

FlowId = Hashable


def maxmin_grouped(
    class_routes: Mapping[FlowId, Sequence[Link]],
    class_caps: Mapping[FlowId, float] | None = None,
    class_sizes: Mapping[FlowId, int] | None = None,
    bandwidth_factor: float = 1.0,
) -> Dict[FlowId, float]:
    """Max-min fair *per-flow* rate for each class of identical flows.

    ``class_sizes[cid]`` flows share the route ``class_routes[cid]``
    and the optional per-flow cap ``class_caps[cid]``; the returned
    rate is what **each** member of the class receives.  A missing
    size means 1.  Classes with an empty route get ``inf`` (same-host;
    the caller treats those as latency-only).
    """
    caps = class_caps or {}
    sizes = class_sizes or {}
    allocation: Dict[FlowId, float] = {}

    # Constraint reduction: fold each flow's narrowest-link bandwidth
    # into its rate cap (a flow alone can never exceed it), then drop
    # every link whose flows cannot collectively reach its capacity
    # even at those ceilings — such a link never binds, whatever the
    # allocation.  On the paper's platforms this prunes the entire
    # backbone (a 100 Gbps core link carrying a few MB/s of last-mile
    # flows is not a constraint), leaving a residual problem of a
    # handful of access links with one or two flows each.
    eff_cap: Dict[FlowId, float] = {}
    ceiling_load: Dict[Link, float] = {}
    for cid, route in class_routes.items():
        if not route:
            allocation[cid] = math.inf
            continue
        cap = min(
            caps.get(cid, math.inf),
            min(link.bandwidth for link in route) * bandwidth_factor,
        )
        eff_cap[cid] = cap
        total = cap * sizes.get(cid, 1)
        for link in route:
            ceiling_load[link] = ceiling_load.get(link, 0.0) + total
    binding = {
        link
        for link, load in ceiling_load.items()
        if load > link.bandwidth * bandwidth_factor * (1 + BINDING_EPS)
    }
    if not binding:
        # No link can saturate: every flow runs at its ceiling.
        allocation.update(eff_cap)
        return allocation

    residual_routes: Dict[FlowId, List[Link]] = {}
    for cid, route in class_routes.items():
        if cid in allocation:  # empty route, handled above
            continue
        constrained = [link for link in route if link in binding]
        if not constrained:
            # every crossed link was pruned: the cap is the binding
            # constraint
            allocation[cid] = eff_cap[cid]
            continue
        residual_routes[cid] = constrained
    allocation.update(
        progressive_fill(
            residual_routes,
            {cid: eff_cap[cid] for cid in residual_routes},
            sizes,
            bandwidth_factor,
        )
    )
    return allocation


#: Relative slack on the "can this link ever saturate" test; shared by
#: the stateless solver and the fluid engine's incremental bookkeeping
#: so both reduce to the same residual problem.
BINDING_EPS = 1e-9


def progressive_fill(
    class_routes: Mapping[FlowId, Sequence[Link]],
    class_caps: Mapping[FlowId, float],
    class_sizes: Mapping[FlowId, int] | None = None,
    bandwidth_factor: float = 1.0,
) -> Dict[FlowId, float]:
    """Progressive filling on an already-reduced constraint set.

    Every class must have a non-empty route and a finite per-flow cap
    (callers fold the narrowest-link bandwidth into the cap).  Freezes
    *batches* per round: every capped class at or below the round's
    bottleneck share freezes in one ascending-cap pass (each freeze
    only raises remaining shares, so the whole batch stays valid),
    then the bottleneck link freezes all classes crossing it.
    """
    sizes = class_sizes or {}
    if all(len(route) == 1 for route in class_routes.values()):
        # One constrained link per class (the replay steady state:
        # each halo pair shares one access link, a collective splits
        # the root's link): links are independent, water-fill each.
        return _fill_single_links(
            class_routes, class_caps, sizes, bandwidth_factor
        )
    allocation: Dict[FlowId, float] = {}
    remaining_cap: Dict[Link, float] = {}
    link_classes: Dict[Link, List[FlowId]] = {}
    # live count of unassigned *flows* per link, maintained
    # incrementally so each filling round scans links once
    unassigned_n: Dict[Link, int] = {}
    unassigned: Dict[FlowId, Tuple[Sequence[Link], int]] = {}
    cap_heap: List[Tuple[float, int, FlowId]] = []

    for seq, (cid, route) in enumerate(class_routes.items()):
        m = sizes.get(cid, 1)
        unassigned[cid] = (route, m)
        cap_heap.append((class_caps[cid], seq, cid))
        for link in route:
            if link not in remaining_cap:
                remaining_cap[link] = link.bandwidth * bandwidth_factor
                link_classes[link] = []
                unassigned_n[link] = 0
            link_classes[link].append(cid)
            unassigned_n[link] += m
    heapq.heapify(cap_heap)

    def freeze(cid: FlowId, rate: float) -> None:
        allocation[cid] = rate
        route, m = unassigned.pop(cid)
        total = rate * m
        for link in route:
            left = remaining_cap[link] - total
            remaining_cap[link] = left if left > 0.0 else 0.0
            unassigned_n[link] -= m

    while unassigned:
        bottleneck_link: Link | None = None
        bottleneck_share = math.inf
        for link, n in unassigned_n.items():
            if n == 0:
                continue
            share = remaining_cap[link] / n
            if share < bottleneck_share - 1e-15:
                bottleneck_share = share
                bottleneck_link = link

        froze_caps = False
        while cap_heap and cap_heap[0][0] <= bottleneck_share + 1e-15:
            cap, _seq, cid = heapq.heappop(cap_heap)
            if cid in unassigned:
                freeze(cid, max(0.0, cap))
                froze_caps = True
        if froze_caps:
            continue

        if bottleneck_link is None:  # pragma: no cover - defensive
            for cid in list(unassigned):
                allocation[cid] = class_caps[cid]
            break

        rate = max(0.0, bottleneck_share)
        bound = [c for c in link_classes[bottleneck_link] if c in unassigned]
        for cid in bound:
            freeze(cid, rate)

    return allocation


def _fill_single_links(
    class_routes: Mapping[FlowId, Sequence[Link]],
    class_caps: Mapping[FlowId, float],
    sizes: Mapping[FlowId, int],
    bandwidth_factor: float,
) -> Dict[FlowId, float]:
    """Water-fill independent single-link groups (ascending cap order:
    a cap at or below the even share freezes, the rest split what is
    left equally)."""
    allocation: Dict[FlowId, float] = {}
    by_link: Dict[Link, List[FlowId]] = {}
    for cid, route in class_routes.items():
        by_link.setdefault(route[0], []).append(cid)
    for link, cids in by_link.items():
        remaining = link.bandwidth * bandwidth_factor
        n = sum(sizes.get(c, 1) for c in cids)
        order = sorted(cids, key=lambda c: class_caps[c]) \
            if len(cids) > 1 else cids
        for i, cid in enumerate(order):
            share = remaining / n
            cap = class_caps[cid]
            m = sizes.get(cid, 1)
            if cap <= share + 1e-15:
                allocation[cid] = max(0.0, cap)
                remaining = max(0.0, remaining - cap * m)
                n -= m
            else:
                # sorted: every remaining cap exceeds the even share —
                # equal split of what is left
                rate = max(0.0, share)
                for other in order[i:]:
                    allocation[other] = rate
                break
    return allocation


def maxmin_allocation(
    flow_routes: Mapping[FlowId, Sequence[Link]],
    rate_caps: Mapping[FlowId, float] | None = None,
    bandwidth_factor: float = 1.0,
) -> Dict[FlowId, float]:
    """Return the max-min fair rate (bytes/s) for every flow.

    ``bandwidth_factor`` scales every link capacity (protocol
    efficiency, e.g. 0.92 for TCP).  Flows with an empty route (same
    host) get ``inf`` — the caller treats those as latency-only.
    """
    return maxmin_grouped(
        flow_routes, class_caps=rate_caps, bandwidth_factor=bandwidth_factor
    )


def validate_allocation(
    flow_routes: Mapping[FlowId, Sequence[Link]],
    allocation: Mapping[FlowId, float],
    bandwidth_factor: float = 1.0,
    tol: float = 1e-6,
) -> None:
    """Raise ``AssertionError`` if the allocation oversubscribes a link.

    Used by property-based tests and available for debugging.
    """
    load: Dict[Link, float] = {}
    for fid, route in flow_routes.items():
        rate = allocation[fid]
        if math.isinf(rate):
            continue
        for link in route:
            load[link] = load.get(link, 0.0) + rate
    for link, used in load.items():
        cap = link.bandwidth * bandwidth_factor
        if used > cap * (1 + tol):
            raise AssertionError(
                f"link {link.name} oversubscribed: {used:.6g} > {cap:.6g}"
            )
