"""Network endpoints and interior elements.

Hosts carry a compute speed (flop/s) used by the replay engine to turn
"compute N flops" trace records into simulated durations; routers and
DSLAMs are pure forwarding elements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(eq=False)
class NetNode:
    name: str

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass(eq=False, repr=False)
class Host(NetNode):
    """A compute endpoint.

    ``speed`` is in flop/s.  The paper's nodes are Intel Xeon EM64T
    3 GHz; the calibrated speed for the obstacle-problem kernel lives
    in :mod:`repro.experiments.calibration`, not here.
    """

    speed: float = 3e9

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"host {self.name!r}: speed must be > 0")

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("negative flops")
        return flops / self.speed


@dataclass(eq=False, repr=False)
class Router(NetNode):
    """Interior forwarding element (no compute)."""


@dataclass(eq=False, repr=False)
class Dslam(Router):
    """Digital Subscriber Line Access Multiplexer (Stage-2A, Fig. 8)."""
