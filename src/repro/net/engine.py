"""The fluid network engine: flows over a topology on the desim clock.

A transfer is modelled in two phases, as in SimGrid's LV08 model:

1. a *latency phase* — the sum of link latencies along the route;
2. a *data phase* — the flow joins the active set and receives a
   max-min fair share of every link it crosses; shares are recomputed
   whenever any flow starts or finishes.

The engine exposes one call, :meth:`FluidNetwork.send`, returning a
signal that fires when the last byte arrives.

Two hot-path optimizations keep large replays cheap (see DESIGN.md,
"Replay hot path"):

* **Route-set interning** — the (route, latency, window/RTT cap)
  triple of each (src, dst) pair is computed once and shared by every
  flow on that pair, so the solver can group identical flows into one
  class with a multiplicity.
* **Event-batched reshare** — flow arrivals/departures within one
  simulated instant trigger a single max-min recomputation at the end
  of the instant (collective operations start and finish many flows
  at the same time), instead of one per change.  No simulated time
  passes inside an instant, so the batched rates equal the rates the
  last of the per-change reshares would have produced.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..desim import Signal, Simulator
from ..desim.simulator import ScheduledCall
from .links import Link, TcpModel
from .nodes import Host, NetNode
from .sharing import BINDING_EPS, progressive_fill
from .topology import Topology


@dataclass(frozen=True)
class TransferInfo:
    """Completion record handed to the sender's done-signal."""

    src: str
    dst: str
    size: float
    start: float
    end: float
    tag: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class _RouteInfo:
    """Interned per-(src, dst) route data shared by every flow on the
    pair: the link list, its latency sum, the TCP window/RTT rate cap,
    and the flow's *ceiling* (cap folded with the narrowest link — the
    most a single flow on this pair can ever receive).  Identity
    doubles as the solver's class key — flows holding the same
    ``_RouteInfo`` are exchangeable."""

    __slots__ = ("route", "latency", "cap", "ceiling")

    def __init__(self, route, latency: float, cap: float,
                 ceiling: float) -> None:
        self.route = route
        self.latency = latency
        self.cap = cap
        self.ceiling = ceiling


class _Flow:
    __slots__ = (
        "fid",
        "src",
        "dst",
        "size",
        "remaining",
        "info",
        "done",
        "rate",
        "start",
        "tag",
        "completion",
    )

    def __init__(self, fid, src, dst, size, info, done, start, tag):
        self.fid = fid
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.info = info
        self.done = done
        self.rate = 0.0
        self.start = start
        self.tag = tag
        self.completion: Optional[ScheduledCall] = None

    @property
    def route(self):
        return self.info.route


class FluidNetwork:
    """Flow-level network simulation bound to a :class:`Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tcp: TcpModel = TcpModel(),
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.tcp = tcp
        self._active: Dict[int, _Flow] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        self._routes: Dict[Tuple[str, str], _RouteInfo] = {}
        self._routes_version = topology.version
        self._reshare_pending = False
        # Incremental constraint bookkeeping: per-link sum of active
        # flows' ceilings, per-link active flows, and the set of links
        # that could saturate at those ceilings.  Maintained per
        # transfer so a reshare only solves the binding residual.
        self._ceiling_load: Dict[Link, float] = {}
        self._link_flows: Dict[Link, Dict[int, _Flow]] = {}
        self._binding: set = set()
        # cumulative statistics
        self.bytes_delivered = 0.0
        self.transfers_completed = 0
        self.reshare_count = 0

    # -- public API ----------------------------------------------------------
    def send(
        self,
        src: NetNode,
        dst: NetNode,
        nbytes: float,
        tag: Optional[str] = None,
    ) -> Signal:
        """Start a transfer; returns a signal succeeding with TransferInfo."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        fid = next(self._ids)
        done = Signal(f"xfer:{src.name}->{dst.name}#{fid}")
        info = self._route_info(src, dst)
        flow = _Flow(fid, src, dst, nbytes, info, done, self.sim.now, tag)
        # Phase 1: latency, then the flow starts consuming bandwidth.
        self.sim.schedule(info.latency, self._activate, flow)
        return done

    def _route_info(self, src: NetNode, dst: NetNode) -> _RouteInfo:
        """The interned (route, latency, rate-cap) triple of a pair.

        Keyed on the topology's link version: adding a link after the
        first send invalidates the intern cache, so later transfers see
        the new routes (in-flight flows keep the route they started
        on, exactly as the per-send lookup behaved)."""
        if self._routes_version != self.topology.version:
            self._routes.clear()
            self._routes_version = self.topology.version
        key = (src.name, dst.name)
        info = self._routes.get(key)
        if info is None:
            route = tuple(self.topology.route(src, dst))
            latency = sum(l.latency for l in route)
            cap = self.tcp.rate_cap(latency)
            ceiling = cap
            if route:
                ceiling = min(
                    cap,
                    min(l.bandwidth for l in route)
                    * self.tcp.bandwidth_factor,
                )
            info = _RouteInfo(route, latency, cap, ceiling)
            self._routes[key] = info
        return info

    def transfer_time_estimate(
        self, src: NetNode, dst: NetNode, nbytes: float
    ) -> float:
        """Uncontended analytic estimate: latency + size / ceiling.

        Used by P2PDC actors for quick decisions (never for results);
        rides the interned per-pair route info.
        """
        info = self._route_info(src, dst)
        if not info.route:
            return 0.0
        return info.latency + nbytes / info.ceiling

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    # -- engine internals ------------------------------------------------------
    def _activate(self, flow: _Flow) -> None:
        if not flow.route or flow.remaining <= 0.0:
            # Same-host or zero-byte message: latency-only.
            self._finish(flow)
            return
        self._advance_progress()
        self._active[flow.fid] = flow
        self._track(flow)
        # Uncontended arrival: if no crossed link can saturate, the
        # flow runs at its ceiling and no other flow's constraints
        # moved — skip the solver entirely (the dominant case on
        # fat-link platforms, and the first flow of every pair on
        # access-bottlenecked ones).
        binding = self._binding
        if binding and not binding.isdisjoint(flow.info.route):
            self._request_reshare()
        else:
            self._set_rate(flow, flow.info.ceiling)

    def _set_rate(self, flow: _Flow, rate: float) -> None:
        if (flow.completion is not None
                and not flow.completion.cancelled):
            if rate == flow.rate:
                return
            flow.completion.cancel()
        flow.rate = rate
        if rate <= 0.0:
            flow.completion = None  # starved; will reshare on next change
            return
        eta = flow.remaining / rate if math.isfinite(rate) else 0.0
        flow.completion = self.sim.schedule(eta, self._complete, flow)

    def _track(self, flow: _Flow) -> None:
        ceiling = flow.info.ceiling
        factor = self.tcp.bandwidth_factor
        for link in flow.info.route:
            load = self._ceiling_load.get(link, 0.0) + ceiling
            self._ceiling_load[link] = load
            self._link_flows.setdefault(link, {})[flow.fid] = flow
            if load > link.bandwidth * factor * (1 + BINDING_EPS):
                self._binding.add(link)

    def _untrack(self, flow: _Flow) -> None:
        ceiling = flow.info.ceiling
        factor = self.tcp.bandwidth_factor
        for link in flow.info.route:
            flows = self._link_flows[link]
            del flows[flow.fid]
            if not flows:
                # reset exactly: idle links shed accumulated float drift
                del self._link_flows[link]
                del self._ceiling_load[link]
                self._binding.discard(link)
                continue
            load = self._ceiling_load[link] - ceiling
            self._ceiling_load[link] = load
            if load <= link.bandwidth * factor * (1 + BINDING_EPS):
                self._binding.discard(link)

    def _advance_progress(self) -> None:
        """Account bytes moved since the last rate change."""
        dt = self.sim.now - self._last_update
        if dt > 0.0:
            for flow in self._active.values():
                if math.isfinite(flow.rate):
                    flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
                else:
                    flow.remaining = 0.0
        self._last_update = self.sim.now

    def _request_reshare(self) -> None:
        """Batch rate recomputation to the end of the current instant.

        Collectives start/finish many flows at the same simulated time;
        one zero-delay event coalesces all of them into a single solver
        call.  Rates only matter once time advances, so deferring within
        the instant is exact.
        """
        if not self._reshare_pending:
            self._reshare_pending = True
            self.sim.schedule(0.0, self._run_reshare)

    def _run_reshare(self) -> None:
        self._reshare_pending = False
        if not self._active:
            return
        self._advance_progress()  # no-op unless a caller skipped it
        self.reshare_count += 1
        # Solve only the *residual* problem: flows crossing a link that
        # could saturate at current ceilings.  Everything else runs at
        # its interned ceiling — on access-bottlenecked platforms the
        # backbone never enters the solver at all.  Residual flows are
        # grouped by interned route class: identical (route, cap) flows
        # are exchangeable, so the solver sees one entry with a
        # multiplicity instead of one entry per flow.
        binding = self._binding
        alloc: Dict[int, float] = {}
        if binding:
            # Iterate the (insertion-ordered) active dict, not the
            # binding set: solver input order must be deterministic so
            # reruns are byte-identical.
            classes: Dict[int, List[_Flow]] = {}
            routes: Dict[int, List[Link]] = {}
            caps: Dict[int, float] = {}
            for flow in self._active.values():
                info = flow.info
                cid = id(info)
                bucket = classes.get(cid)
                if bucket is not None:
                    bucket.append(flow)
                    continue
                if binding.isdisjoint(info.route):
                    continue
                constrained = [l for l in info.route if l in binding]
                classes[cid] = [flow]
                routes[cid] = constrained
                caps[cid] = info.ceiling
            rates = progressive_fill(
                routes,
                caps,
                {cid: len(flows) for cid, flows in classes.items()},
                bandwidth_factor=self.tcp.bandwidth_factor,
            )
            for cid, flows in classes.items():
                rate = rates[cid]
                for flow in flows:
                    alloc[flow.fid] = rate
        for flow in self._active.values():
            # rate-unchanged flows keep their scheduled completion —
            # _set_rate skips the heap churn (flows on disjoint links
            # are the common case in halo phases)
            self._set_rate(flow, alloc.get(flow.fid, flow.info.ceiling))

    def _complete(self, flow: _Flow) -> None:
        self._advance_progress()
        flow.remaining = 0.0
        del self._active[flow.fid]
        # Departure from all-slack links frees capacity nobody was
        # contending for: remaining rates are unaffected, skip the
        # solver (mirror of the uncontended-arrival case).
        binding = self._binding
        contended = bool(binding) and not binding.isdisjoint(
            flow.info.route
        )
        self._untrack(flow)
        self._finish(flow)
        if contended and self._active:
            self._request_reshare()

    def _finish(self, flow: _Flow) -> None:
        self.bytes_delivered += flow.size
        self.transfers_completed += 1
        flow.done.succeed(
            TransferInfo(
                src=flow.src.name,
                dst=flow.dst.name,
                size=flow.size,
                start=flow.start,
                end=self.sim.now,
                tag=flow.tag,
            )
        )
