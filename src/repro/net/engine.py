"""The fluid network engine: flows over a topology on the desim clock.

A transfer is modelled in two phases, as in SimGrid's LV08 model:

1. a *latency phase* — the sum of link latencies along the route;
2. a *data phase* — the flow joins the active set and receives a
   max-min fair share of every link it crosses; shares are recomputed
   whenever any flow starts or finishes.

The engine exposes one call, :meth:`FluidNetwork.send`, returning a
signal that fires when the last byte arrives.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..desim import Signal, Simulator
from ..desim.simulator import ScheduledCall
from .links import Link, TcpModel
from .nodes import Host, NetNode
from .sharing import maxmin_allocation
from .topology import Topology


@dataclass(frozen=True)
class TransferInfo:
    """Completion record handed to the sender's done-signal."""

    src: str
    dst: str
    size: float
    start: float
    end: float
    tag: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class _Flow:
    __slots__ = (
        "fid",
        "src",
        "dst",
        "size",
        "remaining",
        "route",
        "latency",
        "done",
        "rate",
        "start",
        "tag",
        "completion",
    )

    def __init__(self, fid, src, dst, size, route, latency, done, start, tag):
        self.fid = fid
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.route = route
        self.latency = latency
        self.done = done
        self.rate = 0.0
        self.start = start
        self.tag = tag
        self.completion: Optional[ScheduledCall] = None


class FluidNetwork:
    """Flow-level network simulation bound to a :class:`Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tcp: TcpModel = TcpModel(),
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.tcp = tcp
        self._active: Dict[int, _Flow] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        # cumulative statistics
        self.bytes_delivered = 0.0
        self.transfers_completed = 0
        self.reshare_count = 0

    # -- public API ----------------------------------------------------------
    def send(
        self,
        src: NetNode,
        dst: NetNode,
        nbytes: float,
        tag: Optional[str] = None,
    ) -> Signal:
        """Start a transfer; returns a signal succeeding with TransferInfo."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        fid = next(self._ids)
        done = Signal(f"xfer:{src.name}->{dst.name}#{fid}")
        route = self.topology.route(src, dst)
        latency = sum(l.latency for l in route)
        flow = _Flow(fid, src, dst, nbytes, route, latency, done, self.sim.now, tag)
        # Phase 1: latency, then the flow starts consuming bandwidth.
        self.sim.schedule(latency, self._activate, flow)
        return done

    def transfer_time_estimate(
        self, src: NetNode, dst: NetNode, nbytes: float
    ) -> float:
        """Uncontended analytic estimate: latency + size / min-capacity.

        Used by P2PDC actors for quick decisions (never for results).
        """
        route = self.topology.route(src, dst)
        if not route:
            return 0.0
        latency = sum(l.latency for l in route)
        cap = min(l.bandwidth for l in route) * self.tcp.bandwidth_factor
        cap = min(cap, self.tcp.rate_cap(latency))
        return latency + nbytes / cap

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    # -- engine internals ------------------------------------------------------
    def _activate(self, flow: _Flow) -> None:
        if not flow.route or flow.remaining <= 0.0:
            # Same-host or zero-byte message: latency-only.
            self._finish(flow)
            return
        self._advance_progress()
        self._active[flow.fid] = flow
        self._reshare()

    def _advance_progress(self) -> None:
        """Account bytes moved since the last rate change."""
        dt = self.sim.now - self._last_update
        if dt > 0.0:
            for flow in self._active.values():
                if math.isfinite(flow.rate):
                    flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
                else:
                    flow.remaining = 0.0
        self._last_update = self.sim.now

    def _reshare(self) -> None:
        self.reshare_count += 1
        routes = {f.fid: f.route for f in self._active.values()}
        caps = {
            f.fid: self.tcp.rate_cap(f.latency) for f in self._active.values()
        }
        alloc = maxmin_allocation(
            routes, caps, bandwidth_factor=self.tcp.bandwidth_factor
        )
        for flow in self._active.values():
            new_rate = alloc[flow.fid]
            if flow.completion is not None and not flow.completion.cancelled:
                if new_rate == flow.rate:
                    # unchanged rate: the previously scheduled completion
                    # time is still exact — skip the heap churn (flows on
                    # disjoint links are the common case in halo phases)
                    continue
                flow.completion.cancel()
            flow.rate = new_rate
            if flow.rate <= 0.0:
                flow.completion = None  # starved; will reshare on next change
                continue
            eta = flow.remaining / flow.rate if math.isfinite(flow.rate) else 0.0
            flow.completion = self.sim.schedule(eta, self._complete, flow)

    def _complete(self, flow: _Flow) -> None:
        self._advance_progress()
        flow.remaining = 0.0
        del self._active[flow.fid]
        self._finish(flow)
        if self._active:
            self._reshare()

    def _finish(self, flow: _Flow) -> None:
        self.bytes_delivered += flow.size
        self.transfers_completed += 1
        flow.done.succeed(
            TransferInfo(
                src=flow.src.name,
                dst=flow.dst.name,
                size=flow.size,
                start=flow.start,
                end=self.sim.now,
                tag=flow.tag,
            )
        )
