"""The fluid network engine: flows over a topology on the desim clock.

A transfer is modelled in two phases, as in SimGrid's LV08 model:

1. a *latency phase* — the sum of link latencies along the route;
2. a *data phase* — the flow joins the active set and receives a
   max-min fair share of every link it crosses; shares are recomputed
   whenever any flow starts or finishes.

The engine exposes one call, :meth:`FluidNetwork.send`, returning a
signal that fires when the last byte arrives.

Two hot-path optimizations keep large replays cheap (see DESIGN.md,
"Replay hot path"):

* **Route-set interning** — the (route, latency, window/RTT cap)
  triple of each (src, dst) pair is computed once and shared by every
  flow on that pair, so the solver can group identical flows into one
  class with a multiplicity.
* **Event-batched reshare** — flow arrivals/departures within one
  simulated instant trigger a single max-min recomputation at the end
  of the instant (collective operations start and finish many flows
  at the same time), instead of one per change.  No simulated time
  passes inside an instant, so the batched rates equal the rates the
  last of the per-change reshares would have produced.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..desim import Signal, Simulator
from ..desim.simulator import ScheduledCall
from .links import Link, TcpModel
from .nodes import Host, NetNode
from .sharing import BINDING_EPS, progressive_fill
from .topology import Topology


@dataclass(frozen=True)
class TransferInfo:
    """Completion record handed to the sender's done-signal."""

    src: str
    dst: str
    size: float
    start: float
    end: float
    tag: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class _RouteInfo:
    """Interned per-(src, dst) route data shared by every flow on the
    pair: the link list, its latency sum, the TCP window/RTT rate cap,
    and the flow's *ceiling* (cap folded with the narrowest link — the
    most a single flow on this pair can ever receive).  Identity
    doubles as the solver's class key — flows holding the same
    ``_RouteInfo`` are exchangeable."""

    __slots__ = ("route", "latency", "cap", "ceiling", "thresholds")

    def __init__(self, route, latency: float, cap: float,
                 ceiling: float, thresholds: tuple) -> None:
        self.route = route
        self.latency = latency
        self.cap = cap
        self.ceiling = ceiling
        #: per crossed link: the ceiling-load level past which it can
        #: saturate (bandwidth · factor · (1+eps)), precomputed so the
        #: per-flow track/untrack bookkeeping does no arithmetic
        self.thresholds = thresholds


class _Flow:
    __slots__ = (
        "fid",
        "src",
        "dst",
        "size",
        "remaining",
        "info",
        "done",
        "rate",
        "start",
        "tag",
        "completion",
    )

    def __init__(self, fid, src, dst, size, info, done, start, tag):
        self.fid = fid
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.info = info
        self.done = done
        self.rate = 0.0
        self.start = start
        self.tag = tag
        self.completion: Optional[ScheduledCall] = None

    @property
    def route(self):
        return self.info.route


class FluidNetwork:
    """Flow-level network simulation bound to a :class:`Simulator`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tcp: TcpModel = TcpModel(),
        route_intern: Optional[Dict[Tuple[str, str], _RouteInfo]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.tcp = tcp
        self._active: Dict[int, _Flow] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        # ``route_intern`` lets deployments over the same (topology,
        # tcp) share one per-pair store across engine instances, so a
        # sweep derives each route once per process instead of once
        # per grid point.  Callers must key the shared dict on the tcp
        # parameters too — caps fold the tcp model in.
        self._routes: Dict[Tuple[str, str], _RouteInfo] = (
            route_intern if route_intern is not None else {}
        )
        self._routes_version = topology.version
        self._reshare_pending = False
        # Incremental constraint bookkeeping: per-link sum of active
        # flows' ceilings, per-link active flows, and the set of links
        # that could saturate at those ceilings.  Maintained per
        # transfer so a reshare only solves the binding residual.
        self._ceiling_load: Dict[Link, float] = {}
        self._link_flows: Dict[Link, Dict[int, _Flow]] = {}
        self._binding: set = set()
        #: Active flows whose current rate differs from their ceiling
        #: (constrained earlier, starved, or not yet rated): exactly
        #: the flows — beyond those crossing a binding link — whose
        #: rate a reshare can move, so the reshare never scans the
        #: unaffected bulk of the active set.
        self._off_ceiling: Dict[int, _Flow] = {}
        #: Memoized solver outcomes: the halo phases pose the same
        #: (classes × binding links) problem every iteration, so ~85%
        #: of reshares replay a cached rate vector instead of solving.
        #: Keyed on interned-route identity — stable for the engine's
        #: life because ``_routes`` keeps every info alive.
        self._solve_cache: Dict[Any, Dict[int, float]] = {}
        # cumulative statistics
        self.bytes_delivered = 0.0
        self.transfers_completed = 0
        self.reshare_count = 0

    # -- public API ----------------------------------------------------------
    def send(
        self,
        src: NetNode,
        dst: NetNode,
        nbytes: float,
        tag: Optional[str] = None,
        callback=None,
    ) -> Optional[Signal]:
        """Start a transfer; returns a signal succeeding with TransferInfo.

        With ``callback`` the completion is delivered as a direct
        ``callback(TransferInfo)`` instead — same invocation instant,
        no per-flow signal object (the control plane and the channel
        layer send one flow per message, so the ceremony is hot) —
        and ``None`` is returned.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        fid = next(self._ids)
        done = callback if callback is not None else Signal("xfer")
        info = self._route_info(src, dst)
        flow = _Flow(fid, src, dst, nbytes, info, done, self.sim.now, tag)
        # Phase 1: latency, then the flow starts consuming bandwidth.
        # The same handle is re-armed for the data phase (_set_rate
        # swaps the callback to _complete): one ScheduledCall serves a
        # flow for its whole life.
        flow.completion = self.sim.schedule(info.latency, self._activate, flow)
        return done if callback is None else None

    def _route_info(self, src: NetNode, dst: NetNode) -> _RouteInfo:
        """The interned (route, latency, rate-cap) triple of a pair.

        Keyed on the topology's link version: adding a link after the
        first send invalidates the intern cache, so later transfers see
        the new routes (in-flight flows keep the route they started
        on, exactly as the per-send lookup behaved)."""
        if self._routes_version != self.topology.version:
            self._routes.clear()
            self._solve_cache.clear()  # keys hold interned-route ids
            self._routes_version = self.topology.version
        key = (src.name, dst.name)
        info = self._routes.get(key)
        if info is None:
            route = tuple(self.topology.route(src, dst))
            latency = sum(l.latency for l in route)
            cap = self.tcp.rate_cap(latency)
            ceiling = cap
            if route:
                ceiling = min(
                    cap,
                    min(l.bandwidth for l in route)
                    * self.tcp.bandwidth_factor,
                )
            factor = self.tcp.bandwidth_factor
            thresholds = tuple(
                l.bandwidth * factor * (1 + BINDING_EPS) for l in route
            )
            info = _RouteInfo(route, latency, cap, ceiling, thresholds)
            self._routes[key] = info
        return info

    def transfer_time_estimate(
        self, src: NetNode, dst: NetNode, nbytes: float
    ) -> float:
        """Uncontended analytic estimate: latency + size / ceiling.

        Used by P2PDC actors for quick decisions (never for results);
        rides the interned per-pair route info.
        """
        info = self._route_info(src, dst)
        if not info.route:
            return 0.0
        return info.latency + nbytes / info.ceiling

    @property
    def active_flow_count(self) -> int:
        return len(self._active)

    # -- engine internals ------------------------------------------------------
    def _activate(self, flow: _Flow) -> None:
        if not flow.route or flow.remaining <= 0.0:
            # Same-host or zero-byte message: latency-only.
            self._finish(flow)
            return
        if self.sim.now != self._last_update:
            self._advance_progress()
        self._active[flow.fid] = flow
        self._track(flow)
        # Uncontended arrival: if no crossed link can saturate, the
        # flow runs at its ceiling and no other flow's constraints
        # moved — skip the solver entirely (the dominant case on
        # fat-link platforms, and the first flow of every pair on
        # access-bottlenecked ones).
        binding = self._binding
        if binding and not binding.isdisjoint(flow.info.route):
            # unrated until the solver runs: the pending reshare must
            # see it even if its links leave the binding set meanwhile
            self._off_ceiling[flow.fid] = flow
            self._request_reshare()
        else:
            self._set_rate(flow, flow.info.ceiling)

    def _set_rate(self, flow: _Flow, rate: float) -> None:
        completion = flow.completion
        if completion is not None and not completion.cancelled:
            if rate == flow.rate:
                return
        flow.rate = rate
        if rate != flow.info.ceiling:
            self._off_ceiling[flow.fid] = flow
        else:
            self._off_ceiling.pop(flow.fid, None)
        if rate <= 0.0:
            # starved; will reshare on next change
            if completion is not None:
                completion.cancel()
            return
        eta = flow.remaining / rate if math.isfinite(rate) else 0.0
        if completion is None:  # pragma: no cover - send() always arms it
            flow.completion = self.sim.schedule(eta, self._complete, flow)
        else:
            # one handle per flow for its whole life: reschedule marks
            # the heaped entry stale in place of a cancel + fresh push
            # (and retargets the latency-phase handle on first use)
            completion.fn = self._complete
            self.sim.reschedule(completion, eta, flow)

    def _track(self, flow: _Flow) -> None:
        info = flow.info
        ceiling = info.ceiling
        ceiling_load = self._ceiling_load
        for link, threshold in zip(info.route, info.thresholds):
            load = ceiling_load.get(link, 0.0) + ceiling
            ceiling_load[link] = load
            self._link_flows.setdefault(link, {})[flow.fid] = flow
            if load > threshold:
                self._binding.add(link)

    def _untrack(self, flow: _Flow) -> None:
        info = flow.info
        ceiling = info.ceiling
        ceiling_load = self._ceiling_load
        for link, threshold in zip(info.route, info.thresholds):
            flows = self._link_flows[link]
            del flows[flow.fid]
            if not flows:
                # reset exactly: idle links shed accumulated float drift
                del self._link_flows[link]
                del ceiling_load[link]
                self._binding.discard(link)
                continue
            load = ceiling_load[link] - ceiling
            ceiling_load[link] = load
            if load <= threshold:
                self._binding.discard(link)

    def _advance_progress(self) -> None:
        """Account bytes moved since the last rate change."""
        dt = self.sim.now - self._last_update
        if dt > 0.0:
            for flow in self._active.values():
                if math.isfinite(flow.rate):
                    flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
                else:
                    flow.remaining = 0.0
        self._last_update = self.sim.now

    def _request_reshare(self) -> None:
        """Batch rate recomputation to the end of the current instant.

        Collectives start/finish many flows at the same simulated time;
        one zero-delay event coalesces all of them into a single solver
        call.  Rates only matter once time advances, so deferring within
        the instant is exact.
        """
        if not self._reshare_pending:
            self._reshare_pending = True
            self.sim.call_later(0.0, self._run_reshare)

    def _run_reshare(self) -> None:
        self._reshare_pending = False
        if not self._active:
            return
        if self.sim.now != self._last_update:
            self._advance_progress()  # no-op unless a caller skipped it
        self.reshare_count += 1
        # Solve only the *residual* problem: flows crossing a link that
        # could saturate at current ceilings.  Everything else runs at
        # its interned ceiling — on access-bottlenecked platforms the
        # backbone never enters the solver at all.  Residual flows are
        # grouped by interned route class: identical (route, cap) flows
        # are exchangeable, so the solver sees one entry with a
        # multiplicity instead of one entry per flow.
        binding = self._binding
        # A reshare can only move flows that cross a link which could
        # saturate, plus flows whose rate is currently away from their
        # ceiling (constrained earlier, starved, or unrated): collect
        # exactly those instead of doing per-flow work on the whole
        # active set.  The candidate *set* is gathered from the
        # (id-hash-ordered) binding links, but candidates are visited
        # in _active's iteration order below, never in set order.
        active = self._active
        if not binding:
            # no link can saturate: every off-ceiling flow (and only
            # those) climbs back to its ceiling, visited in the exact
            # order the full _active scan would have reached them
            off = self._off_ceiling
            if off:
                for flow in [f for fid, f in active.items() if fid in off]:
                    self._set_rate(flow, flow.info.ceiling)
            return
        fids = set(self._off_ceiling)
        for link in binding:
            fids.update(self._link_flows[link])
        # Candidates in _active's (activation) iteration order — the
        # exact order the full scan this replaces visited them, so
        # solver input order, freeze order and completion sequencing
        # are byte-identical to the pre-fast-core engine.
        candidates = [f for fid, f in active.items() if fid in fids]
        rates: Dict[int, float] = {}
        if binding:
            # Group by interned-route class and build the solve-cache
            # key first; solver inputs are only materialized on a miss
            # (the halo phases repeat the same problem every iteration).
            counts: Dict[int, list] = {}
            order: List[int] = []
            for flow in candidates:
                info = flow.info
                cid = id(info)
                entry = counts.get(cid)
                if entry is None:
                    counts[cid] = [info, 1]
                    order.append(cid)
                else:
                    entry[1] += 1
            key = (
                tuple((cid, counts[cid][1]) for cid in order),
                tuple(sorted(map(id, binding))),
            )
            rates = self._solve_cache.get(key)
            if rates is None:
                routes: Dict[int, List[Link]] = {}
                caps: Dict[int, float] = {}
                sizes: Dict[int, int] = {}
                for cid in order:
                    info, n = counts[cid]
                    if binding.isdisjoint(info.route):
                        continue
                    routes[cid] = [l for l in info.route if l in binding]
                    caps[cid] = info.ceiling
                    sizes[cid] = n
                rates = progressive_fill(
                    routes, caps, sizes,
                    bandwidth_factor=self.tcp.bandwidth_factor,
                )
                self._solve_cache[key] = rates
        for flow in candidates:
            # rate-unchanged flows keep their scheduled completion —
            # _set_rate skips the heap churn (flows on disjoint links
            # are the common case in halo phases)
            rate = rates.get(id(flow.info))
            self._set_rate(flow,
                           rate if rate is not None else flow.info.ceiling)

    def _complete(self, flow: _Flow) -> None:
        if self.sim.now != self._last_update:
            self._advance_progress()
        flow.remaining = 0.0
        del self._active[flow.fid]
        self._off_ceiling.pop(flow.fid, None)
        # Departure from all-slack links frees capacity nobody was
        # contending for: remaining rates are unaffected, skip the
        # solver (mirror of the uncontended-arrival case).
        binding = self._binding
        contended = bool(binding) and not binding.isdisjoint(
            flow.info.route
        )
        self._untrack(flow)
        self._finish(flow)
        if contended and self._active:
            self._request_reshare()

    def _finish(self, flow: _Flow) -> None:
        self.bytes_delivered += flow.size
        self.transfers_completed += 1
        info = TransferInfo(
            src=flow.src.name,
            dst=flow.dst.name,
            size=flow.size,
            start=flow.start,
            end=self.sim.now,
            tag=flow.tag,
        )
        done = flow.done
        if done.__class__ is Signal:
            done.succeed(info)
        else:  # plain callback (same invocation instant as a succeed)
            done(info)
