"""Flow-level network substrate (SimGrid-style fluid model)."""

from .engine import FluidNetwork, TransferInfo
from .faults import FaultInjector, FaultStats
from .links import GBPS, KBPS, MBPS, MS, US, Link, TcpModel
from .nodes import Dslam, Host, NetNode, Router
from .sharing import maxmin_allocation, validate_allocation
from .topology import Topology

__all__ = [
    "Dslam",
    "FaultInjector",
    "FaultStats",
    "FluidNetwork",
    "GBPS",
    "Host",
    "KBPS",
    "Link",
    "MBPS",
    "MS",
    "NetNode",
    "Router",
    "TcpModel",
    "Topology",
    "TransferInfo",
    "US",
    "maxmin_allocation",
    "validate_allocation",
]
