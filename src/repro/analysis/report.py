"""ASCII rendering of paper-style tables and series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(
    title: str,
    x_label: str,
    series: Mapping[str, Mapping[int, float]],
    unit: str = "s",
) -> str:
    """Fig.-style output: one column per x value, one row per curve."""
    xs: List[int] = sorted({x for curve in series.values() for x in curve})
    headers = [x_label] + [str(x) for x in xs]
    rows = []
    for name, curve in series.items():
        rows.append(
            [name] + [f"{curve[x]:.3f}{unit}" if x in curve else "-" for x in xs]
        )
    return f"{title}\n{format_table(headers, rows)}"


def format_equivalence_table(rows) -> str:
    """Render Table I with the paper's column layout."""
    headers = [
        "Processes number", "topology", "Performance (than)",
        "Processes number", "topology", "ratio",
    ]
    body = [
        [
            r.candidate_peers, r.candidate_platform, r.verdict,
            r.reference_peers, r.reference_platform, f"{r.ratio:.2f}",
        ]
        for r in rows
    ]
    return format_table(headers, body)
