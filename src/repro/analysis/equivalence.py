"""Equivalent-computing-power classification (Table I).

The paper compares predicted P2P configurations against cluster
configurations with verdicts like "slightly lower (than)" and "same
as".  We classify by the runtime ratio ``t_candidate / t_reference``
(candidate slower → performance lower):

===========  ======================
ratio r      verdict
===========  ======================
r ≤ 0.95     better than
0.95–1.02    same as
1.02–1.60    slightly lower than
> 1.60       lower than
===========  ======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

BETTER = "better than"
SAME = "same as"
SLIGHTLY_LOWER = "slightly lower than"
LOWER = "lower than"

_SAME_LOW, _SAME_HIGH, _SLIGHT_HIGH = 0.95, 1.02, 1.60


def classify(t_candidate: float, t_reference: float) -> str:
    """Verdict for a candidate platform time vs a reference time."""
    if t_candidate <= 0 or t_reference <= 0:
        raise ValueError("times must be positive")
    ratio = t_candidate / t_reference
    if ratio <= _SAME_LOW:
        return BETTER
    if ratio <= _SAME_HIGH:
        return SAME
    if ratio <= _SLIGHT_HIGH:
        return SLIGHTLY_LOWER
    return LOWER


@dataclass(frozen=True)
class EquivalenceRow:
    """One Table-I row: candidate config vs reference config."""

    candidate_peers: int
    candidate_platform: str
    verdict: str
    reference_peers: int
    reference_platform: str
    candidate_time: float
    reference_time: float

    @property
    def ratio(self) -> float:
        return self.candidate_time / self.reference_time

    def as_tuple(self):
        return (
            self.candidate_peers, self.candidate_platform, self.verdict,
            self.reference_peers, self.reference_platform,
        )


def compare_configs(
    candidate_times: Mapping[int, float],
    reference_times: Mapping[int, float],
    candidate_platform: str,
    reference_platform: str,
    pairs: Sequence[tuple],
) -> List[EquivalenceRow]:
    """Build Table-I style rows for explicit (candidate_n, reference_n)
    pairings."""
    rows = []
    for cand_n, ref_n in pairs:
        rows.append(
            EquivalenceRow(
                candidate_peers=cand_n,
                candidate_platform=candidate_platform,
                verdict=classify(candidate_times[cand_n], reference_times[ref_n]),
                reference_peers=ref_n,
                reference_platform=reference_platform,
                candidate_time=candidate_times[cand_n],
                reference_time=reference_times[ref_n],
            )
        )
    return rows


def find_equivalent_config(
    candidate_times: Mapping[int, float],
    reference_time: float,
    tolerance: float = 1.60,
) -> Optional[int]:
    """Smallest candidate peer count whose predicted time is within
    ``tolerance``× of (or better than) the reference time — "how many
    LAN peers replace this cluster?"."""
    for n in sorted(candidate_times):
        if candidate_times[n] / reference_time <= tolerance:
            return n
    return None


def equivalence_search(
    candidate_times: Mapping[int, float],
    reference_times: Mapping[int, float],
) -> Dict[int, Optional[int]]:
    """For every reference config, the smallest matching candidate."""
    return {
        ref_n: find_equivalent_config(candidate_times, ref_t)
        for ref_n, ref_t in sorted(reference_times.items())
    }
