"""Result handling: accuracy metrics, Table-I classification, reports."""

from .compare import (
    AccuracyReport,
    ComparisonRow,
    SweepComparison,
    SweepData,
    accuracy,
    compare_sweeps,
    parse_point_label,
    relative_error,
    series_accuracy,
    speedup_series,
)
from .equivalence import (
    BETTER,
    LOWER,
    SAME,
    SLIGHTLY_LOWER,
    EquivalenceRow,
    classify,
    compare_configs,
    equivalence_search,
    find_equivalent_config,
)
from .report import format_equivalence_table, format_series, format_table

__all__ = [
    "AccuracyReport",
    "BETTER",
    "ComparisonRow",
    "EquivalenceRow",
    "LOWER",
    "SAME",
    "SLIGHTLY_LOWER",
    "SweepComparison",
    "SweepData",
    "accuracy",
    "classify",
    "compare_sweeps",
    "parse_point_label",
    "compare_configs",
    "equivalence_search",
    "find_equivalent_config",
    "format_equivalence_table",
    "format_series",
    "format_table",
    "relative_error",
    "series_accuracy",
    "speedup_series",
]
