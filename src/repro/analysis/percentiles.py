"""Empirical percentile estimation — the one estimator for SLO answers.

Both readouts of a makespan pool — the ``repro.serve`` SLO answers and
the ``compare --percentiles`` sweep columns — go through
:func:`percentile`, so a P99 quoted by the query daemon is definitionally
the P99 a sweep report shows for the same pool.  The estimator is the
classic linear interpolation between closest ranks (numpy's default):
for ``n`` sorted samples and percentile ``p``, the rank position is
``h = (n - 1) * p / 100`` and the estimate interpolates between
``x[floor(h)]`` and ``x[floor(h) + 1]``.

Properties the tests pin:

- monotone non-decreasing in ``p``;
- invariant under sample permutation (the input is sorted internally);
- exact order statistics at the rank points (``p = 100 k / (n - 1)``);
- ``inf`` samples (non-completed runs under SLO semantics) propagate:
  a percentile landing in the failed tail is ``inf``, never ``nan``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

#: The SLO summary percentiles every serve answer reports.
SLO_PERCENTILES = (50.0, 90.0, 99.0, 99.9)


def percentile(samples: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of ``samples`` (linear interpolation).

    ``p`` is in ``[0, 100]``; ``samples`` need not be sorted and must
    be non-empty.  Infinite samples sort last and propagate as ``inf``
    (equal neighbours short-circuit, so two ``inf`` ranks never produce
    ``inf - inf`` NaNs).
    """
    if not samples:
        raise ValueError("percentile of an empty sample pool")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p!r}")
    ordered = sorted(samples)
    if any(math.isnan(x) for x in ordered):
        raise ValueError("percentile over NaN samples")
    h = (len(ordered) - 1) * p / 100.0
    lo = math.floor(h)
    frac = h - lo
    if frac == 0.0 or lo + 1 >= len(ordered):
        return ordered[lo]
    a, b = ordered[lo], ordered[lo + 1]
    if a == b:  # covers the inf-inf tail without NaN arithmetic
        return a
    return a + frac * (b - a)


def pct_key(p: float) -> str:
    """Canonical label of one percentile column (``99.9`` → ``"p99.9"``)."""
    return f"p{p:g}"


def percentile_summary(
    samples: Sequence[float], ps: Sequence[float] = SLO_PERCENTILES
) -> Dict[str, Optional[float]]:
    """``{pct_key(p): percentile(samples, p)}`` with ``inf`` → ``None``.

    The JSON-safe summary form shared by serve answers and sweep
    reports: an infinite estimate (the percentile lands in the
    non-completed tail) is reported as ``None`` — "no finite makespan
    at this percentile" — because JSON has no ``inf``.
    """
    return {pct_key(p): finite_or_none(percentile(samples, p)) for p in ps}


def finite_or_none(value: float) -> Optional[float]:
    """``value`` if finite, else ``None`` (the JSON-safe form)."""
    return value if math.isfinite(value) else None
