"""Reference-vs-prediction error metrics (Fig. 10's accuracy claim) —
and sweep-vs-sweep comparison reports.

The sweep half turns two cached sweeps (as written by
``python -m repro.scenarios sweep … --label …``) into one diff table:
points are matched on the grid axes the two sweeps share, aggregated
over the axes they don't (seeds, platforms), and rendered as markdown
or JSON.  ``completed`` metrics (churn grids) aggregate into a
completion probability per matched row, which is how the §III-D
robustness numbers are read out.  With ``metric="makespan"`` the
``B/A`` column of a rejoin=0-vs-rejoin>0 diff is the survivors'
*makespan-degradation ratio*: completed-under-recovery runs pay for
failure detection, re-dispatch and recompute, and the ratio prices
that against the no-recovery baseline's completed runs.
"""

from __future__ import annotations

import html as _html
import json
import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .percentiles import finite_or_none, pct_key, percentile


def relative_error(predicted: float, reference: float) -> float:
    """Signed relative error (positive = over-prediction)."""
    if reference == 0:
        raise ValueError("reference time is zero")
    return (predicted - reference) / reference


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate accuracy over a series of (reference, predicted) pairs."""

    mape: float           # mean absolute percentage error
    max_abs_pct: float
    n_points: int

    def __str__(self) -> str:
        return (
            f"MAPE {self.mape * 100:.2f}% over {self.n_points} points "
            f"(worst {self.max_abs_pct * 100:.2f}%)"
        )


def accuracy(pairs: Sequence[Tuple[float, float]]) -> AccuracyReport:
    """``pairs`` holds (reference, predicted)."""
    if not pairs:
        raise ValueError("no data points")
    errors = [abs(relative_error(p, r)) for r, p in pairs]
    return AccuracyReport(
        mape=sum(errors) / len(errors),
        max_abs_pct=max(errors),
        n_points=len(errors),
    )


def series_accuracy(
    reference: Mapping, predicted: Mapping
) -> AccuracyReport:
    """Accuracy over the common keys of two result dictionaries."""
    keys = sorted(set(reference) & set(predicted))
    if not keys:
        raise ValueError("no common keys between reference and prediction")
    return accuracy([(reference[k], predicted[k]) for k in keys])


def speedup_series(times: Mapping[int, float]) -> Dict[int, float]:
    """Strong-scaling speedups relative to the smallest peer count."""
    if not times:
        return {}
    base = times[min(times)]
    return {n: base / t for n, t in times.items()}


# ---------------------------------------------------------------------------
# sweep-vs-sweep comparison
# ---------------------------------------------------------------------------

_LABEL_RE = re.compile(r"\[([^\]]*)\]$")


def parse_point_label(name: str) -> Dict[str, str]:
    """Grid assignments encoded in an expanded point name.

    ``expand_grid`` names points ``base[path=value,...]``; this
    recovers the ``{path: value}`` mapping (empty for unexpanded
    bases).
    """
    m = _LABEL_RE.search(name)
    if not m or not m.group(1):
        return {}
    out: Dict[str, str] = {}
    for part in m.group(1).split(","):
        path, eq, value = part.partition("=")
        if eq:
            out[path] = value
    return out


@dataclass
class SweepData:
    """One cached sweep: a label and its point results (plain dicts).

    ``points`` entries need ``name`` and ``result`` keys —
    the shape stored in sweep manifests.
    """

    label: str
    points: List[Dict[str, Any]]

    @classmethod
    def from_manifest(cls, payload: Mapping[str, Any]) -> "SweepData":
        return cls(label=payload["label"], points=list(payload["points"]))

    def axes(self) -> List[str]:
        """All grid paths appearing in this sweep's point names."""
        seen: Dict[str, None] = {}
        for point in self.points:
            for key in parse_point_label(point["name"]):
                seen.setdefault(key)
        return list(seen)


@dataclass
class ComparisonRow:
    """One matched key of a sweep diff (aggregates over unshared axes)."""

    key: Dict[str, str]
    n_a: int = 0
    n_b: int = 0
    mean_a: Optional[float] = None
    mean_b: Optional[float] = None
    completion_a: Optional[float] = None
    completion_b: Optional[float] = None
    #: Requested percentile columns (``compare --percentiles``):
    #: ``pct_key(p)`` → estimate over the same completed-point values
    #: the mean aggregates.  Empty when no percentiles were requested.
    pcts_a: Dict[str, Optional[float]] = field(default_factory=dict)
    pcts_b: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def delta(self) -> Optional[float]:
        if self.mean_a is None or self.mean_b is None:
            return None
        return self.mean_b - self.mean_a

    @property
    def ratio(self) -> Optional[float]:
        if not self.mean_a or self.mean_b is None:
            return None
        return self.mean_b / self.mean_a

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "key": self.key,
            "n_a": self.n_a, "n_b": self.n_b,
            "mean_a": self.mean_a, "mean_b": self.mean_b,
            "delta": self.delta, "ratio": self.ratio,
            "completion_a": self.completion_a,
            "completion_b": self.completion_b,
        }
        if self.pcts_a or self.pcts_b:
            out["pcts_a"] = self.pcts_a
            out["pcts_b"] = self.pcts_b
        return out


#: Metrics that are meaningful on non-completed points too (injected
#: crash counts and the recovery counters): these aggregate over every
#: ``ok`` point, not only the completed ones — a run that *failed
#: despite* three re-dispatches (or an election) is exactly the datum
#: to read.
CHURN_METRICS = frozenset(
    {"churn_failures", "rejoined_peers", "redispatched_subtasks",
     "coordinator_crashes", "elections", "handoff_latency"}
)

#: Fault-injection telemetry (what the injector did, and the
#: reliability hardening's response): meaningful on non-completed
#: points for the same reason — an unhardened run that deadlocked
#: *because of* 37 lost messages is the row that explains the
#: P(complete) contrast.  Aggregated over all ``ok`` points, exactly
#: like :data:`CHURN_METRICS`.
FAULT_METRICS = frozenset(
    {"messages_lost", "messages_duplicated", "messages_delayed",
     "partition_blocked", "reliable_retries", "reliable_abandoned",
     "duplicate_deliveries"}
)

#: Every metric that aggregates over all ``ok`` points (not only the
#: completed ones).
_ALL_OK_METRICS = CHURN_METRICS | FAULT_METRICS


def _aggregate(points: Sequence[Mapping[str, Any]], metric: str,
               percentiles: Sequence[float] = ()):
    """(n, mean metric over completed points, completion probability,
    percentile estimates).

    Hard failures (``ok: false`` — engine errors, non-churn scenario
    failures) are excluded from *both* aggregates: only ``ok`` points
    count, matching the runner's contract that an engine error is
    never a completion-probability datum.  Timing metrics average over
    completed points only (a timed-out run has no makespan);
    :data:`CHURN_METRICS` and :data:`FAULT_METRICS` average over all
    ``ok`` points.  Requested
    ``percentiles`` are estimated over the same value pool the mean
    aggregates, by the shared :func:`~repro.analysis.percentiles
    .percentile` estimator — so a sweep report's P99 is definitionally
    the P99 a ``repro.serve`` answer quotes for the same pool.
    """
    values: List[float] = []
    completed: List[float] = []
    for point in points:
        result = point["result"]
        if not result.get("ok", True):
            continue
        metrics = result.get("metrics", {})
        done = metrics.get("completed")
        if done is not None:
            completed.append(done)
        if done == 0.0 and metric not in _ALL_OK_METRICS:
            continue
        value = result.get(metric)
        if value is None:
            value = metrics.get(metric)
        if value is not None:
            values.append(value)
    mean = sum(values) / len(values) if values else None
    prob = sum(completed) / len(completed) if completed else None
    pcts = {
        pct_key(p): finite_or_none(percentile(values, p))
        for p in percentiles
    } if values and percentiles else {
        pct_key(p): None for p in percentiles
    }
    return len(points), mean, prob, pcts


def _sort_token(value: str):
    try:
        return (0, float(value))
    except ValueError:
        return (1, value)


def _canon(value: str) -> str:
    """Canonical form of a grid value so ``0``, ``0.0`` and ``0.00``
    match across sweeps that spelled the same number differently."""
    try:
        number = float(value)
    except ValueError:
        return value
    if not math.isfinite(number):
        return repr(number)  # inf/nan: no integer form
    if number == int(number):
        return str(int(number))
    return repr(number)


@dataclass
class SweepComparison:
    """The diff of two sweeps over their shared grid axes."""

    a: str
    b: str
    metric: str
    shared_axes: List[str]
    rows: List[ComparisonRow] = field(default_factory=list)
    #: Percentile columns the rows carry (``compare --percentiles``).
    percentiles: Tuple[float, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "a": self.a, "b": self.b, "metric": self.metric,
            "shared_axes": self.shared_axes,
            "rows": [row.to_dict() for row in self.rows],
        }
        if self.percentiles:
            out["percentiles"] = list(self.percentiles)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown report."""
        axes = ", ".join(self.shared_axes) or "(whole sweep)"
        show_completion = any(
            row.completion_a is not None or row.completion_b is not None
            for row in self.rows
        )
        lines = [
            f"# Sweep comparison: `{self.a}` vs `{self.b}`",
            "",
            f"- metric: `{self.metric}` "
            "(mean over completed points of each matched group)",
            f"- matched on: {axes}",
            f"- A = `{self.a}`, B = `{self.b}`",
            "",
        ]
        header = ["key", "n A", "n B", f"{self.metric} A",
                  f"{self.metric} B", "Δ (B−A)", "B/A"]
        for p in self.percentiles:
            label = pct_key(p).upper()
            header += [f"{label} A", f"{label} B"]
        if show_completion:
            header += ["P(complete) A", "P(complete) B"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for row in self.rows:
            key = ", ".join(
                f"{k}={v}" for k, v in row.key.items()
            ) or "(all)"
            cells = [
                key, str(row.n_a), str(row.n_b),
                _fmt(row.mean_a), _fmt(row.mean_b),
                _fmt(row.delta), _fmt(row.ratio),
            ]
            for p in self.percentiles:
                cells += [_fmt(row.pcts_a.get(pct_key(p))),
                          _fmt(row.pcts_b.get(pct_key(p)))]
            if show_completion:
                cells += [_fmt(row.completion_a), _fmt(row.completion_b)]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines) + "\n"

    #: ``to_html`` flags a row as a regression/improvement when its
    #: B/A ratio leaves this band (5% either way).
    HTML_RATIO_BAND = 0.05

    def to_html(
        self,
        worker_stats: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> str:
        """Self-contained static HTML regression report.

        One file, inline CSS, no scripts or external assets — safe to
        archive as a CI artifact or mail around.  Rows whose ``B/A``
        ratio exceeds ``1 + HTML_RATIO_BAND`` are highlighted as
        regressions (B slower/worse on an increasing metric), rows
        below ``1 - HTML_RATIO_BAND`` as improvements; rows missing
        from one side are flagged unmatched.

        ``worker_stats`` (rows shaped like
        :meth:`repro.fleet.telemetry.WorkerStat.to_dict`) appends a
        fleet-workers section: per-worker throughput with straggler
        rows shaded — how a slow machine on the shared mount shows up
        in the same artifact as the regression it caused.
        """
        esc = _html.escape
        show_completion = any(
            row.completion_a is not None or row.completion_b is not None
            for row in self.rows
        )
        header = ["key", "n A", "n B", f"{self.metric} A",
                  f"{self.metric} B", "Δ (B−A)", "B/A"]
        for p in self.percentiles:
            label = pct_key(p).upper()
            header += [f"{label} A", f"{label} B"]
        if show_completion:
            header += ["P(complete) A", "P(complete) B"]

        body_rows: List[str] = []
        regressions = improvements = unmatched = 0
        for row in self.rows:
            if row.n_a == 0 or row.n_b == 0:
                cls, badge = "unmatched", "one side only"
                unmatched += 1
            elif row.ratio is not None and \
                    row.ratio > 1 + self.HTML_RATIO_BAND:
                cls, badge = "regression", f"+{(row.ratio - 1) * 100:.1f}%"
                regressions += 1
            elif row.ratio is not None and \
                    row.ratio < 1 - self.HTML_RATIO_BAND:
                cls, badge = "improvement", f"−{(1 - row.ratio) * 100:.1f}%"
                improvements += 1
            else:
                cls, badge = "", ""
            key = ", ".join(f"{k}={v}" for k, v in row.key.items()) \
                or "(all)"
            cells = [esc(key), str(row.n_a), str(row.n_b),
                     _fmt(row.mean_a), _fmt(row.mean_b),
                     _fmt(row.delta), _fmt(row.ratio)]
            for p in self.percentiles:
                cells += [_fmt(row.pcts_a.get(pct_key(p))),
                          _fmt(row.pcts_b.get(pct_key(p)))]
            if show_completion:
                cells += [_fmt(row.completion_a), _fmt(row.completion_b)]
            if badge:
                # the B/A cell carries the regression badge
                cells[6] += f' <span class="badge">{esc(badge)}</span>'
            tds = "".join(
                f"<td>{c}</td>" if i == 0
                else f'<td class="num">{c}</td>'
                for i, c in enumerate(cells)
            )
            row_cls = f" class=\"{cls}\"" if cls else ""
            body_rows.append(f"<tr{row_cls}>{tds}</tr>")

        ths = "".join(f"<th>{esc(h)}</th>" for h in header)
        summary_bits = [f"{len(self.rows)} matched keys"]
        if regressions:
            summary_bits.append(f"{regressions} regression"
                                f"{'s' if regressions != 1 else ''}")
        if improvements:
            summary_bits.append(f"{improvements} improvement"
                                f"{'s' if improvements != 1 else ''}")
        if unmatched:
            summary_bits.append(f"{unmatched} unmatched")
        axes = ", ".join(self.shared_axes) or "(whole sweep)"
        pct_note = (" Percentile columns use the serve-tier estimator "
                    "over the same per-row pools the means aggregate."
                    if self.percentiles else "")
        workers_section = _worker_stats_section(worker_stats) \
            if worker_stats else ""
        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Sweep comparison: {esc(self.a)} vs {esc(self.b)}</title>
<style>
 body {{ font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
        margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
        color: #1c2733; }}
 h1 {{ font-size: 1.3rem; }}
 code {{ background: #f0f2f5; padding: .1em .3em; border-radius: 3px; }}
 p.meta {{ color: #5a6775; }}
 table {{ border-collapse: collapse; width: 100%; }}
 th, td {{ border: 1px solid #d7dde3; padding: .35em .6em;
          text-align: left; }}
 td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
 th {{ background: #f0f2f5; }}
 tr.regression td {{ background: #fdecea; }}
 tr.improvement td {{ background: #e9f7ef; }}
 tr.unmatched td {{ background: #fff8e1; color: #7a6a1f; }}
 tr.straggler td {{ background: #fdf1e6; color: #7a4a1f; }}
 h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
 .badge {{ font-size: .8em; border-radius: 3px; padding: 0 .35em;
          background: rgba(0,0,0,.08); white-space: nowrap; }}
 footer {{ margin-top: 1.5rem; color: #8a95a1; font-size: .85em; }}
</style>
</head>
<body>
<h1>Sweep comparison: <code>{esc(self.a)}</code> vs
 <code>{esc(self.b)}</code></h1>
<p class="meta">metric <code>{esc(self.metric)}</code>
 (mean over completed points of each matched group) ·
 matched on {esc(axes)} · A = <code>{esc(self.a)}</code>,
 B = <code>{esc(self.b)}</code></p>
<p class="meta">{esc(" · ".join(summary_bits))} · rows shaded when
 B/A leaves the ±{self.HTML_RATIO_BAND * 100:.0f}% band.{pct_note}</p>
<table>
<thead><tr>{ths}</tr></thead>
<tbody>
{chr(10).join(body_rows)}
</tbody>
</table>
{workers_section}<footer>Static report rendered by repro.analysis — no
 scripts, no external assets.</footer>
</body>
</html>
"""


def _worker_stats_section(
    worker_stats: Sequence[Mapping[str, Any]],
) -> str:
    """The fleet-workers/stragglers HTML block appended by
    :meth:`SweepComparison.to_html` (rows shaped like
    ``repro.fleet.telemetry.WorkerStat.to_dict``)."""
    esc = _html.escape
    header = ["worker", "points done", "pt/min", "mean s", "last s",
              "in flight", "point age s", "last beat s", "flags"]
    rows: List[str] = []
    stragglers = 0
    for stat in worker_stats:
        straggler = bool(stat.get("straggler"))
        stragglers += straggler
        point = stat.get("point")
        flags = "; ".join(str(r) for r in stat.get("reasons", ())) \
            if straggler else ""
        cells = [
            esc(str(stat.get("worker", "?"))),
            str(stat.get("points_done", 0)),
            _fmt(stat.get("points_per_min")),
            _fmt(stat.get("mean_latency")),
            _fmt(stat.get("last_latency")),
            "—" if point is None else esc(f"p{point}"),
            _fmt(stat.get("point_age")),
            _fmt(stat.get("beat_age")),
            esc(flags) or "",
        ]
        tds = "".join(
            f"<td>{c}</td>" if i in (0, 8) else f'<td class="num">{c}</td>'
            for i, c in enumerate(cells)
        )
        cls = ' class="straggler"' if straggler else ""
        rows.append(f"<tr{cls}>{tds}</tr>")
    ths = "".join(f"<th>{esc(h)}</th>" for h in header)
    note = (f"{stragglers} straggler{'s' if stragglers != 1 else ''} "
            f"flagged" if stragglers else "no stragglers flagged")
    return f"""<h2>Fleet workers</h2>
<p class="meta">per-worker throughput from the fleet's heartbeat
 telemetry · {esc(note)} · shaded rows fell below half the fleet-median
 rate or stalled past 3× their mean claim-to-done latency.</p>
<table>
<thead><tr>{ths}</tr></thead>
<tbody>
{chr(10).join(rows)}
</tbody>
</table>
"""


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if math.isnan(value):
        return "nan"
    return f"{value:.4g}"


@dataclass
class GapRow:
    """One aggregated cell of a prediction-gap report."""

    key: Dict[str, str]
    n: int = 0
    mean: Optional[float] = None
    completion: Optional[float] = None
    baseline_mean: Optional[float] = None

    @property
    def gap(self) -> Optional[float]:
        """``mean / baseline_mean`` — 1.0 means the policy matched the
        omniscient baseline; larger is worse."""
        if not self.baseline_mean or self.mean is None:
            return None
        return self.mean / self.baseline_mean

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key, "n": self.n, "mean": self.mean,
            "completion": self.completion,
            "baseline_mean": self.baseline_mean, "gap": self.gap,
        }


@dataclass
class GapReport:
    """Predicted-vs-oracle gap table over one sweep.

    Rows are the sweep's grid cells (aggregated over ``over`` axes);
    each row's ``gap`` divides its mean metric by the mean of the
    *baseline* policy's cell sharing the axes the baseline actually
    carries.  Axes the baseline never sweeps — the prediction-error
    axes, which only ``predicted`` points carry — broadcast: every
    error level of a cell divides by the same oracle mean, which is
    what makes gap-vs-level curves comparable.
    """

    label: str
    metric: str
    baseline: str
    axes: List[str]
    rows: List[GapRow] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label, "metric": self.metric,
            "baseline": self.baseline, "axes": self.axes,
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        show_completion = any(
            row.completion is not None for row in self.rows
        )
        lines = [
            f"# Prediction gap: `{self.label}`",
            "",
            f"- metric: `{self.metric}` "
            f"(mean over completed points of each cell)",
            f"- baseline: `{self.baseline}` "
            "(gap = cell mean / matching baseline mean)",
            f"- cells on: {', '.join(self.axes) or '(whole sweep)'}",
            "",
        ]
        header = ["key", "n", self.metric, f"{self.baseline} {self.metric}",
                  "gap"]
        if show_completion:
            header.append("P(complete)")
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for row in self.rows:
            key = ", ".join(
                f"{k}={v}" for k, v in row.key.items() if v != ""
            ) or "(all)"
            cells = [key, str(row.n), _fmt(row.mean),
                     _fmt(row.baseline_mean), _fmt(row.gap)]
            if show_completion:
                cells.append(_fmt(row.completion))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines) + "\n"


def prediction_gap(
    data: SweepData, metric: str = "makespan", *,
    policy_axis: str = "selection_policy", baseline: str = "oracle",
    over: Sequence[str] = ("seed",),
) -> GapReport:
    """The prediction-gap readout of one policy-ablation sweep.

    Cells group the sweep's points on every carried grid axis except
    the ``over`` ones (which aggregate, like :func:`compare_sweeps`);
    a point that doesn't carry an axis at all — the main policy sheet
    has no ``prediction_error.*`` labels — keys that axis as empty, so
    sheets of the same sweep land in distinct rows rather than mixing.
    Each cell is then divided by the ``baseline`` policy's cell that
    matches it on the axes baseline points themselves carry.

    The headline is monotonicity: aggregated over error kinds and
    seeds, ``predicted``'s gap to ``oracle`` must widen as
    ``prediction_error.level`` grows, while policies that never read a
    prediction (``random``) keep a level-independent gap.
    """
    axes = data.axes()
    if policy_axis not in axes:
        raise ValueError(
            f"sweep {data.label!r} has no {policy_axis!r} axis; "
            f"carried axes: {', '.join(axes) or '(none)'}"
        )
    unknown = [axis for axis in over if axis not in axes]
    if unknown:
        raise ValueError(
            f"--over axis {', '.join(repr(x) for x in unknown)} not in "
            f"sweep {data.label!r}; carried axes: {', '.join(axes)}"
        )
    row_axes = [axis for axis in axes if axis not in set(over)]

    groups: Dict[Tuple[str, ...], List[dict]] = {}
    labels: Dict[Tuple[str, ...], Dict[str, str]] = {}
    base_axes: set = set()
    for point in data.points:
        label = parse_point_label(point["name"])
        key = tuple(
            _canon(label[axis]) if axis in label else ""
            for axis in row_axes
        )
        groups.setdefault(key, []).append(point)
        labels.setdefault(key, dict(zip(row_axes, key)))
        if label.get(policy_axis) == baseline:
            base_axes.update(label)
    base_axes = {a for a in base_axes if a in row_axes and a != policy_axis}

    def base_key(cell: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted((a, cell.get(a, "")) for a in base_axes))

    base_means: Dict[Tuple[Tuple[str, str], ...], Optional[float]] = {}
    for key, points in groups.items():
        if labels[key].get(policy_axis) == baseline:
            _, mean, _, _ = _aggregate(points, metric)
            base_means[base_key(labels[key])] = mean

    rows = []
    for key in sorted(groups, key=lambda k: tuple(_sort_token(v)
                                                  for v in k)):
        cell = labels[key]
        n, mean, completion, _ = _aggregate(groups[key], metric)
        rows.append(GapRow(
            key=cell, n=n, mean=mean, completion=completion,
            baseline_mean=base_means.get(base_key(cell)),
        ))
    return GapReport(label=data.label, metric=metric, baseline=baseline,
                     axes=row_axes, rows=rows)


def compare_sweeps(
    a: SweepData, b: SweepData, metric: str = "t",
    over: Sequence[str] = (),
    percentiles: Sequence[float] = (),
) -> SweepComparison:
    """Diff two sweeps: match on shared grid axes, aggregate the rest.

    Points are keyed by the values of the axes appearing in *both*
    sweeps; each key's points aggregate to a mean ``metric`` (over
    completed points) and, when ``completed`` metrics are present, a
    completion probability.  Keys present in only one sweep still get
    a row — an axis swept on one side only shows up as unmatched.

    ``over`` drops axes from the shared set so their points aggregate
    instead of matching — ``over=("seed",)`` turns per-seed rows into
    seed-averaged completion probabilities and makespans, which is how
    the recovery grids read a survivors' makespan-degradation ratio
    out of mixed-outcome seed pools.  An ``over`` axis that neither
    sweep carries is an error (a typo would otherwise silently change
    nothing and the report would lie about what was aggregated).

    ``percentiles`` adds tail columns (``percentiles=(99,)`` → P99 A /
    P99 B) estimated by the shared serve-tier estimator over the same
    per-row value pools the means aggregate — a sweep report reads the
    tail the SLO daemon answers with, not just the mean.
    """
    for p in percentiles:
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
    axes_a, axes_b = a.axes(), b.axes()
    known = set(axes_a) | set(axes_b)
    unknown = [axis for axis in over if axis not in known]
    if unknown:
        raise ValueError(
            f"--over axis {', '.join(repr(x) for x in unknown)} not in "
            f"either sweep; axes of {a.label!r}: "
            f"{', '.join(axes_a) or '(none)'}; axes of {b.label!r}: "
            f"{', '.join(axes_b) or '(none)'}"
        )
    shared = [axis for axis in axes_a
              if axis in axes_b and axis not in set(over)]

    def group(sweep: SweepData) -> Dict[Tuple[str, ...], List[dict]]:
        out: Dict[Tuple[str, ...], List[dict]] = {}
        for point in sweep.points:
            label = parse_point_label(point["name"])
            key = tuple(_canon(label.get(axis, "")) for axis in shared)
            out.setdefault(key, []).append(point)
        return out

    groups_a, groups_b = group(a), group(b)
    keys = sorted(
        set(groups_a) | set(groups_b),
        key=lambda k: tuple(_sort_token(v) for v in k),
    )
    rows = []
    for key in keys:
        row = ComparisonRow(key=dict(zip(shared, key)))
        if key in groups_a:
            row.n_a, row.mean_a, row.completion_a, row.pcts_a = _aggregate(
                groups_a[key], metric, percentiles
            )
        if key in groups_b:
            row.n_b, row.mean_b, row.completion_b, row.pcts_b = _aggregate(
                groups_b[key], metric, percentiles
            )
        rows.append(row)
    return SweepComparison(a=a.label, b=b.label, metric=metric,
                           shared_axes=shared, rows=rows,
                           percentiles=tuple(percentiles))
