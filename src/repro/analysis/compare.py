"""Reference-vs-prediction error metrics (Fig. 10's accuracy claim)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple


def relative_error(predicted: float, reference: float) -> float:
    """Signed relative error (positive = over-prediction)."""
    if reference == 0:
        raise ValueError("reference time is zero")
    return (predicted - reference) / reference


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate accuracy over a series of (reference, predicted) pairs."""

    mape: float           # mean absolute percentage error
    max_abs_pct: float
    n_points: int

    def __str__(self) -> str:
        return (
            f"MAPE {self.mape * 100:.2f}% over {self.n_points} points "
            f"(worst {self.max_abs_pct * 100:.2f}%)"
        )


def accuracy(pairs: Sequence[Tuple[float, float]]) -> AccuracyReport:
    """``pairs`` holds (reference, predicted)."""
    if not pairs:
        raise ValueError("no data points")
    errors = [abs(relative_error(p, r)) for r, p in pairs]
    return AccuracyReport(
        mape=sum(errors) / len(errors),
        max_abs_pct=max(errors),
        n_points=len(errors),
    )


def series_accuracy(
    reference: Mapping, predicted: Mapping
) -> AccuracyReport:
    """Accuracy over the common keys of two result dictionaries."""
    keys = sorted(set(reference) & set(predicted))
    if not keys:
        raise ValueError("no common keys between reference and prediction")
    return accuracy([(reference[k], predicted[k]) for k in keys])


def speedup_series(times: Mapping[int, float]) -> Dict[int, float]:
    """Strong-scaling speedups relative to the smallest peer count."""
    if not times:
        return {}
    base = times[min(times)]
    return {n: base / t for n, t in times.items()}
