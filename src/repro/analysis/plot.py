"""ASCII charts for figure-style series (terminal-first artifacts).

The paper's figures are runtime-vs-peer-count curves; this renders the
same series as a monospace chart so a terminal session can *see* the
crossovers, not only read the tables.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Mapping[int, float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "peers",
    y_label: str = "seconds",
) -> str:
    """Render curves as a scatter chart.

    X positions are the sorted union of the series' keys, evenly
    spaced (peer counts are powers of two, so even spacing reads as a
    log axis).  Y is linear from 0 to the maximum value.
    """
    if not series:
        raise ValueError("no series to plot")
    xs: List[int] = sorted({x for curve in series.values() for x in curve})
    if not xs:
        raise ValueError("series contain no points")
    y_max = max(v for curve in series.values() for v in curve.values())
    if y_max <= 0:
        raise ValueError("all values are non-positive")

    grid = [[" "] * width for _ in range(height)]
    for si, (_name, curve) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, value in curve.items():
            col = _x_col(xs.index(x), len(xs), width)
            row = _y_row(value, y_max, height)
            # later series win collisions; the legend disambiguates
            grid[row][col] = marker

    axis_width = len(f"{y_max:.1f}")
    lines: List[str] = []
    for r, row in enumerate(grid):
        y_here = y_max * (height - r - 0.5) / height
        label = (
            f"{y_here:>{axis_width}.1f} |"
            if r % 4 == 1 or height <= 4
            else " " * axis_width + " |"
        )
        lines.append(label + "".join(row))
    lines.append(" " * axis_width + " +" + "-" * width)
    tick_line = [" "] * width
    for i, x in enumerate(xs):
        col = _x_col(i, len(xs), width)
        text = str(x)
        start = min(max(0, col - len(text) // 2), width - len(text))
        for j, ch in enumerate(text):
            tick_line[start + j] = ch
    lines.append(" " * axis_width + "  " + "".join(tick_line))
    lines.append(" " * axis_width + f"  ({x_label} → ; {y_label} ↑)")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def _x_col(index: int, n: int, width: int) -> int:
    if n == 1:
        return width // 2
    return round(index * (width - 1) / (n - 1))


def _y_row(value: float, y_max: float, height: int) -> int:
    frac = min(max(value / y_max, 0.0), 1.0)
    return min(height - 1, int(round((1.0 - frac) * (height - 1))))
