"""Tests for the multi-site platform (ablation/example substrate)."""

import pytest

from repro.desim import Simulator
from repro.net import FluidNetwork, MBPS
from repro.platforms import build_multisite


class TestMultisite:
    def test_host_count_and_order(self):
        spec = build_multisite(n_sites=3, peers_per_site=4)
        assert len(spec.hosts) == 12
        # site-major ordering: contiguous ranges are co-located
        assert spec.hosts[0].name.startswith("site-0")
        assert spec.hosts[4].name.startswith("site-1")

    def test_intra_site_route_stays_local(self):
        spec = build_multisite(n_sites=2, peers_per_site=3)
        route = spec.topology.route(spec.hosts[0], spec.hosts[1])
        assert all("wan-core" not in l.name for l in route)
        assert len(route) == 2

    def test_inter_site_route_crosses_core(self):
        spec = build_multisite(n_sites=2, peers_per_site=3)
        route = spec.topology.route(spec.hosts[0], spec.hosts[3])
        assert any("wan-core" in l.name for l in route)

    def test_inter_site_latency_dominated_by_uplinks(self):
        spec = build_multisite(n_sites=2, peers_per_site=2)
        lat = spec.topology.route_latency(spec.hosts[0], spec.hosts[2])
        assert lat > 20e-3  # two 10 ms uplinks

    def test_uplink_contention(self):
        """Concurrent cross-site flows share the 34 Mbps site uplink."""
        spec = build_multisite(n_sites=2, peers_per_site=4)
        sim = Simulator()
        net = FluidNetwork(sim, spec.topology)
        src = spec.hosts[:4]       # site 0
        dst = spec.hosts[4:8]      # site 1
        sigs = [net.send(a, b, 1e6) for a, b in zip(src, dst)]
        sim.run()
        makespan = max(s.value.end for s in sigs)
        # 4 MB through a 34 Mbps uplink needs ≈ 0.94 s at least
        assert makespan > 4e6 / (34 * MBPS) * 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            build_multisite(n_sites=0)
