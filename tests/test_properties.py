"""Property-based tests across the core data structures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.desim import Mailbox, Simulator
from repro.dperf import Census, run_single
from repro.dperf.minic import cast as A
from repro.dperf.minic import parse, parse_expr, unparse
from repro.dperf.minic.unparser import expr_text
from repro.simx import Compute, ISend, Recv, Send, Trace, decode_event, dump_trace, load_trace


# -- expression round-trips ----------------------------------------------------

@st.composite
def expressions(draw, depth=0):
    """Random well-formed mini-C expressions over variables a, b, c."""
    if depth >= 4 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["int", "float", "var"]))
        if leaf == "int":
            return A.IntLit(0, 0, draw(st.integers(0, 10_000)))
        if leaf == "float":
            value = draw(st.floats(min_value=0.001, max_value=1e6,
                                   allow_nan=False, allow_infinity=False))
            return A.FloatLit(0, 0, value)
        return A.Ident(0, 0, draw(st.sampled_from(["a", "b", "c"])))
    kind = draw(st.sampled_from(["bin", "un", "cond", "call", "cast"]))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "/", "<", "==", "&&"]))
        return A.BinOp(0, 0, op, draw(expressions(depth=depth + 1)),
                       draw(expressions(depth=depth + 1)))
    if kind == "un":
        return A.UnOp(0, 0, draw(st.sampled_from(["-", "!"])),
                      draw(expressions(depth=depth + 1)))
    if kind == "cond":
        return A.Cond(0, 0, draw(expressions(depth=depth + 1)),
                      draw(expressions(depth=depth + 1)),
                      draw(expressions(depth=depth + 1)))
    if kind == "call":
        return A.Call(0, 0, "fmax", [draw(expressions(depth=depth + 1)),
                                     draw(expressions(depth=depth + 1))])
    return A.Cast(0, 0, A.CType(0, 0, "double"),
                  draw(expressions(depth=depth + 1)))


def _skeleton(expr):
    return [type(n).__name__ for n in A.walk(expr)]


@given(expressions())
@settings(max_examples=200, deadline=None)
def test_expr_unparse_parse_round_trip(expr):
    text = expr_text(expr)
    reparsed = parse_expr(text)
    assert _skeleton(reparsed) == _skeleton(expr)
    # and it is a fixed point
    assert expr_text(reparsed) == text


@given(st.lists(st.sampled_from(
    ["x = x + 1;", "if (x > 0) { x = x - 1; }", "while (x > 9) { x = x / 2; }",
     "for (int i = 0; i < 3; i++) { x = x + i; }", "{ int y = x; x = y; }",
     ";"]), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_program_unparse_is_fixed_point(stmts):
    src = "int f(int x) { " + " ".join(stmts) + " return x; }"
    once = unparse(parse(src))
    assert unparse(parse(once)) == once


# -- interpreter arithmetic vs C semantics --------------------------------------

@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=100, deadline=None)
def test_interp_int_division_matches_c(a, b):
    if b == 0:
        return
    result = run_single(
        parse(f"int main() {{ return {a} / ({b}); }}"
              .replace("(-", "(0 -")), "main"
    ).value
    expected = int(a / b)  # C99: truncation toward zero
    assert result == expected


@given(st.integers(-1000, 1000), st.integers(1, 100))
@settings(max_examples=100, deadline=None)
def test_interp_modulo_matches_c(a, b):
    result = run_single(
        parse(f"int main() {{ return {a} % {b}; }}".replace("(-", "(0 -")),
        "main",
    ).value
    assert result == int(math.fmod(a, b))


@given(st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_interp_loop_sum(n):
    src = f"int main() {{ int s = 0; for (int i = 1; i <= {n}; i++) s += i; return s; }}"
    assert run_single(parse(src), "main").value == n * (n + 1) // 2


# -- census algebra --------------------------------------------------------------

cats = st.sampled_from(["fp_add", "mem_load", "int_op", "builtin:sqrt"])


@given(st.lists(st.tuples(cats, st.floats(0, 1e6, allow_nan=False)),
                max_size=20))
@settings(max_examples=100, deadline=None)
def test_census_merge_equals_sum(entries):
    total = Census()
    parts = [Census() for _ in range(3)]
    for i, (cat, n) in enumerate(entries):
        parts[i % 3].add(cat, n)
        total.add(cat, n)
    merged = Census()
    for part in parts:
        merged.merge(part)
    for cat in set(total) | set(merged):
        assert merged.get(cat, 0) == pytest.approx(total.get(cat, 0))


@given(st.floats(0.01, 100, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_census_scaling_linear(factor):
    census = Census()
    census.add("fp_add", 10)
    census.add("mem_load", 4)
    scaled = census.scaled(factor)
    assert scaled["fp_add"] == pytest.approx(10 * factor)
    assert scaled.total_ops == pytest.approx(census.total_ops * factor)


# -- trace encoding ---------------------------------------------------------------

trace_events = st.one_of(
    st.integers(0, 10**12).map(Compute),
    st.tuples(st.integers(0, 63), st.integers(0, 10**9),
              st.text(alphabet="abcxyz", min_size=1, max_size=6)).map(
        lambda t: Send(*t)),
    st.tuples(st.integers(0, 63), st.integers(0, 10**9),
              st.text(alphabet="abcxyz", min_size=1, max_size=6)).map(
        lambda t: ISend(*t)),
    st.tuples(st.integers(0, 63),
              st.text(alphabet="abcxyz", min_size=1, max_size=6)).map(
        lambda t: Recv(*t)),
)


@given(trace_events)
@settings(max_examples=200, deadline=None)
def test_event_encode_decode_identity(event):
    assert decode_event(event.encode()) == event


@given(st.lists(trace_events, max_size=30), st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_trace_file_round_trip(events, rank):
    t = Trace(rank=rank, nprocs=8, events=events, app="prop",
              meta={"k": "v"})
    t2 = load_trace(dump_trace(t))
    assert t2.events == t.events
    assert (t2.rank, t2.nprocs, t2.app, t2.meta) == (rank, 8, "prop", {"k": "v"})


# -- mailbox FIFO ------------------------------------------------------------------

@given(st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_mailbox_preserves_fifo(items):
    sim = Simulator()
    box = Mailbox()
    got = []

    def consumer():
        for _ in items:
            got.append((yield box.get()))

    sim.process(consumer())
    for i, item in enumerate(items):
        sim.schedule(float(i), box.put, item)
    sim.run()
    assert got == items


# -- simulator ordering --------------------------------------------------------------

@given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
