"""Sharded sweeps: deterministic partitioning, byte-identical merges.

The contract of docs/sharding.md: every machine derives the same
shard split from the grid alone (partitioning is by spec hash — no
coordination), a killed shard resumes from its cache, and
``merge-shards`` reassembles a manifest byte-identical to the
unsharded sweep — or refuses, loudly, when the shards disagree.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import SCENARIOS, expand_grid, shard_specs
from repro.scenarios.cli import main
from repro.scenarios.runner import clear_memo


#: A cheap all-deploy grid: no workload calibration, each point only
#: builds and settles a small overlay (~tens of ms).
DEPLOY_ARGS = [
    "--set", "platform.n_hosts=32", "--set", "n_peers=4,6,8",
    "--set", "n_zones=1,2", "--set", "seed=2011,2013",
]
DEPLOY_GRID = {
    "platform.n_hosts": (32,), "n_peers": (4, 6, 8),
    "n_zones": (1, 2), "seed": (2011, 2013),
}


def _sweep(cache: Path, *extra: str) -> int:
    return main(["sweep", "large-overlay-512", "--serial", "--label", "g",
                 "--cache-dir", str(cache)] + DEPLOY_ARGS + list(extra))


def _manifest(cache: Path, name: str = "g.json") -> Path:
    return cache / "sweeps" / name


class TestShardSpecs:
    def _specs(self):
        return expand_grid(SCENARIOS["large-overlay-512"].base, DEPLOY_GRID)

    def test_partition_is_disjoint_and_complete(self):
        specs = self._specs()
        seen = []
        for i in range(3):
            seen.extend(s.spec_hash() for s in shard_specs(specs, i, 3))
        assert sorted(seen) == sorted(s.spec_hash() for s in specs)
        assert len(seen) == len(specs)

    def test_partition_is_stable_under_relabelling(self):
        # the split is a pure function of each point, not of the list
        specs = self._specs()
        renamed = [s.with_override("name", f"other-{i}")
                   for i, s in enumerate(specs)]
        for i in range(3):
            assert ([s.spec_hash() for s in shard_specs(specs, i, 3)]
                    == [s.spec_hash() for s in shard_specs(renamed, i, 3)])

    def test_single_shard_is_identity(self):
        specs = self._specs()
        assert shard_specs(specs, 0, 1) == specs

    def test_bad_geometry_rejected(self):
        specs = self._specs()
        with pytest.raises(ValueError):
            shard_specs(specs, 3, 3)
        with pytest.raises(ValueError):
            shard_specs(specs, -1, 3)
        with pytest.raises(ValueError):
            shard_specs(specs, 0, 0)


class TestShardedCli:
    def test_three_shard_union_is_byte_identical(self, tmp_path):
        clear_memo()
        plain = tmp_path / "plain"
        assert _sweep(plain) == 0
        clear_memo()
        sharded = tmp_path / "sharded"
        for i in range(3):
            assert _sweep(sharded, "--shard", f"{i}/3") == 0
        assert main(["merge-shards", "g", "--cache-dir", str(sharded)]) == 0
        assert (_manifest(sharded).read_bytes()
                == _manifest(plain).read_bytes())

    def test_shard_manifest_records_geometry(self, tmp_path):
        clear_memo()
        cache = tmp_path / "c"
        assert _sweep(cache, "--shard", "1/3") == 0
        payload = json.loads(_manifest(cache, "g.shard1of3.json").read_text())
        assert payload["shard"]["index"] == 1
        assert payload["shard"]["count"] == 3
        assert payload["shard"]["n_points"] == 12
        assert all("index" in p for p in payload["points"])
        assert "partial" not in payload

    def test_merge_missing_shard_is_clean_error(self, tmp_path, capsys):
        clear_memo()
        cache = tmp_path / "c"
        assert _sweep(cache, "--shard", "0/3") == 0
        assert main(["merge-shards", "g", "--cache-dir", str(cache)]) == 2
        err = capsys.readouterr().err
        assert "incomplete" in err

    def test_merge_rejects_conflicting_spec_hashes(self, tmp_path, capsys):
        """Two shards claiming the same point name with different spec
        hashes were run from different grids or schema versions; the
        merge must refuse rather than silently mix them."""
        clear_memo()
        cache = tmp_path / "c"
        for i in range(2):
            assert _sweep(cache, "--shard", f"{i}/2") == 0
        path = _manifest(cache, "g.shard1of2.json")
        payload = json.loads(path.read_text())
        victim = payload["points"][0]
        other = json.loads(
            _manifest(cache, "g.shard0of2.json").read_text())["points"][0]
        victim["name"] = other["name"]  # same label, different spec hash
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        assert main(["merge-shards", "g", "--cache-dir", str(cache)]) == 2
        assert "conflicting spec hashes" in capsys.readouterr().err

    def test_merge_rejects_partial_manifest(self, tmp_path, capsys):
        clear_memo()
        cache = tmp_path / "c"
        for i in range(2):
            assert _sweep(cache, "--shard", f"{i}/2") == 0
        path = _manifest(cache, "g.shard0of2.json")
        payload = json.loads(path.read_text())
        payload["partial"] = True
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        assert main(["merge-shards", "g", "--cache-dir", str(cache)]) == 2
        assert "partial" in capsys.readouterr().err

    def test_merge_rejects_mixed_geometry(self, tmp_path, capsys):
        clear_memo()
        cache = tmp_path / "c"
        assert _sweep(cache, "--shard", "0/2") == 0
        assert _sweep(cache, "--shard", "1/3") == 0
        assert main(["merge-shards", "g", "--cache-dir", str(cache)]) == 2
        assert "geometry" in capsys.readouterr().err

    def test_merge_absorbs_shard_caches(self, tmp_path):
        """Cross-machine flow: each shard ran with its own cache dir;
        --from-cache unions the content-addressed results."""
        clear_memo()
        caches = [tmp_path / f"m{i}" for i in range(2)]
        for i, cache in enumerate(caches):
            assert _sweep(cache, "--shard", f"{i}/2") == 0
        target = tmp_path / "merged"
        target.mkdir()
        shards = [str(_manifest(c, f"g.shard{i}of2.json"))
                  for i, c in enumerate(caches)]
        assert main(["merge-shards", "g", "--cache-dir", str(target),
                     "--shards"] + shards
                    + ["--from-cache", str(caches[0]),
                       "--from-cache", str(caches[1])]) == 0
        clear_memo()
        # every point of the full grid is now served from the union
        rerun = tmp_path / "merged"
        assert _sweep(rerun) == 0
        manifest = json.loads(_manifest(rerun).read_text())
        assert len(manifest["points"]) == 12

    def test_bad_shard_argument_is_usage_error(self, tmp_path, capsys):
        cache = tmp_path / "c"
        assert _sweep(cache, "--shard", "3/3") == 2
        assert "--shard expects" in capsys.readouterr().err
        assert _sweep(cache, "--shard", "nonsense") == 2

    def test_compare_rejects_partial_manifest(self, tmp_path, capsys):
        """A killed sweep leaves `"partial": true` at the label path;
        compare must refuse it rather than report over a fragment."""
        clear_memo()
        cache = tmp_path / "c"
        assert _sweep(cache) == 0
        path = _manifest(cache)
        payload = json.loads(path.read_text())
        payload["partial"] = True
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        assert main(["compare", "g", "g", "--cache-dir", str(cache)]) == 2
        assert "partial manifest" in capsys.readouterr().err

    def test_incremental_manifest_marks_progress(self, tmp_path):
        """During a sweep the manifest on disk is a partial record of
        what finished; the final write clears the marker.  (A killed
        shard therefore leaves both the partial manifest and the
        worker-written cache entries behind — the resume path.)"""
        clear_memo()
        cache = tmp_path / "c"
        stages = []
        from repro.scenarios import cli as cli_mod

        original = cli_mod._dump_manifest

        def spy(payload, path):
            stages.append((payload.get("partial", False),
                           len(payload["points"])))
            original(payload, path)

        cli_mod._dump_manifest = spy
        try:
            assert _sweep(cache) == 0
        finally:
            cli_mod._dump_manifest = original
        assert stages[-1] == (False, 12)  # final manifest: complete
        partials = [n for partial, n in stages if partial]
        assert partials == sorted(partials)  # grows monotonically
        assert len(partials) == 12  # one incremental write per point
        final = json.loads(_manifest(cache).read_text())
        assert "partial" not in final
