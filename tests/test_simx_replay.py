"""Tests for the MSG-like trace replay engine."""

import pytest

from repro.net import TcpModel
from repro.platforms import build_cluster, build_lan
from repro.simx import (
    AllReduce,
    Barrier,
    Compute,
    ISend,
    Recv,
    Send,
    Trace,
    TraceReplayer,
    replay_traces,
)

# A TCP model without window cap / overhead keeps arithmetic exact.
RAW_TCP = TcpModel(bandwidth_factor=1.0, window=1e18)


def mk(rank, nprocs, events):
    return Trace(rank=rank, nprocs=nprocs, events=events)


class TestComputeOnly:
    def test_single_rank_compute(self):
        platform = build_cluster(1)
        t = mk(0, 1, [Compute(2_000_000_000)])  # 2e9 ns = 2 s
        res = replay_traces([t], platform, tcp=RAW_TCP)
        assert res.makespan == pytest.approx(2.0)
        assert res.compute_time[0] == pytest.approx(2.0)
        assert res.blocked_time[0] == 0.0

    def test_makespan_is_slowest_rank(self):
        platform = build_cluster(2)
        traces = [
            mk(0, 2, [Compute(1_000_000_000)]),
            mk(1, 2, [Compute(3_000_000_000)]),
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        assert res.makespan == pytest.approx(3.0)
        assert res.finish_times == pytest.approx([1.0, 3.0])

    def test_compute_scales_with_host_speed(self):
        """Trace ns measured on a 3 GHz reference replayed on 6 GHz
        hosts takes half the time."""
        platform = build_cluster(1, node_speed=6e9)
        t = mk(0, 1, [Compute(2_000_000_000)])
        res = replay_traces([t], platform, tcp=RAW_TCP, reference_speed=3e9)
        assert res.makespan == pytest.approx(1.0)


class TestPointToPoint:
    def test_send_recv_pair(self):
        platform = build_cluster(2)
        size = 125_000_000  # 1 Gbit → 1 s on the NIC
        traces = [
            mk(0, 2, [Send(1, size, "m")]),
            mk(1, 2, [Recv(0, "m")]),
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        # 3 hops × 100 µs + 1 s serialization
        assert res.makespan == pytest.approx(1.0003, rel=1e-4)
        assert res.blocked_time[1] == pytest.approx(res.makespan)

    def test_isend_does_not_block_sender(self):
        platform = build_cluster(2)
        size = 125_000_000
        traces = [
            mk(0, 2, [ISend(1, size, "m"), Compute(5_000_000_000)]),
            mk(1, 2, [Recv(0, "m")]),
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        assert res.blocked_time[0] == 0.0
        assert res.finish_times[0] == pytest.approx(5.0)
        assert res.finish_times[1] == pytest.approx(1.0003, rel=1e-4)

    def test_recv_waits_for_late_sender(self):
        platform = build_cluster(2)
        traces = [
            mk(0, 2, [Compute(2_000_000_000), ISend(1, 64, "m")]),
            mk(1, 2, [Recv(0, "m")]),
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        assert res.blocked_time[1] == pytest.approx(res.finish_times[1])
        assert res.finish_times[1] > 2.0

    def test_bidirectional_exchange_overlaps(self):
        """Full-duplex halo exchange: both directions move concurrently."""
        platform = build_cluster(2)
        size = 125_000_000  # 1 s each way alone
        traces = [
            mk(0, 2, [ISend(1, size, "h"), Recv(1, "h")]),
            mk(1, 2, [ISend(0, size, "h"), Recv(0, "h")]),
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        assert res.makespan == pytest.approx(1.0003, rel=1e-3)

    def test_tag_separation(self):
        """Messages with distinct tags match the right recv."""
        platform = build_cluster(2)
        traces = [
            mk(0, 2, [ISend(1, 1000, "a"), ISend(1, 999_000, "b")]),
            mk(1, 2, [Recv(0, "b"), Recv(0, "a")]),
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        assert res.makespan > 0


class TestCollectives:
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_barrier_synchronizes(self, n):
        platform = build_cluster(max(n, 1))
        traces = [
            mk(r, n, [Compute(int(1e9) * (r + 1)), Barrier(), Compute(int(1e8))])
            for r in range(n)
        ]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        # Everyone leaves the barrier after the slowest rank (n s).
        assert res.makespan >= n * 1.0 + 0.1

    def test_barrier_cost_grows_with_ranks(self):
        def barrier_time(n):
            platform = build_cluster(n)
            traces = [mk(r, n, [Barrier()]) for r in range(n)]
            return replay_traces(traces, platform, tcp=RAW_TCP).makespan

        assert barrier_time(16) > barrier_time(2)

    @pytest.mark.parametrize("n", [2, 5])
    def test_allreduce_completes_everywhere(self, n):
        platform = build_cluster(n)
        traces = [mk(r, n, [AllReduce(8)]) for r in range(n)]
        res = replay_traces(traces, platform, tcp=RAW_TCP)
        assert all(f > 0 for f in res.finish_times)


class TestReplayValidation:
    def test_inconsistent_traces_rejected(self):
        platform = build_cluster(2)
        traces = [
            mk(0, 2, [Send(1, 10, "x")]),
            mk(1, 2, []),
        ]
        with pytest.raises(ValueError, match="unmatched"):
            replay_traces(traces, platform)

    def test_host_count_mismatch(self):
        platform = build_cluster(4)
        traces = [mk(0, 1, [])]
        with pytest.raises(ValueError, match="hosts"):
            TraceReplayer(traces, platform, hosts=platform.hosts[:3])

    def test_deadlock_reported(self):
        platform = build_cluster(2)
        # rank1 recv with tag nobody sends — validation off to sneak by.
        traces = [
            mk(0, 2, [ISend(1, 10, "x")]),
            mk(1, 2, [Recv(0, "x"), Recv(0, "ghost")]),
        ]
        with pytest.raises(RuntimeError, match="deadlock|unfinished"):
            TraceReplayer(traces, platform, validate=False).run()

    def test_result_summary_readable(self):
        platform = build_cluster(1)
        res = replay_traces([mk(0, 1, [Compute(1_000_000)])], platform)
        assert "t_predicted" in res.summary()


class TestPlatformEffects:
    def test_same_traces_slower_on_lan(self):
        """The whole point of dPerf Stage-2: identical traces, different
        platform, different t_predicted."""
        size = 1_000_000
        traces = [
            mk(0, 2, [ISend(1, size, "h"), Recv(1, "h"), Compute(int(1e9))]),
            mk(1, 2, [ISend(0, size, "h"), Recv(0, "h"), Compute(int(1e9))]),
        ]
        t_cluster = replay_traces(traces, build_cluster(2), tcp=RAW_TCP).makespan
        t_lan = replay_traces(traces, build_lan(2), tcp=RAW_TCP).makespan
        assert t_lan > t_cluster
        # compute part identical; difference is bandwidth (1 Gbps vs 100 Mbps)
        assert t_lan - t_cluster > 0.05
