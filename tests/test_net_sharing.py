"""Unit + property tests for max-min fair bandwidth sharing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Link, maxmin_allocation, validate_allocation


def L(name, bw):
    return Link(name, bw, 0.0)


def test_single_flow_gets_full_capacity():
    l = L("a", 100.0)
    alloc = maxmin_allocation({"f": [l]})
    assert alloc["f"] == pytest.approx(100.0)


def test_two_flows_share_equally():
    l = L("a", 100.0)
    alloc = maxmin_allocation({"f1": [l], "f2": [l]})
    assert alloc["f1"] == pytest.approx(50.0)
    assert alloc["f2"] == pytest.approx(50.0)


def test_bandwidth_factor_scales_capacity():
    l = L("a", 100.0)
    alloc = maxmin_allocation({"f": [l]}, bandwidth_factor=0.92)
    assert alloc["f"] == pytest.approx(92.0)


def test_flow_bottlenecked_by_narrowest_link():
    wide, narrow = L("wide", 1000.0), L("narrow", 10.0)
    alloc = maxmin_allocation({"f": [wide, narrow]})
    assert alloc["f"] == pytest.approx(10.0)


def test_unused_capacity_redistributed():
    """Classic max-min example: one capped flow leaves room for others."""
    shared = L("shared", 100.0)
    thin = L("thin", 10.0)
    # f1 crosses thin+shared (bottlenecked at 10), f2 only shared.
    alloc = maxmin_allocation({"f1": [thin, shared], "f2": [shared]})
    assert alloc["f1"] == pytest.approx(10.0)
    assert alloc["f2"] == pytest.approx(90.0)


def test_rate_cap_respected_and_redistributed():
    shared = L("shared", 100.0)
    alloc = maxmin_allocation(
        {"f1": [shared], "f2": [shared]}, rate_caps={"f1": 20.0}
    )
    assert alloc["f1"] == pytest.approx(20.0)
    assert alloc["f2"] == pytest.approx(80.0)


def test_empty_route_is_infinite():
    alloc = maxmin_allocation({"local": []})
    assert math.isinf(alloc["local"])


def test_three_link_chain_parking_lot():
    """Parking-lot scenario: one long flow + per-hop short flows."""
    l0, l1, l2 = L("l0", 30.0), L("l1", 30.0), L("l2", 30.0)
    alloc = maxmin_allocation(
        {
            "long": [l0, l1, l2],
            "s0": [l0],
            "s1": [l1],
            "s2": [l2],
        }
    )
    # Every link: long + one short → fair share 15 each.
    for f in ("long", "s0", "s1", "s2"):
        assert alloc[f] == pytest.approx(15.0)


def test_no_flows():
    assert maxmin_allocation({}) == {}


def test_validate_allocation_catches_oversubscription():
    l = L("a", 10.0)
    with pytest.raises(AssertionError, match="oversubscribed"):
        validate_allocation({"f": [l]}, {"f": 20.0})


# -- property-based ---------------------------------------------------------

@st.composite
def random_networks(draw):
    n_links = draw(st.integers(min_value=1, max_value=6))
    links = [
        L(f"l{i}", draw(st.floats(min_value=1.0, max_value=1e4)))
        for i in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = {}
    caps = {}
    for f in range(n_flows):
        route_len = draw(st.integers(min_value=1, max_value=n_links))
        idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=route_len,
                max_size=route_len,
                unique=True,
            )
        )
        flows[f"f{f}"] = [links[i] for i in idx]
        if draw(st.booleans()):
            caps[f"f{f}"] = draw(st.floats(min_value=0.5, max_value=1e4))
    return flows, caps


@given(random_networks())
@settings(max_examples=150, deadline=None)
def test_maxmin_never_oversubscribes(net):
    flows, caps = net
    alloc = maxmin_allocation(flows, caps)
    validate_allocation(flows, alloc)


@given(random_networks())
@settings(max_examples=150, deadline=None)
def test_maxmin_every_flow_bottlenecked(net):
    """Pareto/bottleneck property: each flow is at its cap or crosses a
    saturated link."""
    flows, caps = net
    alloc = maxmin_allocation(flows, caps)
    # link loads
    load = {}
    for fid, route in flows.items():
        for link in route:
            load[link] = load.get(link, 0.0) + alloc[fid]
    for fid, route in flows.items():
        at_cap = fid in caps and alloc[fid] >= caps[fid] * (1 - 1e-9)
        saturated = any(load[l] >= l.bandwidth * (1 - 1e-6) for l in route)
        assert at_cap or saturated, f"flow {fid} not bottlenecked"


@given(random_networks())
@settings(max_examples=100, deadline=None)
def test_maxmin_rates_nonnegative_and_capped(net):
    flows, caps = net
    alloc = maxmin_allocation(flows, caps)
    for fid in flows:
        assert alloc[fid] >= 0.0
        if fid in caps:
            assert alloc[fid] <= caps[fid] * (1 + 1e-9)


@given(st.integers(min_value=1, max_value=40))
@settings(max_examples=40, deadline=None)
def test_maxmin_symmetric_flows_get_equal_shares(n):
    l = L("l", 1000.0)
    alloc = maxmin_allocation({f"f{i}": [l] for i in range(n)})
    rates = list(alloc.values())
    assert all(r == pytest.approx(1000.0 / n) for r in rates)


# -- grouped classes + reduced filling (the replay hot path) ----------------

from repro.net.sharing import maxmin_grouped, progressive_fill  # noqa: E402


def test_grouped_multiplicity_equals_expanded_flows():
    """One class of m identical flows must get the per-flow rate the
    expanded problem gives each of them."""
    shared = L("shared", 90.0)
    thin = L("thin", 10.0)
    expanded = maxmin_allocation(
        {"a0": [shared], "a1": [shared], "a2": [shared],
         "long": [thin, shared]}
    )
    grouped = maxmin_grouped(
        {"a": [shared], "long": [thin, shared]},
        class_sizes={"a": 3},
    )
    assert grouped["a"] == pytest.approx(expanded["a0"])
    assert grouped["long"] == pytest.approx(expanded["long"])
    # conservation: 3·a + long ≤ shared capacity
    assert 3 * grouped["a"] + grouped["long"] <= 90.0 * (1 + 1e-9)


def test_grouped_caps_apply_per_flow():
    link = L("l", 100.0)
    alloc = maxmin_grouped(
        {"capped": [link], "free": [link]},
        class_caps={"capped": 10.0},
        class_sizes={"capped": 2, "free": 1},
    )
    assert alloc["capped"] == pytest.approx(10.0)
    assert alloc["free"] == pytest.approx(80.0)


def test_backbone_pruning_is_exact():
    """A huge shared backbone must not disturb last-mile bottlenecks —
    the constraint-reduction path and the naive solve agree."""
    core = L("core", 1e9)
    miles = [L(f"mile{i}", 10.0 + i) for i in range(4)]
    flows = {f"f{i}": [miles[i], core] for i in range(4)}
    alloc = maxmin_allocation(flows)
    for i in range(4):
        assert alloc[f"f{i}"] == pytest.approx(10.0 + i)


def test_progressive_fill_single_link_waterfill():
    link = L("l", 100.0)
    alloc = progressive_fill(
        {"a": [link], "b": [link], "c": [link]},
        {"a": 10.0, "b": 1000.0, "c": 1000.0},
    )
    assert alloc["a"] == pytest.approx(10.0)
    assert alloc["b"] == pytest.approx(45.0)
    assert alloc["c"] == pytest.approx(45.0)


@given(random_networks())
@settings(max_examples=100, deadline=None)
def test_grouped_with_sizes_never_oversubscribes(net):
    flows, caps = net
    sizes = {fid: (i % 3) + 1 for i, fid in enumerate(flows)}
    alloc = maxmin_grouped(flows, caps, class_sizes=sizes)
    load = {}
    for fid, route in flows.items():
        rate = alloc[fid]
        if math.isinf(rate):
            continue
        for link in route:
            load[link] = load.get(link, 0.0) + rate * sizes[fid]
    for link, used in load.items():
        assert used <= link.bandwidth * (1 + 1e-6)
