"""Tests for the P2PSAP protocol simulation."""

import pytest

from repro.desim import Simulator
from repro.net import FluidNetwork, Host, TcpModel, Topology
from repro.p2psap import (
    Channel,
    ChannelContext,
    LinkClass,
    Locality,
    Scheme,
    TCP_NO_CC,
    TCP_RENO,
    UDP_ASYNC,
    classify_link,
    mode_by_name,
    select_mode,
)


def make_net(bw=1e6, lat=0.001):
    sim = Simulator()
    topo = Topology()
    a = topo.add_node(Host("a"))
    b = topo.add_node(Host("b"))
    topo.add_link(a, b, bw, lat)
    net = FluidNetwork(sim, topo, tcp=TcpModel(1.0, 1e18))
    return sim, net, a, b


class TestAdaptationRules:
    def test_async_always_udp(self):
        for locality in Locality:
            for link in LinkClass:
                ctx = ChannelContext(Scheme.ASYNC, locality, link)
                assert select_mode(ctx) is UDP_ASYNC

    def test_sync_same_zone_cluster_is_nocc(self):
        ctx = ChannelContext(Scheme.SYNC, Locality.SAME_ZONE, LinkClass.CLUSTER)
        assert select_mode(ctx) is TCP_NO_CC

    def test_sync_same_zone_lan_is_nocc(self):
        ctx = ChannelContext(Scheme.SYNC, Locality.SAME_ZONE, LinkClass.LAN)
        assert select_mode(ctx) is TCP_NO_CC

    def test_sync_wan_keeps_congestion_control(self):
        ctx = ChannelContext(Scheme.SYNC, Locality.SAME_ZONE, LinkClass.WAN)
        assert select_mode(ctx) is TCP_RENO

    def test_sync_inter_zone_is_reno(self):
        ctx = ChannelContext(Scheme.SYNC, Locality.INTER_ZONE, LinkClass.CLUSTER)
        assert select_mode(ctx) is TCP_RENO

    def test_classify_link(self):
        assert classify_link(100e-6) is LinkClass.CLUSTER
        assert classify_link(3e-3) is LinkClass.LAN
        assert classify_link(15e-3) is LinkClass.WAN

    def test_mode_by_name(self):
        assert mode_by_name("tcp-reno") is TCP_RENO
        with pytest.raises(KeyError):
            mode_by_name("carrier-pigeon")


class TestChannel:
    def test_send_delivers_payload(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b)
        ep_a, ep_b = chan.endpoints()
        got = []

        def receiver():
            payload = yield ep_b.recv()
            got.append(payload)

        sim.process(receiver())
        ep_a.send(1000, data={"k": 1})
        sim.run()
        assert got == [(1000, {"k": 1})]

    def test_acked_send_waits_for_ack_leg(self):
        sim, net, a, b = make_net(bw=1e9, lat=0.01)
        ctx = ChannelContext(Scheme.SYNC, Locality.SAME_ZONE, LinkClass.CLUSTER)
        chan = Channel(sim, net, a, b, ctx)
        assert chan.mode.acked
        done = chan.a.send(100)
        sim.run()
        # ≥ 2 × latency (data + ack legs)
        assert done.value == 100
        assert sim.now >= 0.02

    def test_unacked_send_releases_sender_immediately(self):
        sim, net, a, b = make_net(bw=1e9, lat=0.05)
        ctx = ChannelContext(Scheme.ASYNC)
        chan = Channel(sim, net, a, b, ctx)
        done = chan.a.send(100)
        released_at = []
        done._subscribe(lambda s: released_at.append(sim.now))
        sim.run()
        assert released_at[0] < 0.01  # far below one latency

    def test_drop_stale_keeps_freshest(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b, ChannelContext(Scheme.ASYNC))
        for i in range(5):
            chan.a.send(8, data=i)
        sim.run()
        assert chan.b.pending == 1
        assert chan.b.try_recv() == (8, 4)
        assert chan.stats.messages_dropped_stale == 4

    def test_sync_mode_keeps_all_messages(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b, ChannelContext(Scheme.SYNC))
        for i in range(3):
            chan.a.send(8, data=i)
        sim.run()
        assert chan.b.pending == 3

    def test_bidirectional_endpoints(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b)
        chan.a.send(10, data="to-b")
        chan.b.send(20, data="to-a")
        sim.run()
        assert chan.a.try_recv() == (20, "to-a")
        assert chan.b.try_recv() == (10, "to-b")

    def test_adapt_switches_mode_with_cost(self):
        sim, net, a, b = make_net(lat=0.001)
        chan = Channel(sim, net, a, b, ChannelContext(Scheme.SYNC))
        assert chan.mode is TCP_NO_CC
        done = chan.adapt(ChannelContext(Scheme.ASYNC))
        assert not done.triggered  # renegotiation takes time
        sim.run()
        assert chan.mode is UDP_ASYNC
        assert chan.stats.reconfigurations == 1
        assert sim.now == pytest.approx(2 * 2 * 0.001)

    def test_adapt_same_mode_is_free(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b, ChannelContext(Scheme.SYNC))
        done = chan.adapt(
            ChannelContext(Scheme.SYNC, Locality.SAME_ZONE, LinkClass.CLUSTER)
        )
        assert done.triggered

    def test_closed_channel_rejects_send(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b)
        chan.close()
        with pytest.raises(RuntimeError, match="closed"):
            chan.a.send(1)

    def test_endpoint_for(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b)
        assert chan.endpoint_for(a) is chan.a
        assert chan.endpoint_for(b) is chan.b
        with pytest.raises(KeyError):
            chan.endpoint_for(Host("ghost"))

    def test_stats_accumulate(self):
        sim, net, a, b = make_net()
        chan = Channel(sim, net, a, b)
        chan.a.send(100)
        chan.a.send(200)
        sim.run()
        assert chan.stats.messages_sent == 2
        assert chan.stats.bytes_sent == 300

    def test_overhead_modes_differ_in_latency(self):
        """tcp-nocc delivers small messages faster than tcp-reno
        (lower per-message overhead)."""
        def delivery_time(ctx):
            sim, net, a, b = make_net(bw=1e9, lat=0.0005)
            chan = Channel(sim, net, a, b, ctx)
            got = []

            def rx():
                yield chan.b.recv()
                got.append(sim.now)

            sim.process(rx())
            chan.a.send(64)
            sim.run()
            return got[0]

        t_nocc = delivery_time(
            ChannelContext(Scheme.SYNC, Locality.SAME_ZONE, LinkClass.CLUSTER)
        )
        t_reno = delivery_time(
            ChannelContext(Scheme.SYNC, Locality.INTER_ZONE, LinkClass.CLUSTER)
        )
        assert t_nocc < t_reno
